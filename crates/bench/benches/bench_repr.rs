//! Representation costs: building a function series, reconstructing the
//! signal, extracting peaks, and the full store-ingest pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_core::alphabet::DEFAULT_THETA;
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::features::PeakTable;
use saq_core::repr::FunctionSeries;
use saq_core::store::{SequenceStore, StoreConfig};
use saq_curves::RegressionFitter;
use saq_ecg::synth::{synthesize, EcgSpec};
use std::hint::black_box;

fn bench_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("repr");
    let ecg = synthesize(EcgSpec { n: 2000, ..EcgSpec::default() });
    let ranges = LinearInterpolationBreaker::coalescing(10.0).break_ranges(&ecg);

    group.bench_function("build_series_2k", |b| {
        b.iter(|| {
            black_box(FunctionSeries::build(black_box(&ecg), &ranges, &RegressionFitter).unwrap())
        });
    });

    let series = FunctionSeries::build(&ecg, &ranges, &RegressionFitter).unwrap();
    group.bench_function("reconstruct_2k", |b| {
        b.iter(|| black_box(series.reconstruct(2000).unwrap()));
    });
    group.bench_function("peak_extract", |b| {
        b.iter(|| black_box(PeakTable::extract(black_box(&series), DEFAULT_THETA).len()));
    });

    for &n in &[500usize, 2000] {
        let ecg = synthesize(EcgSpec { n, ..EcgSpec::default() });
        group.bench_with_input(BenchmarkId::new("store_ingest", n), &ecg, |b, s| {
            b.iter(|| {
                let mut store = SequenceStore::new(StoreConfig {
                    epsilon: 10.0,
                    keep_raw: false,
                    ..StoreConfig::default()
                })
                .unwrap();
                black_box(store.insert(black_box(s)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repr);
criterion_main!(benches);
