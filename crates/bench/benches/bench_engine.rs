//! Benchmarks of the sharded batch engine: cold vs warm cache, worker-pool
//! vs single-pass sequential execution (no latency emulation — pure CPU;
//! see `exp_engine_scaling` for the latency-overlap wall-clock study).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_archive::{ArchiveStore, Medium};
use saq_core::algebra::QueryExpr;
use saq_core::query::QuerySpec;
use saq_core::{QueryOutcome, QueryRequest};
use saq_engine::{BatchQuery, EngineConfig, QueryEngine};
use saq_sequence::generators::{goalpost, random_walk, GoalpostSpec};

fn archive(n: u64) -> ArchiveStore {
    let mut archive = ArchiveStore::new(Medium::memory());
    for id in 0..n {
        if id % 2 == 0 {
            archive.put(
                id,
                goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() }),
            );
        } else {
            archive.put(id, random_walk(256, 0.0, 0.1, id));
        }
    }
    archive
}

fn batch() -> Vec<BatchQuery> {
    vec![
        BatchQuery::Feature(QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() }),
        BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 }),
        BatchQuery::Feature(QuerySpec::HasSteepPeak { steepness: 1.5, slack: 0.2 }),
        BatchQuery::ValueBand { query: goalpost(GoalpostSpec::default()), delta: 1.0, slack: 1.0 },
    ]
}

fn engine(workers: usize, capacity: usize) -> QueryEngine {
    QueryEngine::new(EngineConfig {
        workers,
        shards: workers * 4,
        cache_capacity: capacity,
        ..EngineConfig::default()
    })
    .unwrap()
}

/// One coalesced wave through the unified request API.
fn run_wave(
    engine: &QueryEngine,
    store: &ArchiveStore,
    queries: &[BatchQuery],
) -> Vec<QueryOutcome> {
    let requests: Vec<QueryRequest> =
        queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    engine
        .run_requests(&store.snapshot(), &requests)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap().outcome)
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let store = archive(64);
    let queries = batch();

    let mut group = c.benchmark_group("engine");
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("cold-batch", workers), &workers, |b, &workers| {
            b.iter(|| {
                // A fresh engine per iteration keeps the cache cold.
                run_wave(&engine(workers, 64), &store, &queries)
            });
        });
    }

    let warm = engine(4, 64);
    run_wave(&warm, &store, &queries);
    group.bench_function("warm-batch-4w", |b| {
        b.iter(|| run_wave(&warm, &store, &queries));
    });

    let sequential = engine(1, 64);
    group.bench_function("sequential-oracle", |b| {
        b.iter(|| sequential.run_sequential(&store, &queries).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
