//! Index-structure microbenchmarks: B+tree insert/point/range and the
//! inverted file's range lookup (the Fig. 10 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_index::{BPlusTree, InvertedIndex};
use std::hint::black_box;

fn bench_bplus(c: &mut Criterion) {
    let mut group = c.benchmark_group("bplustree");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = BPlusTree::with_order(16);
                for i in 0..n as u64 {
                    t.insert((i * 2_654_435_761) % n as u64, i);
                }
                black_box(t.len())
            });
        });
        let mut tree = BPlusTree::with_order(16);
        for i in 0..n as u64 {
            tree.insert((i * 2_654_435_761) % n as u64, i);
        }
        group.bench_with_input(BenchmarkId::new("get", n), &tree, |b, t| {
            b.iter(|| {
                let mut acc = 0u64;
                for k in (0..1000u64).map(|i| i * 37 % n as u64) {
                    if let Some(v) = t.get(&k) {
                        acc = acc.wrapping_add(*v);
                    }
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("range_1pct", n), &tree, |b, t| {
            let lo = n as u64 / 3;
            let hi = lo + n as u64 / 100;
            b.iter(|| black_box(t.range(&lo, &hi).len()));
        });
    }
    group.finish();
}

fn bench_inverted(c: &mut Criterion) {
    let mut group = c.benchmark_group("inverted_file");
    let mut idx = InvertedIndex::new();
    // 10k postings over interval buckets 100..200 (ECG-realistic keys).
    for i in 0..10_000u64 {
        idx.add(100 + (i % 100) as i64, i % 500, (i / 500) as u32);
    }
    group.bench_function("lookup_exact", |b| {
        b.iter(|| black_box(idx.lookup(black_box(136)).len()));
    });
    group.bench_function("lookup_range_pm3", |b| {
        b.iter(|| black_box(idx.lookup_range(black_box(136), 3).len()));
    });
    group.bench_function("matching_sequences_pm3", |b| {
        b.iter(|| black_box(idx.matching_sequences(black_box(136), 3).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_bplus, bench_inverted);
criterion_main!(benches);
