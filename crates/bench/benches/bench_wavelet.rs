//! Wavelet-transform cost (§7 preprocessing): DWT/IDWT roundtrips and
//! threshold compression for both bases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_preprocess::{dwt, idwt, threshold_compress, Wavelet};
use saq_sequence::Sequence;
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.05).sin() * 5.0 + (i as f64 * 0.31).cos()).collect()
}

fn bench_wavelet(c: &mut Criterion) {
    let mut group = c.benchmark_group("wavelet");
    for &n in &[512usize, 4096] {
        let x = signal(n);
        for (name, w) in [("haar", Wavelet::Haar), ("d4", Wavelet::Daubechies4)] {
            group.bench_with_input(BenchmarkId::new(format!("dwt_{name}"), n), &x, |b, x| {
                b.iter(|| black_box(dwt(black_box(x), w)));
            });
            let coeffs = dwt(&x, w);
            group.bench_with_input(
                BenchmarkId::new(format!("idwt_{name}"), n),
                &coeffs,
                |b, cs| {
                    b.iter(|| black_box(idwt(black_box(cs), w)));
                },
            );
        }
        let seq = Sequence::from_samples(&x).unwrap();
        group.bench_with_input(BenchmarkId::new("compress_keep32", n), &seq, |b, s| {
            b.iter(|| {
                black_box(threshold_compress(black_box(s), Wavelet::Haar, 32).compression_ratio())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wavelet);
criterion_main!(benches);
