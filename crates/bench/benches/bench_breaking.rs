//! Breaking-algorithm cost (Fig. 8 instantiations vs the DP baseline).
//!
//! The paper: linear interpolation runs in `O(#peaks · n)`, "much faster
//! than another approach we have taken using dynamic programming... which
//! runs in O(n²)". This bench regenerates that comparison's shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_core::brk::{
    Breaker, DynamicProgrammingBreaker, LinearInterpolationBreaker, LinearRegressionBreaker,
    OnlineBreaker,
};
use saq_sequence::generators::{peaks, PeaksSpec};
use saq_sequence::Sequence;
use std::hint::black_box;

fn workload(n: usize) -> Sequence {
    // A fixed number of peaks regardless of n: interpolation stays ~linear.
    peaks(PeaksSpec {
        duration: n as f64,
        dt: 1.0,
        baseline: 0.0,
        centers: (1..=8).map(|k| n as f64 * k as f64 / 9.0).collect(),
        width: n as f64 / 60.0,
        amplitude: 10.0,
        noise: 0.2,
        seed: 42,
    })
}

fn bench_breaking(c: &mut Criterion) {
    let mut group = c.benchmark_group("breaking");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let seq = workload(n);
        group.bench_with_input(BenchmarkId::new("interpolation", n), &seq, |b, s| {
            let breaker = LinearInterpolationBreaker::new(1.0);
            b.iter(|| black_box(breaker.break_ranges(black_box(s))));
        });
        group.bench_with_input(BenchmarkId::new("regression", n), &seq, |b, s| {
            let breaker = LinearRegressionBreaker::new(1.0);
            b.iter(|| black_box(breaker.break_ranges(black_box(s))));
        });
        group.bench_with_input(BenchmarkId::new("online", n), &seq, |b, s| {
            let breaker = OnlineBreaker::new(1.0);
            b.iter(|| black_box(breaker.break_ranges(black_box(s))));
        });
        // DP is quadratic: cap its input so the suite stays fast.
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("dp", n), &seq, |b, s| {
                let breaker = DynamicProgrammingBreaker::new(4.0, 1.0);
                b.iter(|| black_box(breaker.break_ranges(black_box(s))));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_breaking);
criterion_main!(benches);
