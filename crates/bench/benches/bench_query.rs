//! Query cost: the goal-post shape query over the slope-pattern index vs.
//! re-deriving features from raw sequences per query (the paper's point:
//! the representation "reduces the amount of data to be scanned").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_core::alphabet::{series_symbols, DEFAULT_THETA};
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::query::{evaluate, QuerySpec};
use saq_core::repr::FunctionSeries;
use saq_core::store::{SequenceStore, StoreConfig};
use saq_curves::RegressionFitter;
use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
use saq_sequence::Sequence;
use std::hint::black_box;

fn corpus(n: usize) -> Vec<Sequence> {
    (0..n as u64)
        .map(|i| {
            if i % 2 == 0 {
                goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() })
            } else {
                peaks(PeaksSpec {
                    centers: vec![6.0, 12.0, 18.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                })
            }
        })
        .collect()
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("goalpost_query");
    let pattern = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";
    for &n in &[64usize, 256] {
        let seqs = corpus(n);
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        for s in &seqs {
            store.insert(s).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("via_representation", n), &store, |b, st| {
            let q = QuerySpec::Shape { pattern: pattern.into() };
            b.iter(|| black_box(evaluate(black_box(st), &q).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("raw_rescan", n), &seqs, |b, ss| {
            // Per query: re-break, re-represent, re-quantize, re-match.
            let regex = saq_core::alphabet::parse_slope_pattern(pattern).unwrap();
            let dfa = regex.compile();
            b.iter(|| {
                let mut hits = 0usize;
                for s in ss {
                    let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(s);
                    let series = FunctionSeries::build(s, &ranges, &RegressionFitter).unwrap();
                    let ids: Vec<u8> =
                        series_symbols(&series, DEFAULT_THETA).iter().map(|sym| sym.id()).collect();
                    if dfa.is_match(&ids) {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
