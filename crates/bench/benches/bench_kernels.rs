//! Columnar hot-path kernels vs their scalar formulations: L∞ distance,
//! max-deviation, regression, the DP breaker's cost sweep, and the
//! twiddle-table DFT. The scalar baselines live in `saq_bench::kernels`
//! so the harness and criterion time the same code.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_bench::kernels::{
    dp_break_scalar, kernel_signal, linf_distance_scalar, max_deviation_scalar, naive_dft_scalar,
    regression_scalar,
};
use saq_core::brk::{Breaker, DynamicProgrammingBreaker};
use saq_curves::{max_deviation, Line};
use saq_sequence::{Point, Sequence};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");

    let n = 4096;
    let a = Sequence::from_samples(&kernel_signal(n)).unwrap();
    let b = Sequence::from_samples(&kernel_signal(n).iter().map(|v| v * 1.1).collect::<Vec<_>>())
        .unwrap();
    group.bench_function(BenchmarkId::new("linf/kernel", n), |bch| {
        bch.iter(|| black_box(black_box(&a).linf_distance(black_box(&b))));
    });
    group.bench_function(BenchmarkId::new("linf/scalar", n), |bch| {
        bch.iter(|| black_box(linf_distance_scalar(black_box(&a), black_box(&b))));
    });

    let points: Vec<Point> =
        kernel_signal(n).iter().enumerate().map(|(i, &v)| Point::new(i as f64, v)).collect();
    let line = Line::new(0.001, 0.2);
    group.bench_function(BenchmarkId::new("max_deviation/kernel", n), |bch| {
        bch.iter(|| black_box(max_deviation(black_box(&line), black_box(&points))));
    });
    group.bench_function(BenchmarkId::new("max_deviation/scalar", n), |bch| {
        bch.iter(|| black_box(max_deviation_scalar(black_box(&line), black_box(&points))));
    });
    group.bench_function(BenchmarkId::new("regression/kernel", n), |bch| {
        bch.iter(|| black_box(Line::regression(black_box(&points)).unwrap()));
    });
    group.bench_function(BenchmarkId::new("regression/scalar", n), |bch| {
        bch.iter(|| black_box(regression_scalar(black_box(&points)).unwrap()));
    });

    let n = 256;
    let seq = Sequence::from_samples(&kernel_signal(n)).unwrap();
    let dp = DynamicProgrammingBreaker::new(2.0, 1.0);
    group.bench_function(BenchmarkId::new("dp_break/kernel", n), |bch| {
        bch.iter(|| black_box(dp.break_ranges(black_box(&seq))));
    });
    group.bench_function(BenchmarkId::new("dp_break/scalar", n), |bch| {
        bch.iter(|| black_box(dp_break_scalar(black_box(&seq), 2.0, 1.0)));
    });

    let n = 192;
    let x = kernel_signal(n);
    group.bench_function(BenchmarkId::new("naive_dft/kernel", n), |bch| {
        bch.iter(|| black_box(saq_baseline::dft::naive_dft(black_box(&x))));
    });
    group.bench_function(BenchmarkId::new("naive_dft/scalar", n), |bch| {
        bch.iter(|| black_box(naive_dft_scalar(black_box(&x))));
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
