//! DFT substrate cost: naive O(n²) vs radix-2 FFT, and F-index feature
//! extraction (the [AFS93] comparator's ingest path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saq_baseline::dft::{fft, naive_dft};
use saq_baseline::findex::FeatureVector;
use saq_sequence::Sequence;
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() * 3.0).collect()
}

fn bench_dft(c: &mut Criterion) {
    let mut group = c.benchmark_group("dft");
    for &n in &[256usize, 1024] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("fft", n), &x, |b, x| {
            b.iter(|| black_box(fft(black_box(x))));
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &x, |b, x| {
                b.iter(|| black_box(naive_dft(black_box(x))));
            });
        }
        let seq = Sequence::from_samples(&x).unwrap();
        group.bench_with_input(BenchmarkId::new("feature_extract_k8", n), &seq, |b, s| {
            b.iter(|| black_box(FeatureVector::extract(black_box(s), 8)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dft);
criterion_main!(benches);
