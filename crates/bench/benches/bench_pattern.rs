//! Pattern-engine microbenchmarks: DFA compilation, DFA vs NFA matching,
//! and index scanning with/without required-symbol pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use saq_index::PatternIndex;
use saq_pattern::{Alphabet, Regex};
use std::hint::black_box;

fn alphabet() -> Alphabet {
    Alphabet::new(&['u', 'd', 'f']).unwrap()
}

fn long_symbols(n: usize) -> Vec<u8> {
    // Repeating u d f u d pattern.
    (0..n).map(|i| [0u8, 1, 2, 0, 1][i % 5]).collect()
}

fn bench_pattern(c: &mut Criterion) {
    let ab = alphabet();
    let goalpost = "f* u+ d+ f* u+ d+ f*";

    c.bench_function("pattern/parse+compile", |b| {
        b.iter(|| {
            let re = Regex::parse(black_box(goalpost), &ab).unwrap();
            black_box(re.compile().state_count())
        });
    });

    let re = Regex::parse(goalpost, &ab).unwrap();
    let dfa = re.compile();
    let nfa = re.to_nfa();
    let input = long_symbols(10_000);

    c.bench_function("pattern/dfa_full_match_10k", |b| {
        b.iter(|| black_box(dfa.is_match(black_box(&input))));
    });
    c.bench_function("pattern/nfa_full_match_10k", |b| {
        b.iter(|| black_box(nfa.is_match(black_box(&input))));
    });
    c.bench_function("pattern/dfa_find_matches_10k", |b| {
        let peak = Regex::parse("u+ d+", &ab).unwrap().compile();
        b.iter(|| black_box(peak.find_matches(black_box(&input)).len()));
    });

    // Index scan over 1000 short documents.
    let mut idx = PatternIndex::new();
    for id in 0..1000u64 {
        let doc: Vec<u8> = (0..20).map(|i| [0u8, 1, 2][(id as usize + i) % 3]).collect();
        idx.insert(id, doc);
    }
    let peak_re = Regex::parse("u+ d+", &ab).unwrap();
    c.bench_function("pattern/index_scan_pruned", |b| {
        b.iter(|| black_box(idx.scan(black_box(&peak_re)).len()));
    });
    let peak_dfa = peak_re.compile();
    c.bench_function("pattern/index_scan_unpruned", |b| {
        b.iter(|| black_box(idx.scan_unpruned(black_box(&peak_dfa)).len()));
    });
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
