//! Recovery measurements for the durable storage engine (`exp_recovery`
//! and the `bench_harness` JSON): WAL replay throughput, cold-open
//! (replay the log) vs warm-open (compacted segments only) latency, and
//! the segment reader's O(depth) point-lookup paging.

use saq_archive::{ArchiveStore, DurabilityConfig, Medium};
use saq_core::store::StoreConfig;
use saq_durable::wal::WAL_KEY;
use saq_durable::{Backend, MemoryBackend};
use saq_sequence::generators::{goalpost, GoalpostSpec};
use std::sync::Arc;
use std::time::Instant;

/// Everything one recovery experiment measures.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Archived sequences (= WAL records before compaction).
    pub sequences: usize,
    /// Bytes of write-ahead log replayed by the cold open.
    pub wal_bytes: u64,
    /// Open latency with the whole history still in the WAL.
    pub cold_open_seconds: f64,
    /// Open latency after compaction folded the WAL into segments.
    pub warm_open_seconds: f64,
    /// Cold-open recovery throughput, WAL records per second (the whole
    /// open — replay plus store setup — divided into the record count).
    pub replay_records_per_sec: f64,
    /// Cold-open recovery throughput, MiB of WAL per second.
    pub replay_mib_per_sec: f64,
    /// Segment pages fetched by one cold-document point lookup.
    pub point_lookup_pages: u64,
    /// Cold documents available after the warm open (all of them).
    pub cold_docs: usize,
    /// Ingest throughput with one WAL append (one fsync on file
    /// backends) per record.
    pub put_records_per_sec: f64,
    /// Ingest throughput with `put_batch` group commit: one framed
    /// append per batch of [`GROUP_COMMIT_BATCH`].
    pub group_commit_records_per_sec: f64,
}

/// Records per group in the group-commit ingest measurement.
pub const GROUP_COMMIT_BATCH: usize = 64;

/// Times `f` over `rounds` runs and returns the best (the criterion
/// stand-in discipline: minimum over repeats suppresses scheduler noise).
pub fn best_of<T>(rounds: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(rounds > 0, "best_of needs at least one round");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..rounds {
        let t = Instant::now();
        let value = f();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(value);
    }
    (best, last.expect("rounds > 0"))
}

/// Builds a `sequences`-strong durable archive in memory and measures
/// recovery both ways: cold (open replays every WAL record) and warm
/// (open reads the compacted segment set), plus segment paging.
pub fn measure_recovery(sequences: usize, rounds: usize) -> RecoveryReport {
    let config = DurabilityConfig { compact_after: 0, index_docs: Some(StoreConfig::default()) };
    let backend = Arc::new(MemoryBackend::new());
    let mut archive = ArchiveStore::open_backend(
        backend.clone() as Arc<dyn Backend>,
        Medium::memory(),
        config.clone(),
    )
    .expect("fresh backend opens");
    for id in 0..sequences as u64 {
        archive.put(id, goalpost(GoalpostSpec { seed: id, noise: 0.1, ..Default::default() }));
    }
    drop(archive);
    let wal_bytes =
        backend.get(WAL_KEY).expect("wal readable").map(|b| b.len() as u64).unwrap_or(0);

    // Cold open: every record replays. Fork per round so each open sees
    // identical bytes.
    let (cold_open_seconds, _) = best_of(rounds, || {
        let fork = Arc::new(backend.fork()) as Arc<dyn Backend>;
        let archive = ArchiveStore::open_backend(fork, Medium::memory(), config.clone())
            .expect("cold reopen succeeds");
        assert_eq!(archive.ids().len(), sequences, "cold open recovered everything");
    });

    // Warm open: compaction folds the log into segments first.
    let mut archive = ArchiveStore::open_backend(
        backend.clone() as Arc<dyn Backend>,
        Medium::memory(),
        config.clone(),
    )
    .expect("reopen for compaction");
    archive.compact().expect("compaction succeeds");
    drop(archive);
    let (warm_open_seconds, (point_lookup_pages, cold_docs)) = best_of(rounds, || {
        let archive = ArchiveStore::open_backend(
            backend.clone() as Arc<dyn Backend>,
            Medium::memory(),
            config.clone(),
        )
        .expect("warm reopen succeeds");
        assert_eq!(archive.ids().len(), sequences, "warm open recovered everything");
        let cold = archive.cold_docs().expect("compaction persisted documents");
        use saq_index::DocPager as _;
        let before = cold.pages_read();
        cold.doc(sequences as u64 / 2).expect("point lookup serves");
        (cold.pages_read() - before, cold.ids().len())
    });

    // Ingest throughput: record-at-a-time puts vs group commit, each
    // into a fresh backend so WAL length starts equal. The corpus is
    // pre-generated — the clock sees only the write path.
    let corpus: Vec<(u64, saq_sequence::Sequence)> = (0..sequences as u64)
        .map(|id| (id, goalpost(GoalpostSpec { seed: id, noise: 0.1, ..Default::default() })))
        .collect();
    let ingest_config = DurabilityConfig { compact_after: 0, index_docs: None };
    let fresh = |config: &DurabilityConfig| {
        ArchiveStore::open_backend(
            Arc::new(MemoryBackend::new()) as Arc<dyn Backend>,
            Medium::memory(),
            config.clone(),
        )
        .expect("fresh backend opens")
    };
    let (put_seconds, _) = best_of(rounds, || {
        let mut archive = fresh(&ingest_config);
        for (id, seq) in &corpus {
            archive.put(*id, seq.clone());
        }
        archive.generation()
    });
    let (batch_seconds, _) = best_of(rounds, || {
        let mut archive = fresh(&ingest_config);
        for chunk in corpus.chunks(GROUP_COMMIT_BATCH) {
            archive.put_batch(chunk.to_vec());
        }
        archive.generation()
    });

    let replay = cold_open_seconds.max(1e-9);
    RecoveryReport {
        sequences,
        wal_bytes,
        cold_open_seconds,
        warm_open_seconds,
        replay_records_per_sec: sequences as f64 / replay,
        replay_mib_per_sec: wal_bytes as f64 / (1024.0 * 1024.0) / replay,
        point_lookup_pages,
        cold_docs,
        put_records_per_sec: sequences as f64 / put_seconds.max(1e-9),
        group_commit_records_per_sec: sequences as f64 / batch_seconds.max(1e-9),
    }
}

/// Today's date as `YYYY-MM-DD` (UTC), without a calendar dependency:
/// the classic civil-from-days conversion. `SAQ_BENCH_DATE` overrides it
/// for reproducible harness output.
pub fn bench_date() -> String {
    if let Ok(date) = std::env::var("SAQ_BENCH_DATE") {
        return date;
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Howard Hinnant's `civil_from_days`: days since 1970-01-01 → (y, m, d).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_hits_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn recovery_measures_a_tiny_store() {
        let report = measure_recovery(8, 1);
        assert_eq!(report.sequences, 8);
        assert!(report.wal_bytes > 0);
        assert!(report.cold_open_seconds > 0.0 && report.warm_open_seconds > 0.0);
        assert_eq!(report.cold_docs, 8);
        assert!(report.point_lookup_pages >= 1);
        assert!(report.put_records_per_sec > 0.0);
        assert!(report.group_commit_records_per_sec > 0.0);
    }
}
