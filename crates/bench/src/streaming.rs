//! Streaming-ingestion measurements shared by `exp_streaming` and the
//! versioned harness: three live-feed shapes (ticker, ECG monitor, fleet
//! telemetry) drive append waves through a streaming store with standing
//! queries registered, and the incremental work counters — splice
//! re-broken points, subscription-pump evaluations — are compared against
//! what a batch re-run of the same waves would have paid.

use crate::env_usize;
use saq_core::algebra::{QueryExpr, StoreEngine};
use saq_core::store::{SequenceStore, StoreConfig};
use saq_core::SubscriptionRegistry;
use saq_ecg::synth::{synthesize, EcgSpec};
use saq_sequence::generators::random_walk;
use saq_sequence::{Point, Sequence};

/// One scenario's measured incremental-vs-batch work.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Scenario name (`ticker`, `ecg`, `fleet`).
    pub name: &'static str,
    /// Sequences in the store at the end of the run.
    pub sequences: usize,
    /// Standing queries registered for the run.
    pub subscriptions: usize,
    /// Append waves applied.
    pub waves: usize,
    /// Points appended across all waves.
    pub appended_points: usize,
    /// Points the online breaker actually re-examined.
    pub rebroken_points: usize,
    /// Points a batch re-run would have examined (the full extended
    /// sequence, every wave).
    pub batch_points: usize,
    /// Subscriptions the pump actually executed.
    pub evaluated: u64,
    /// `batch_points / rebroken_points` — the splice win.
    pub splice_speedup: f64,
    /// `subscriptions × waves / evaluated` — the pruning win.
    pub pump_speedup: f64,
}

/// A deterministic walk tail continuing from `last` with unit spacing.
fn walk_tail(last: Point, n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let (mut t, mut v) = (last.t, last.v);
    (0..n)
        .map(|_| {
            t += 1.0;
            v += ((next() % 200) as f64 - 99.5) / 50.0;
            Point::new(t, v)
        })
        .collect()
}

struct Run {
    store: SequenceStore,
    registry: SubscriptionRegistry,
    appended: usize,
    rebroken: usize,
    batch: usize,
    waves: usize,
}

impl Run {
    fn new() -> Run {
        Run {
            store: SequenceStore::new(StoreConfig::streaming()).expect("streaming config valid"),
            registry: SubscriptionRegistry::new(),
            appended: 0,
            rebroken: 0,
            batch: 0,
            waves: 0,
        }
    }

    /// Registers a standing query and pumps its baseline so later waves
    /// measure steady-state incremental work only.
    fn subscribe(&mut self, expr: QueryExpr) {
        self.registry.register(expr).expect("scenario expressions are valid");
    }

    fn pump_baseline(&mut self) {
        let engine = StoreEngine::new(&self.store);
        self.registry.pump(&engine, None, None).expect("baseline pump");
        // Baseline evaluations are setup cost, not steady-state work.
        self.waves = 0;
    }

    /// One append wave: splice the tail in, then pump the standing
    /// queries with the exact dirty set the wave produced.
    fn wave(&mut self, id: u64, tail: &[Point]) {
        let report = self.store.append_points(id, tail).expect("scenario appends are valid");
        self.appended += tail.len();
        self.rebroken += report.rebroken_points;
        self.batch += report.total_points;
        let engine = StoreEngine::new(&self.store);
        self.registry.pump(&engine, Some(&[id]), None).expect("wave pump");
        self.waves += 1;
    }

    fn report(self, name: &'static str, baseline_evals: u64) -> StreamingReport {
        let evaluated = self.registry.counters().evaluated - baseline_evals;
        let subs = self.registry.len();
        StreamingReport {
            name,
            sequences: self.store.len(),
            subscriptions: subs,
            waves: self.waves,
            appended_points: self.appended,
            rebroken_points: self.rebroken,
            batch_points: self.batch,
            evaluated,
            splice_speedup: self.batch as f64 / self.rebroken.max(1) as f64,
            pump_speedup: (subs * self.waves) as f64 / evaluated.max(1) as f64,
        }
    }
}

/// Ticker tape: `n` long random-walk price feeds, each wave appending a
/// few trades to one of them. Watchers are banded over id ranges, so a
/// wave's dirty id prunes everyone watching the other bands.
pub fn measure_ticker(n: usize, waves: usize) -> StreamingReport {
    let mut run = Run::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = run.store.insert(&random_walk(300, 0.0, 0.3, i as u64)).expect("ticker corpus");
        ids.push(id);
    }
    let band = (n / 8).max(1) as u64;
    for w in 0..8u64 {
        let lo = ids[0] + w * band;
        run.subscribe(QueryExpr::peak_count(2, 1).and(QueryExpr::id_range(lo, lo + band - 1)));
        run.subscribe(
            QueryExpr::min_steepness(0.8, 0.2).and(QueryExpr::id_range(lo, lo + band - 1)),
        );
    }
    run.pump_baseline();
    let baseline = run.registry.counters().evaluated;
    for w in 0..waves {
        let id = ids[w * 7 % ids.len()];
        let last = *run.store.get(id).unwrap().raw.as_ref().unwrap().points().last().unwrap();
        let tail = walk_tail(last, 4 + w % 12, w as u64);
        run.wave(id, &tail);
    }
    run.report("ticker", baseline)
}

/// ECG monitor: one long lead streamed chunk by chunk. The feed starts at
/// the paper's regular ~136-sample rhythm and drifts to the anomalous
/// ~149-sample rhythm partway through; a standing `peak_interval(149)`
/// query is the alarm. One stream means pruning cannot help — the splice
/// win is the whole story.
pub fn measure_ecg(waves: usize) -> StreamingReport {
    let chunk = 125;
    let normal = synthesize(EcgSpec { n: 500 + waves * chunk, ..EcgSpec::default() });
    let anomalous = synthesize(EcgSpec {
        n: waves * chunk,
        rr: 149.0,
        first_r: 89.0,
        seed: 0xEC61,
        ..EcgSpec::default()
    });
    // Splice the two rhythms into one feed: regular lead-in, then the
    // slowed RR anomaly, timestamps continuing seamlessly.
    let switch = 500 + (waves / 2) * chunk;
    let mut feed: Vec<Point> = normal.points()[..switch].to_vec();
    let t0 = feed.last().unwrap().t + 1.0;
    feed.extend(anomalous.points().iter().map(|p| Point::new(p.t + t0, p.v)));

    let mut run = Run::new();
    let id =
        run.store.insert(&Sequence::new(feed[..500].to_vec()).unwrap()).expect("ecg lead ingests");
    run.subscribe(QueryExpr::peak_interval(149, 2));
    run.subscribe(QueryExpr::peak_interval(136, 2));
    run.pump_baseline();
    let baseline = run.registry.counters().evaluated;
    let mut cursor = 500;
    for _ in 0..waves {
        let end = (cursor + chunk).min(feed.len());
        run.wave(id, &feed[cursor..end]);
        cursor = end;
    }
    run.report("ecg", baseline)
}

/// Fleet telemetry: many short per-vehicle feeds, high churn — every wave
/// a different vehicle reports a handful of samples. Watchers are
/// per-vehicle-group, so pruning carries the pump.
pub fn measure_fleet(n: usize, waves: usize) -> StreamingReport {
    let mut run = Run::new();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = run
            .store
            .insert(&random_walk(40, (i % 5) as f64, 0.2, 1000 + i as u64))
            .expect("fleet corpus");
        ids.push(id);
    }
    let group = (n / 16).max(1) as u64;
    for g in 0..16u64 {
        let lo = ids[0] + g * group;
        run.subscribe(QueryExpr::peak_count(1, 1).and(QueryExpr::id_range(lo, lo + group - 1)));
    }
    run.pump_baseline();
    let baseline = run.registry.counters().evaluated;
    for w in 0..waves {
        let id = ids[(w * 13 + 5) % ids.len()];
        let last = *run.store.get(id).unwrap().raw.as_ref().unwrap().points().last().unwrap();
        let tail = walk_tail(last, 1 + w % 8, 77 + w as u64);
        run.wave(id, &tail);
    }
    run.report("fleet", baseline)
}

/// All three scenarios at the environment-configured scale.
pub fn measure_streaming() -> Vec<StreamingReport> {
    let sequences = env_usize("SAQ_EXP_SEQUENCES", 64).max(16);
    let waves = env_usize("SAQ_EXP_WAVES", 96).max(8);
    vec![
        measure_ticker(sequences / 2, waves),
        measure_ecg(waves.min(48)),
        measure_fleet(sequences, waves),
    ]
}
