//! # saq-bench
//!
//! Experiment binaries and Criterion benches regenerating every figure and
//! table of the paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records).
//!
//! Each binary prints a self-contained report; `cargo run -p saq-bench
//! --bin <name>` regenerates one artifact. This library holds the shared
//! formatting and corpus helpers.

#![forbid(unsafe_code)]

pub mod kernels;
pub mod planner;
pub mod recovery;
pub mod streaming;

use saq_sequence::Sequence;

/// Reads a workload-size knob from the environment (CI smoke-runs cap the
/// heavy experiments via `SAQ_EXP_*`; binaries with scalable workloads
/// should size them through these helpers rather than hard-coding).
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// As [`env_usize`] for floating-point knobs.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("==============================================================");
}

/// Renders a sequence as a compact ASCII sparkline (for eyeballing shapes
/// in terminal output, standing in for the paper's plots).
pub fn sparkline(seq: &Sequence, width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if seq.is_empty() || width == 0 {
        return String::new();
    }
    let stats = seq.stats();
    let range = if stats.range() > 0.0 { stats.range() } else { 1.0 };
    let vals = seq.values();
    let n = vals.len();
    (0..width.min(n))
        .map(|i| {
            let idx = i * n / width.min(n);
            let frac = (vals[idx] - stats.min) / range;
            LEVELS[((frac * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Formats a float tersely for table cells.
pub fn fnum(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// The corpus used by the goal-post experiments: `(label, sequence,
/// true peak count)`.
pub fn goalpost_corpus() -> Vec<(String, Sequence, usize)> {
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
    let mut corpus: Vec<(String, Sequence, usize)> =
        vec![("goalpost/base".into(), goalpost(GoalpostSpec::default()), 2)];
    corpus.push((
        "goalpost/shifted".into(),
        goalpost(GoalpostSpec { peak1: 10.0, peak2: 20.0, ..GoalpostSpec::default() }),
        2,
    ));
    corpus.push((
        "goalpost/contracted".into(),
        goalpost(GoalpostSpec { peak1: 4.0, peak2: 9.5, width: 1.0, ..GoalpostSpec::default() }),
        2,
    ));
    corpus.push((
        "goalpost/taller".into(),
        goalpost(GoalpostSpec { amplitude: 10.5, ..GoalpostSpec::default() }),
        2,
    ));
    corpus.push((
        "one-peak".into(),
        peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }),
        1,
    ));
    corpus.push((
        "three-peaks".into(),
        peaks(PeaksSpec { centers: vec![5.0, 12.0, 19.0], ..PeaksSpec::default() }),
        3,
    ));
    corpus.push((
        "flat".into(),
        peaks(PeaksSpec { centers: vec![], noise: 0.05, ..PeaksSpec::default() }),
        0,
    ));
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        let tent = Sequence::from_samples(&[0.0, 5.0, 10.0, 5.0, 0.0]).unwrap();
        let s = sparkline(&tent, 5);
        assert_eq!(s.chars().count(), 5);
        assert!(s.contains('█'));
        assert_eq!(sparkline(&Sequence::new(vec![]).unwrap(), 10), "");
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(123.4), "123");
        assert_eq!(fnum(3.14881), "3.15");
        assert_eq!(fnum(0.1234), "0.123");
    }

    #[test]
    fn corpus_has_expected_labels() {
        let c = goalpost_corpus();
        assert_eq!(c.len(), 7);
        assert_eq!(c.iter().filter(|(_, _, k)| *k == 2).count(), 4);
    }
}
