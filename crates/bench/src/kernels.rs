//! Columnar hot-path kernels vs their scalar formulations.
//!
//! The library's inner loops (L∞ distance, breaker fitting, DFT) were
//! rewritten as chunked, branch-free sweeps that autovectorize. This
//! module keeps the *scalar* formulations alive as baselines — checked
//! against the optimized kernels for agreement, then timed, so
//! `bench_harness` can record the before/after in the `kernels` section
//! of `BENCH_<date>.json` and `bench_kernels` can track both under
//! criterion.

use crate::recovery::best_of;
use saq_baseline::dft::Complex;
use saq_core::brk::{Breaker, DynamicProgrammingBreaker};
use saq_curves::{Curve, Line};
use saq_sequence::{Point, Sequence};
use std::hint::black_box;

/// One kernel's before/after measurement.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name as recorded in the JSON trajectory.
    pub name: &'static str,
    /// Input size (points, or DFT length).
    pub n: usize,
    /// Best-of-rounds wall time of the scalar formulation.
    pub scalar_seconds: f64,
    /// Best-of-rounds wall time of the shipped kernel.
    pub kernel_seconds: f64,
    /// `scalar / kernel` (>1 means the rewrite won).
    pub speedup: f64,
}

/// Sequential-fold L∞ distance — the loop `Sequence::linf_distance`
/// shipped before the chunked multi-accumulator rewrite.
pub fn linf_distance_scalar(a: &Sequence, b: &Sequence) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let mut best = 0.0f64;
    for (p, q) in a.points().iter().zip(b.points()) {
        best = best.max((p.v - q.v).abs());
    }
    Some(best)
}

/// One-pass max-deviation scan — the fused index-tracking loop
/// `max_deviation` shipped before the two-pass rewrite.
pub fn max_deviation_scalar<C: Curve + ?Sized>(
    curve: &C,
    points: &[Point],
) -> Option<(usize, f64)> {
    let mut worst: Option<(usize, f64)> = None;
    for (i, p) in points.iter().enumerate() {
        let d = (curve.eval(p.t) - p.v).abs();
        if worst.is_none_or(|(_, w)| d > w) {
            worst = Some((i, d));
        }
    }
    worst
}

/// Sequential two-pass least-squares line — `Line::regression` before
/// the chunked-sums rewrite. Returns `(slope, intercept)`.
pub fn regression_scalar(points: &[Point]) -> Option<(f64, f64)> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let (mut st, mut sv) = (0.0f64, 0.0f64);
    for p in points {
        st += p.t;
        sv += p.v;
    }
    let (mt, mv) = (st / nf, sv / nf);
    let (mut stt, mut stv) = (0.0f64, 0.0f64);
    for p in points {
        let dt = p.t - mt;
        stt += dt * dt;
        stv += dt * (p.v - mv);
    }
    if stt == 0.0 {
        return None;
    }
    let slope = stv / stt;
    Some((slope, mv - slope * mt))
}

/// Per-element-trig naive DFT — `naive_dft` before the twiddle table:
/// every inner-loop step pays a `sin`/`cos` pair.
pub fn naive_dft_scalar(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::default();
        for (j, &v) in x.iter().enumerate() {
            let angle = -std::f64::consts::TAU * (j as f64) * (k as f64) / n as f64;
            acc = acc.add(Complex::from_angle(angle).mul(Complex::new(v, 0.0)));
        }
        out.push(acc);
    }
    out
}

/// Fused-loop DP segmentation — the recurrence
/// `DynamicProgrammingBreaker::break_ranges` ran before `fill_costs`
/// split the cost sweep from the argmin.
pub fn dp_break_scalar(
    seq: &Sequence,
    segment_cost: f64,
    error_weight: f64,
) -> Vec<(usize, usize)> {
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    let (mut st, mut sv, mut stt, mut stv, mut svv) =
        (vec![0.0; n + 1], vec![0.0; n + 1], vec![0.0; n + 1], vec![0.0; n + 1], vec![0.0; n + 1]);
    for (i, pt) in seq.points().iter().enumerate() {
        st[i + 1] = st[i] + pt.t;
        sv[i + 1] = sv[i] + pt.v;
        stt[i + 1] = stt[i] + pt.t * pt.t;
        stv[i + 1] = stv[i] + pt.t * pt.v;
        svv[i + 1] = svv[i] + pt.v * pt.v;
    }
    let sse = |lo: usize, hi: usize| -> f64 {
        let n = (hi - lo + 1) as f64;
        if n < 2.0 {
            return 0.0;
        }
        let (dst, dsv) = (st[hi + 1] - st[lo], sv[hi + 1] - sv[lo]);
        let (dstt, dstv, dsvv) =
            (stt[hi + 1] - stt[lo], stv[hi + 1] - stv[lo], svv[hi + 1] - svv[lo]);
        let ctt = dstt - dst * dst / n;
        let ctv = dstv - dst * dsv / n;
        let cvv = dsvv - dsv * dsv / n;
        if ctt.abs() < 1e-12 {
            return cvv.max(0.0);
        }
        (cvv - ctv * ctv / ctt).max(0.0)
    };
    let mut best = vec![f64::INFINITY; n + 1];
    let mut back = vec![0usize; n + 1];
    best[0] = 0.0;
    for j in 1..=n {
        for i in 0..j {
            let c = best[i] + segment_cost + error_weight * sse(i, j - 1);
            if c < best[j] {
                best[j] = c;
                back[j] = i;
            }
        }
    }
    let mut ranges = Vec::new();
    let mut j = n;
    while j > 0 {
        let i = back[j];
        ranges.push((i, j - 1));
        j = i;
    }
    ranges.reverse();
    ranges
}

/// A deterministic wiggly test signal.
pub fn kernel_signal(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() * 3.0 + (i as f64 * 0.031).cos()).collect()
}

/// Times every kernel against its scalar baseline (best of `rounds`,
/// with enough inner repeats per round to dominate timer noise) and
/// checks both formulations still agree on the same input.
pub fn measure_kernels(rounds: usize) -> Vec<KernelReport> {
    let mut reports = Vec::new();
    let mut push = |name, n, scalar: f64, kernel: f64| {
        reports.push(KernelReport {
            name,
            n,
            scalar_seconds: scalar,
            kernel_seconds: kernel,
            speedup: scalar / kernel.max(1e-12),
        });
    };

    // L∞ distance over two long sequences.
    let n = 4096;
    let a = Sequence::from_samples(&kernel_signal(n)).unwrap();
    let b = Sequence::from_samples(&kernel_signal(n).iter().map(|v| v * 1.1).collect::<Vec<_>>())
        .unwrap();
    assert_eq!(a.linf_distance(&b), linf_distance_scalar(&a, &b), "linf kernels agree");
    let (scalar, _) = best_of(rounds, || {
        for _ in 0..256 {
            black_box(linf_distance_scalar(black_box(&a), black_box(&b)));
        }
    });
    let (kernel, _) = best_of(rounds, || {
        for _ in 0..256 {
            black_box(black_box(&a).linf_distance(black_box(&b)));
        }
    });
    push("linf_distance", n, scalar, kernel);

    // Max deviation of a long run from a fitted line.
    let points: Vec<Point> =
        kernel_signal(n).iter().enumerate().map(|(i, &v)| Point::new(i as f64, v)).collect();
    let line = Line::new(0.001, 0.2);
    let dev = saq_curves::max_deviation(&line, &points).unwrap();
    let (si, sv) = max_deviation_scalar(&line, &points).unwrap();
    assert!((dev.index, dev.value) == (si, sv), "max_deviation kernels agree");
    let (scalar, _) = best_of(rounds, || {
        for _ in 0..256 {
            black_box(max_deviation_scalar(black_box(&line), black_box(&points)));
        }
    });
    let (kernel, _) = best_of(rounds, || {
        for _ in 0..256 {
            black_box(saq_curves::max_deviation(black_box(&line), black_box(&points)));
        }
    });
    push("max_deviation", n, scalar, kernel);

    // Least-squares regression over the same run.
    let reg = Line::regression(&points).unwrap();
    let (slope, intercept) = regression_scalar(&points).unwrap();
    assert!(
        (reg.slope - slope).abs() < 1e-9 && (reg.intercept - intercept).abs() < 1e-9,
        "regression kernels agree"
    );
    let (scalar, _) = best_of(rounds, || {
        for _ in 0..256 {
            black_box(regression_scalar(black_box(&points)));
        }
    });
    let (kernel, _) = best_of(rounds, || {
        for _ in 0..256 {
            let _ = black_box(Line::regression(black_box(&points)));
        }
    });
    push("regression", n, scalar, kernel);

    // DP segmentation (O(n²) recurrence) over a medium run.
    let n = 256;
    let seq = Sequence::from_samples(&kernel_signal(n)).unwrap();
    let dp = DynamicProgrammingBreaker::new(2.0, 1.0);
    assert_eq!(dp.break_ranges(&seq), dp_break_scalar(&seq, 2.0, 1.0), "dp kernels agree");
    let (scalar, _) = best_of(rounds, || {
        for _ in 0..4 {
            black_box(dp_break_scalar(black_box(&seq), 2.0, 1.0));
        }
    });
    let (kernel, _) = best_of(rounds, || {
        for _ in 0..4 {
            black_box(dp.break_ranges(black_box(&seq)));
        }
    });
    push("dp_break", n, scalar, kernel);

    // Naive DFT: twiddle table vs a sin/cos pair per inner-loop step.
    let n = 192;
    let x = kernel_signal(n);
    let fast = saq_baseline::dft::naive_dft(&x);
    for (u, v) in naive_dft_scalar(&x).iter().zip(&fast) {
        assert!((u.re - v.re).abs() < 1e-8 && (u.im - v.im).abs() < 1e-8, "dft kernels agree");
    }
    let (scalar, _) = best_of(rounds, || {
        for _ in 0..4 {
            black_box(naive_dft_scalar(black_box(&x)));
        }
    });
    let (kernel, _) = best_of(rounds, || {
        for _ in 0..4 {
            black_box(saq_baseline::dft::naive_dft(black_box(&x)));
        }
    });
    push("naive_dft", n, scalar, kernel);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_baselines_agree_with_kernels() {
        // measure_kernels asserts agreement internally; one round keeps
        // the test fast while still exercising every pair.
        let reports = measure_kernels(1);
        assert_eq!(reports.len(), 5);
        for r in &reports {
            assert!(r.scalar_seconds > 0.0 && r.kernel_seconds > 0.0, "{r:?}");
        }
    }

    #[test]
    fn dp_scalar_matches_breaker_on_edge_shapes() {
        let dp = DynamicProgrammingBreaker::new(1.0, 1.0);
        for vals in [vec![7.0], vec![0.0, 1.0, 2.0, 3.0], kernel_signal(40)] {
            let s = Sequence::from_samples(&vals).unwrap();
            assert_eq!(dp.break_ranges(&s), dp_break_scalar(&s, 1.0, 1.0));
        }
        assert!(dp_break_scalar(&Sequence::new(vec![]).unwrap(), 1.0, 1.0).is_empty());
    }
}
