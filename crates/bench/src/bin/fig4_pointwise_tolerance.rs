//! Figure 4: the fixed two-peak exemplar "with pointwise fluctuations
//! within some tolerable distance" — the one kind of variation value-based
//! matching does accept.

use saq_baseline::euclid::{band_match, max_pointwise_distance};
use saq_bench::{banner, fnum, sparkline};
use saq_preprocess::add_gaussian_noise;
use saq_sequence::generators::{goalpost, GoalpostSpec};

fn main() {
    banner("Fig. 4", "pointwise fluctuations stay within the value band");

    let exemplar = goalpost(GoalpostSpec::default());
    let delta = 0.5;
    println!("exemplar: {}\n", sparkline(&exemplar, 49));

    println!("noise sigma | Linf distance | within +-{delta} band");
    for sigma in [0.05, 0.10, 0.15, 0.30, 0.60] {
        let noisy = add_gaussian_noise(&exemplar, sigma, 99);
        let d = max_pointwise_distance(&exemplar, &noisy).unwrap();
        println!(
            "{:>11} | {:>13} | {}",
            sigma,
            fnum(d),
            if band_match(&exemplar, &noisy, delta) { "YES" } else { "no" }
        );
    }
    println!("\nshape check: small fluctuations match; once fluctuations exceed");
    println!("delta the value-based notion rejects even this identical pattern.");
}
