//! SAQL front-end throughput and round-trip soundness on a generated
//! workload: random `QueryExpr` trees are printed to SAQL, re-parsed, and
//! planned, asserting
//!
//! * **parse ∘ print = id** — the re-parsed tree is structurally identical
//!   to the original (bit-identical numbers included), and
//! * **plan equivalence** — original and re-parsed trees produce the same
//!   physical plan (`explain` output compared verbatim), and
//! * **result equivalence** — on a sample of the workload, the
//!   statistics-backed store engine returns identical outcomes for both.
//!
//! Also reports parse and parse+plan throughput (queries/second) — the
//! front-end cost a serving layer would pay per textual query.
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_QUERIES` — workload size (default 400)
//! * `SAQ_EXP_SEQUENCES` — store size behind the planner (default 120)

use rand::rngs::StdRng;
use rand::{RngCore as _, SeedableRng as _};
use saq_bench::{banner, env_usize, fnum};
use saq_core::algebra::{PlanStats, Planner, QueryEngine as _, QueryExpr, StoreEngine};
use saq_core::lang::saql;
use saq_core::store::{SequenceStore, StoreConfig};
use saq_core::IndexCaps;
use saq_core::QueryRequest;
use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq_sequence::Sequence;
use std::time::Instant;

fn main() {
    banner("exp_saql", "SAQL parse/print round-trip and front-end throughput");
    let n_queries = env_usize("SAQ_EXP_QUERIES", 400);
    let n_sequences = env_usize("SAQ_EXP_SEQUENCES", 120);

    let store = ward(n_sequences);
    let planner = Planner::with_stats(IndexCaps::all(), PlanStats::from_store(&store));
    let engine = StoreEngine::new(&store);

    let mut rng = StdRng::seed_from_u64(0x5aa1_1996);
    let exprs: Vec<QueryExpr> = (0..n_queries).map(|_| random_expr(&mut rng, 0)).collect();
    let texts: Vec<String> =
        exprs.iter().map(|e| e.to_saql().expect("generated exprs are printable")).collect();
    let total_chars: usize = texts.iter().map(String::len).sum();

    // Round-trip soundness: tree identity and plan identity, every query.
    for (expr, text) in exprs.iter().zip(&texts) {
        let back = saql::parse(text).expect("printed SAQL must re-parse");
        assert_eq!(&back, expr, "parse∘print must be the identity: `{text}`");
        let original = planner.plan(expr).expect("generated exprs plan");
        let reparsed = planner.plan(&back).expect("re-parsed exprs plan");
        assert_eq!(original.explain(), reparsed.explain(), "plans must match: `{text}`");
    }

    // Result equivalence on a sample (execution dominates; keep it small).
    let sample = exprs.len().min(24);
    for (expr, text) in exprs.iter().zip(&texts).take(sample) {
        let direct = engine.execute(expr).expect("generated exprs execute");
        let via_text =
            engine.request(&QueryRequest::saql(text)).expect("SAQL path executes").outcome;
        assert_eq!(direct, via_text, "textual path must match the constructed tree: `{text}`");
    }

    // Throughput: parse alone, then parse + plan.
    let t = Instant::now();
    for text in &texts {
        let _ = saql::parse(text).unwrap();
    }
    let parse_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for text in &texts {
        let _ = saql::parse_and_plan(text, &planner).unwrap();
    }
    let parse_plan_secs = t.elapsed().as_secs_f64();

    println!("workload: {n_queries} queries over a {n_sequences}-sequence store");
    println!("  avg query length     {} chars", total_chars / n_queries.max(1));
    println!("  round-trips          {n_queries}/{n_queries} identical (tree + plan)");
    println!("  result equivalence   {sample}/{sample} sampled queries identical");
    println!("  parse throughput     {} q/s", fnum(n_queries as f64 / parse_secs.max(1e-9)));
    println!("  parse+plan           {} q/s", fnum(n_queries as f64 / parse_plan_secs.max(1e-9)));
}

/// A mixed corpus for the planner's statistics snapshot.
fn ward(n: usize) -> SequenceStore {
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    for i in 0..n as u64 {
        let seq = match i % 4 {
            0 => goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: i,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            2 => peaks(PeaksSpec { centers: vec![12.0], seed: i, ..PeaksSpec::default() }),
            _ => random_walk(49, 0.0, 0.3, i),
        };
        store.insert(&seq).unwrap();
    }
    store
}

fn pick(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n
}

/// A random expression tree covering every `QueryExpr` node and leaf
/// shape, depth-bounded so the workload stays parse-dominated.
fn random_expr(rng: &mut StdRng, depth: usize) -> QueryExpr {
    if depth >= 3 || pick(rng, 3) == 0 {
        return random_leaf(rng);
    }
    match pick(rng, 5) {
        0 => random_expr(rng, depth + 1).and(random_expr(rng, depth + 1)),
        1 => random_expr(rng, depth + 1).or(random_expr(rng, depth + 1)),
        2 => random_expr(rng, depth + 1).negate(),
        3 => random_expr(rng, depth + 1).limit(pick(rng, 9) as usize),
        _ => random_expr(rng, depth + 1).top_k(1 + pick(rng, 8) as usize),
    }
}

fn random_leaf(rng: &mut StdRng) -> QueryExpr {
    match pick(rng, 7) {
        0 => QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*"),
        1 => QueryExpr::peak_count(pick(rng, 4) as usize, pick(rng, 3) as usize),
        2 => QueryExpr::peak_interval(3 + pick(rng, 10) as i64, pick(rng, 4) as i64),
        3 => QueryExpr::min_steepness(0.4 + pick(rng, 30) as f64 * 0.1, pick(rng, 6) as f64 * 0.1),
        4 => QueryExpr::has_steep_peak(0.4 + pick(rng, 30) as f64 * 0.1, pick(rng, 6) as f64 * 0.1),
        5 => {
            let lo = pick(rng, 100);
            QueryExpr::id_range(lo, lo + pick(rng, 100))
        }
        _ => {
            let len = 3 + pick(rng, 5) as usize;
            let values: Vec<f64> = (0..len).map(|_| 95.0 + pick(rng, 80) as f64 * 0.125).collect();
            QueryExpr::value_band(
                Sequence::from_samples(&values).unwrap(),
                pick(rng, 12) as f64 * 0.25,
                pick(rng, 8) as f64 * 0.25,
            )
        }
    }
}
