//! §1's latency motivation, quantified: query latency against raw data on a
//! remote archive vs. against the local compact representation, across
//! media profiles and corpus sizes.

use saq_archive::{Medium, TieredStore};
use saq_bench::{banner, fnum};
use saq_core::query::QuerySpec;
use saq_core::store::StoreConfig;
use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

fn main() {
    banner("§1", "query latency: local representation vs. remote raw archive");

    println!("corpus | medium          | full raw scan (s) | local query (s) | speedup");
    for &count in &[20usize, 100, 400] {
        for medium in [Medium::remote_tape(), Medium::optical_jukebox(), Medium::local_disk()] {
            let mut tiered =
                TieredStore::new(StoreConfig::default(), Medium::memory(), medium).unwrap();
            for i in 0..count as u64 {
                let seq = if i % 2 == 0 {
                    goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() })
                } else {
                    peaks(PeaksSpec {
                        centers: vec![6.0, 12.0, 18.0],
                        seed: i,
                        noise: 0.1,
                        ..PeaksSpec::default()
                    })
                };
                tiered.insert(&seq).unwrap();
            }
            let (outcome, local) =
                tiered.query_local(&QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
            // Half the corpus is two-peaked by construction; noise may
            // occasionally perturb a count, so demand the bulk of them.
            assert!(outcome.exact.len() * 10 >= count * 4, "{} of {count}", outcome.exact.len());
            let scan = tiered.full_archive_scan_cost();
            println!(
                "{:>6} | {:15} | {:>17} | {:>15} | {:>7}x",
                count,
                medium.name,
                fnum(scan),
                format!("{local:.6}"),
                fnum(scan / local.max(1e-12))
            );
        }
    }
    println!("\nshape check: the slower and bigger the archive, the larger the win;");
    println!("tape scans cost hours while local feature queries stay sub-millisecond,");
    println!("reproducing the several-days-vs-interactive gap of Sec. 1.");
}
