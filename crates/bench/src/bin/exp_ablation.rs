//! Ablation of the breaking template's design choices (DESIGN.md §6):
//! breakpoint-side assignment (Fig. 8 steps 4a–4c), singleton merging, and
//! post-hoc coalescing — measured on segment counts, fragmentation, ε
//! compliance, and goal-post query accuracy.

use saq_bench::{banner, fnum, goalpost_corpus};
use saq_core::alphabet::{goalpost_pattern, series_symbols, DEFAULT_THETA};
use saq_core::brk::{BreakOptions, Breaker, OfflineBreaker};
use saq_core::repr::FunctionSeries;
use saq_curves::EndpointInterpolator;
use saq_ecg::synth::{synthesize, EcgSpec};

fn variants() -> Vec<(&'static str, BreakOptions)> {
    vec![
        ("full (paper)", BreakOptions::default()),
        (
            "no side assignment",
            BreakOptions { assign_breakpoint_side: false, ..BreakOptions::default() },
        ),
        ("no singleton merge", BreakOptions { merge_singletons: false, ..BreakOptions::default() }),
        ("with coalescing", BreakOptions { coalesce: true, ..BreakOptions::default() }),
        (
            "bare recursion",
            BreakOptions {
                assign_breakpoint_side: false,
                merge_singletons: false,
                coalesce: false,
            },
        ),
    ]
}

fn main() {
    banner("ablation", "design choices of the Fig. 8 template");

    // --- ECG: segment counts and deviation at eps = 10.
    let ecg = synthesize(EcgSpec { noise: 3.0, rr_jitter: 2.0, ..EcgSpec::default() });
    println!("ECG (500 samples, noise 3.0, eps = 10):");
    println!("variant             | segments | singletons | frag % long | max dev");
    for (name, opts) in variants() {
        let breaker = OfflineBreaker::with_options(EndpointInterpolator, 10.0, opts);
        let ranges = breaker.break_ranges(&ecg);
        let singles = ranges.iter().filter(|(lo, hi)| lo == hi).count();
        let long = ranges.iter().filter(|(lo, hi)| hi - lo + 1 > 2).count();
        let series = FunctionSeries::build(&ecg, &ranges, &EndpointInterpolator).unwrap();
        println!(
            "{:19} | {:>8} | {:>10} | {:>10}% | {}",
            name,
            ranges.len(),
            singles,
            (100 * long) / ranges.len(),
            fnum(series.max_deviation_from(&ecg))
        );
    }

    // --- Goal-post corpus: query accuracy per variant.
    println!("\ngoal-post query accuracy over the 7-member corpus:");
    let corpus = goalpost_corpus();
    let dfa = goalpost_pattern().compile();
    for (name, opts) in variants() {
        let breaker = OfflineBreaker::with_options(EndpointInterpolator, 1.0, opts);
        let mut correct = 0;
        for (_, seq, true_peaks) in &corpus {
            let ranges = breaker.break_ranges(seq);
            let series = FunctionSeries::build(seq, &ranges, &EndpointInterpolator).unwrap();
            // Same singleton-flat filtering the store applies.
            let ids: Vec<u8> = series_symbols(&series, DEFAULT_THETA)
                .into_iter()
                .zip(series.segments())
                .filter(|(sym, seg)| {
                    !(seg.len() == 1 && *sym == saq_core::alphabet::SlopeSymbol::Flat)
                })
                .map(|(sym, _)| sym.id())
                .collect();
            let matched = dfa.is_match(&ids);
            if matched == (*true_peaks == 2) {
                correct += 1;
            }
        }
        println!("  {:19} -> {correct}/7", name);
    }
    // --- Apex placement on asymmetric tents: the side-assignment steps
    // decide whether the apex sample joins the rising or descending run;
    // on an asymmetric tent the apex is closer to the shallow side's line,
    // and steps 4a-4c put it there.
    println!("\napex ownership on an asymmetric tent (rise slope 1, fall slope -4):");
    let tent = saq_sequence::generators::piecewise_linear(&[
        (0.0, 0.0),
        (20.0, 20.0),
        (25.0, 0.0),
        (45.0, 0.0),
    ]);
    for (name, opts) in [
        ("full (paper)", BreakOptions::default()),
        (
            "no side assignment",
            BreakOptions { assign_breakpoint_side: false, ..BreakOptions::default() },
        ),
    ] {
        let breaker = OfflineBreaker::with_options(EndpointInterpolator, 0.5, opts);
        let ranges = breaker.break_ranges(&tent);
        // Which segment contains index 20 (the apex)?
        let owner = ranges.iter().position(|&(lo, hi)| (lo..=hi).contains(&20)).unwrap();
        let (lo, hi) = ranges[owner];
        let side = if hi == 20 {
            "last of rising"
        } else if lo == 20 {
            "first of falling"
        } else {
            "interior"
        };
        println!("  {:19} -> apex sample is {} (segment [{lo},{hi}])", name, side);
    }

    println!("\nshape check: the full template dominates or ties every ablation;");
    println!("coalescing trims fragments without breaching eps, and the 4a-4c");
    println!("side assignment places the apex with the line it actually fits.");
}
