//! Durable-engine recovery: WAL replay throughput and cold-open vs
//! warm-open latency across store sizes, plus the segment reader's
//! O(depth) point-lookup paging.
//!
//! Knobs: `SAQ_EXP_RECOVERY_SEQUENCES` caps the largest store (default
//! 512), `SAQ_EXP_ROUNDS` the best-of repetitions (default 3).

use saq_bench::recovery::measure_recovery;
use saq_bench::{banner, env_usize, fnum};

fn main() {
    banner("storage", "recovery: WAL replay vs compacted segment open");
    let max = env_usize("SAQ_EXP_RECOVERY_SEQUENCES", 512);
    let rounds = env_usize("SAQ_EXP_ROUNDS", 3).max(1);

    println!("sequences | wal KiB | cold open (ms) | warm open (ms) | replay rec/s | lookup pages");
    let mut n = 32;
    while n <= max {
        let r = measure_recovery(n, rounds);
        println!(
            "{:>9} | {:>7} | {:>14} | {:>14} | {:>12} | {:>12}",
            r.sequences,
            fnum(r.wal_bytes as f64 / 1024.0),
            fnum(r.cold_open_seconds * 1e3),
            fnum(r.warm_open_seconds * 1e3),
            fnum(r.replay_records_per_sec),
            r.point_lookup_pages,
        );
        assert_eq!(r.cold_docs, r.sequences, "compaction persisted every document");
        assert!(
            r.point_lookup_pages <= 4,
            "a point lookup pages O(depth), not O(archive): {} pages",
            r.point_lookup_pages
        );
        n *= 4;
    }
    println!("\nshape check: warm opens skip replay (segments load directly), so the");
    println!("gap between the columns is the WAL replay cost — linear in history,");
    println!("reclaimed by compaction; point lookups touch a constant page count.");
}
