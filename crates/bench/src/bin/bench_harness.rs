//! The versioned benchmark harness: runs every sibling `exp_*`/`fig*`/
//! `table*` experiment binary, re-measures the recovery numbers
//! in-process, and writes a dated `BENCH_<date>.json` so performance
//! history is checked in next to the code it measures.
//!
//! Usage: `cargo run --release -p saq-bench --bin bench_harness [out.json]`
//!
//! Env: `SAQ_BENCH_SMOKE=1` skips re-spawning the experiment binaries
//! (CI's experiments job already runs each one; the harness then only
//! records the recovery measurements). `SAQ_BENCH_DATE=YYYY-MM-DD` pins
//! the file name and stamp for reproducible output.

use saq_bench::kernels::measure_kernels;
use saq_bench::planner::measure_adaptive;
use saq_bench::recovery::{bench_date, measure_recovery};
use saq_bench::streaming::measure_streaming;
use saq_bench::{env_usize, fnum};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let date = bench_date();
    let out_path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{date}.json")));
    let smoke = std::env::var("SAQ_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let rounds = env_usize("SAQ_EXP_ROUNDS", 3).max(1);

    // The recovery numbers the storage engine is benchmarked on.
    let sizes = [64usize, env_usize("SAQ_EXP_RECOVERY_SEQUENCES", 512)];
    let mut recovery_json = Vec::new();
    for &n in &sizes {
        let r = measure_recovery(n, rounds);
        println!(
            "recovery n={n}: cold {} ms, warm {} ms, replay {} rec/s, {} lookup pages",
            fnum(r.cold_open_seconds * 1e3),
            fnum(r.warm_open_seconds * 1e3),
            fnum(r.replay_records_per_sec),
            r.point_lookup_pages
        );
        println!(
            "  ingest n={n}: {} rec/s per-record, {} rec/s group-commit",
            fnum(r.put_records_per_sec),
            fnum(r.group_commit_records_per_sec)
        );
        recovery_json.push(format!(
            "    {{\"sequences\": {}, \"wal_bytes\": {}, \"cold_open_seconds\": {:.6}, \
             \"warm_open_seconds\": {:.6}, \"replay_records_per_sec\": {:.1}, \
             \"replay_mib_per_sec\": {:.3}, \"point_lookup_pages\": {}, \
             \"put_records_per_sec\": {:.1}, \"group_commit_records_per_sec\": {:.1}}}",
            r.sequences,
            r.wal_bytes,
            r.cold_open_seconds,
            r.warm_open_seconds,
            r.replay_records_per_sec,
            r.replay_mib_per_sec,
            r.point_lookup_pages,
            r.put_records_per_sec,
            r.group_commit_records_per_sec
        ));
    }

    // Mid-batch re-planning: adaptive vs static full-sequence
    // evaluation counts on the misranked ward.
    let planner = measure_adaptive(env_usize("SAQ_EXP_SEQUENCES", 600).max(40), 16);
    println!(
        "planner: static {} evals, adaptive {} evals ({:.2}x win)",
        planner.static_entry_evals, planner.adaptive_entry_evals, planner.speedup
    );
    let planner_json = format!(
        "    {{\"sequences\": {}, \"shards\": {}, \"static_entry_evals\": {}, \
         \"adaptive_entry_evals\": {}, \"speedup\": {:.3}}}",
        planner.sequences,
        planner.shards,
        planner.static_entry_evals,
        planner.adaptive_entry_evals,
        planner.speedup
    );

    // Columnar kernels vs their scalar formulations.
    let mut kernels_json = Vec::new();
    for k in measure_kernels(rounds) {
        println!(
            "kernel {}: scalar {}s, kernel {}s ({:.2}x)",
            k.name,
            fnum(k.scalar_seconds),
            fnum(k.kernel_seconds),
            k.speedup
        );
        kernels_json.push(format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"scalar_seconds\": {:.6}, \
             \"kernel_seconds\": {:.6}, \"speedup\": {:.3}}}",
            k.name, k.n, k.scalar_seconds, k.kernel_seconds, k.speedup
        ));
    }

    // Streaming ingestion: incremental splice + subscription-pump work
    // vs the batch re-run each feed shape would otherwise pay.
    let mut streaming_json = Vec::new();
    for s in measure_streaming() {
        println!(
            "streaming {}: splice {:.1}x ({} rebroken vs {} batch pts), pump {:.1}x \
             ({} evals over {} waves x {} subs)",
            s.name,
            s.splice_speedup,
            s.rebroken_points,
            s.batch_points,
            s.pump_speedup,
            s.evaluated,
            s.waves,
            s.subscriptions
        );
        streaming_json.push(format!(
            "    {{\"name\": \"{}\", \"sequences\": {}, \"subscriptions\": {}, \"waves\": {}, \
             \"appended_points\": {}, \"rebroken_points\": {}, \"batch_points\": {}, \
             \"evaluated\": {}, \"splice_speedup\": {:.3}, \"pump_speedup\": {:.3}}}",
            s.name,
            s.sequences,
            s.subscriptions,
            s.waves,
            s.appended_points,
            s.rebroken_points,
            s.batch_points,
            s.evaluated,
            s.splice_speedup,
            s.pump_speedup
        ));
    }

    // Every sibling experiment binary, timed end to end. They live next
    // to this harness in the target directory.
    let mut experiments = Vec::new();
    if !smoke {
        let exe = std::env::current_exe().expect("own path");
        let dir = exe.parent().expect("target dir");
        let mut bins: Vec<_> = std::fs::read_dir(dir)
            .expect("target dir listable")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.extension().is_none()
                    && p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                        (n.starts_with("exp_") || n.starts_with("fig") || n.starts_with("table"))
                            && n != "bench_harness"
                    })
            })
            .collect();
        bins.sort();
        for bin in bins {
            let name = bin.file_name().unwrap().to_string_lossy().into_owned();
            let t = Instant::now();
            let status = std::process::Command::new(&bin)
                .stdout(std::process::Stdio::null())
                .status()
                .map(|s| s.success())
                .unwrap_or(false);
            let seconds = t.elapsed().as_secs_f64();
            println!("{name}: {} in {}s", if status { "ok" } else { "FAILED" }, fnum(seconds));
            experiments.push((name, status, seconds));
            assert!(status, "every experiment binary must run to completion");
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"date\": \"{date}\",").unwrap();
    writeln!(json, "  \"version\": 1,").unwrap();
    writeln!(json, "  \"recovery\": [").unwrap();
    writeln!(json, "{}", recovery_json.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"planner\": [").unwrap();
    writeln!(json, "{planner_json}").unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"kernels\": [").unwrap();
    writeln!(json, "{}", kernels_json.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"streaming\": [").unwrap();
    writeln!(json, "{}", streaming_json.join(",\n")).unwrap();
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"experiments\": [").unwrap();
    let rows: Vec<String> = experiments
        .iter()
        .map(|(name, ok, seconds)| {
            format!("    {{\"bin\": \"{name}\", \"ok\": {ok}, \"seconds\": {seconds:.3}}}")
        })
        .collect();
    writeln!(json, "{}", rows.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("harness output writable");
    println!("wrote {}", out_path.display());
}
