//! Figure 6: "Breaking a sequence at extrema and representing it by
//! regression functions. The function is specified near each line." The
//! paper's figure shows a ~60-point temperature curve broken into segments
//! labelled `.94x+97.66`, `-1.1x+112.82`, ... — this binary regenerates
//! that table of per-segment regression lines.

use saq_bench::{banner, sparkline};
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::generators::{peaks, PeaksSpec};

fn main() {
    banner("Fig. 6", "breaking at extrema + per-segment regression lines");

    // A ~60-point two-peak temperature curve like the figure's.
    let seq = peaks(PeaksSpec {
        duration: 60.0,
        dt: 1.0,
        baseline: 97.5,
        centers: vec![14.0, 38.0],
        width: 5.0,
        amplitude: 8.0,
        noise: 0.25,
        seed: 6,
    });
    println!("sequence ({} pts): {}\n", seq.len(), sparkline(&seq, 60));

    let breaker = LinearInterpolationBreaker::new(1.0);
    let ranges = breaker.break_ranges(&seq);
    let series = FunctionSeries::build(&seq, &ranges, &RegressionFitter).unwrap();

    println!("segment | indices    | regression line  | slope sign");
    for (i, seg) in series.segments().iter().enumerate() {
        let sign = if seg.slope() > 0.25 {
            "+1"
        } else if seg.slope() < -0.25 {
            "-1"
        } else {
            " 0"
        };
        println!(
            "{:>7} | [{:>3}, {:>3}] | {:>16} | {}",
            i,
            seg.start_index,
            seg.end_index,
            seg.curve.formula(),
            sign
        );
    }

    let dev = series.max_deviation_from(&seq);
    println!(
        "\n{} segments; max representation deviation {:.2} (paper's figure used eps-scale ~1)",
        series.segment_count(),
        dev
    );
    println!("shape check: alternating +1/-1 runs around each of the two humps,");
    println!("as in the figure's labels .94x+97.66, -1.1x+112.82, 1.21x+80.57, ...");
}
