//! Figure 9: "Two ECG segments of 500 points each, broken by our algorithm.
//! The distance parameter ε was set to 10." Regenerates the breaking of the
//! two segments, their interpolation-line labels, and R-peak markers.

use saq_bench::{banner, sparkline};
use saq_ecg::analysis::analyze;
use saq_ecg::synth::{synthesize, EcgSpec};

fn main() {
    banner("Fig. 9", "two 500-point ECG segments broken at eps = 10");

    let segments = [
        ("top ECG (rr ~ 149)", EcgSpec { rr: 149.0, ..EcgSpec::default() }),
        (
            "bottom ECG (rr ~ 136)",
            EcgSpec { rr: 136.0, rr_jitter: 0.8, seed: 9, ..EcgSpec::default() },
        ),
    ];

    for (name, spec) in segments {
        let ecg = synthesize(spec);
        let report = analyze(&ecg, 10.0).unwrap();
        println!("\n{name}: {}", sparkline(&ecg, 100));
        println!(
            "  {} samples -> {} interpolation-line segments",
            ecg.len(),
            report.series.segment_count()
        );
        print!("  lines:");
        for seg in report.series.segments() {
            print!(" {}", seg.curve.formula());
        }
        println!();
        print!("  R peaks at samples:");
        for row in &report.r_peaks {
            print!(" {:.0}", row.apex().t);
        }
        println!();
        println!(
            "  max deviation from raw: {:.2} (must be <= eps = 10)",
            report.series.max_deviation_from(&ecg)
        );
        assert!(report.series.max_deviation_from(&ecg) <= 10.0 + 1e-9);
    }
    println!("\nshape check: ~10-17 segments per 500-sample ECG, steep R flanks");
    println!("(slopes ~ +-22 like the figure's 21.333x/-14.8x labels), peaks marked.");
}
