//! §5.2 step 4: "For each pair of successive peaks, find the difference in
//! time between them... For the top ECG of figure 9, the sequence is
//! (149, 149) while for the bottom one, the obtained sequence is
//! (136, 137, 136)." Regenerates both interval sequences.

use saq_bench::banner;
use saq_ecg::analysis::analyze;
use saq_ecg::synth::{synthesize, EcgSpec};

fn main() {
    banner("§5.2", "R-R interval sequences for both Fig. 9 ECGs");

    let top = analyze(&synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() }), 10.0).unwrap();
    let bottom = analyze(
        &synthesize(EcgSpec { rr: 136.0, rr_jitter: 0.8, seed: 9, ..EcgSpec::default() }),
        10.0,
    )
    .unwrap();

    println!("paper: top = [149, 149]   | measured: {:?}", top.rr_buckets());
    println!("paper: bottom = [136, 137, 136] | measured: {:?}", bottom.rr_buckets());

    assert_eq!(top.rr_buckets().len(), 2);
    assert_eq!(bottom.rr_buckets().len(), 3);
    assert!(top.rr_buckets().iter().all(|&b| (b - 149).abs() <= 2));
    assert!(bottom.rr_buckets().iter().all(|&b| (b - 136).abs() <= 2));
    println!("\nshape check: interval counts and magnitudes match the paper's.");
}
