//! Planner index pushdown: how many full-sequence scans the query
//! algebra's planner avoids by serving indexable leaves from `saq-index`
//! structures and narrowing the candidates of the leaves that must scan.
//!
//! The workload is a conjunctive expression over a mixed ward —
//! `shape(goal-post) AND interval(8 ± 2) AND peaks = 2 ± 1 AND
//! steepness(any) ≥ 0.8` — executed twice against the same store:
//!
//! * **pushdown** — the shape leaf is served by the slope-pattern index,
//!   the interval leaf by the inverted interval file (neither touches an
//!   entry), and the two scan leaves only see candidates the index leaves
//!   already narrowed;
//! * **scan-only** — a planner with no index capabilities: every leaf
//!   scans every stored entry (what the pre-algebra evaluator did per
//!   spec).
//!
//! Also demonstrated: conjunctive id-range pruning in the sharded batch
//! engine, where plan-level bounds shrink the candidate universe before
//! any shard is formed.
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — store size (default 600)
//!
//! Asserts ≥ 2× fewer entry scans with pushdown (measured far higher) and
//! identical outcomes on both paths.

use saq_archive::{ArchiveStore, Medium};
use saq_bench::{banner, env_usize};
use saq_core::algebra::{IndexCaps, QueryEngine, QueryExpr, StoreEngine};
use saq_core::store::{SequenceStore, StoreConfig};
use saq_engine::{EngineConfig, QueryEngine as ShardedEngine};
use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq_sequence::Sequence;

fn ward(n: usize) -> Vec<Sequence> {
    (0..n as u64)
        .map(|id| match id % 3 {
            0 => goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: id,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            _ => random_walk(49, 0.0, 0.25, id),
        })
        .collect()
}

fn main() {
    banner("planner", "index pushdown vs scan-only plans for a conjunctive expression");

    // The workload needs a handful of sequences to be meaningful (the
    // ratio assertion divides by the pushdown scan count); clamp tiny
    // CI caps rather than panicking on degenerate stores.
    let sequences = env_usize("SAQ_EXP_SEQUENCES", 600).max(8);
    let corpus = ward(sequences);
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut archive = ArchiveStore::new(Medium::memory());
    for seq in &corpus {
        let id = store.insert(seq).unwrap();
        archive.put(id, seq.clone());
    }

    let expr = QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*")
        .and(QueryExpr::peak_interval(8, 2))
        .and(QueryExpr::peak_count(2, 1))
        .and(QueryExpr::has_steep_peak(0.8, 0.2));

    let pushdown_engine = StoreEngine::new(&store);
    let scan_engine = StoreEngine::with_caps(&store, IndexCaps::none());
    println!("store: {sequences} sequences; expression:\n");
    println!("pushdown plan:\n{}", pushdown_engine.plan(&expr).unwrap().explain());
    println!("scan-only plan:\n{}", scan_engine.plan(&expr).unwrap().explain());

    let (pushdown_out, pushdown) = pushdown_engine.execute_with_stats(&expr).unwrap();
    let (scan_out, scan) = scan_engine.execute_with_stats(&expr).unwrap();
    assert_eq!(pushdown_out, scan_out, "pushdown must not change results");

    println!("plan      | entry scans | index leaves | scan leaves | exact | approx");
    for (name, stats, out) in
        [("pushdown", &pushdown, &pushdown_out), ("scan-only", &scan, &scan_out)]
    {
        println!(
            "{name:<9} | {:>11} | {:>12} | {:>11} | {:>5} | {:>6}",
            stats.entries_scanned,
            stats.index_leaves,
            stats.scan_leaves,
            out.exact.len(),
            out.approximate.len()
        );
    }

    let ratio = scan.entries_scanned as f64 / pushdown.entries_scanned.max(1) as f64;
    println!("\nscan reduction: {ratio:.1}x fewer full-sequence scans with index pushdown");

    // Plan-level id pruning in the sharded engine: conjunctive id-range
    // bounds shrink the universe before any fetch happens.
    let engine = ShardedEngine::new(EngineConfig::default()).unwrap();
    let half = sequences as u64 / 2;
    let bounded = QueryExpr::peak_count(2, 1).and(QueryExpr::id_range(1, half));
    let (_, bounded_stats) = engine.bind(&archive).execute_with_stats(&bounded).unwrap();
    let (_, full_stats) =
        engine.bind(&archive).execute_with_stats(&QueryExpr::peak_count(2, 1)).unwrap();
    println!(
        "sharded engine universe: {} candidates with id bounds 1..={half} \
         vs {} without (fetches pruned before sharding)",
        bounded_stats.universe, full_stats.universe
    );

    assert!(
        ratio >= 2.0,
        "expected >=2x fewer scans with pushdown, measured {ratio:.2}x \
         ({} vs {})",
        pushdown.entries_scanned,
        scan.entries_scanned
    );
    assert!(bounded_stats.universe <= full_stats.universe / 2 + 1, "id bounds must prune");
    println!("PASS: >=2x fewer full-sequence scans with index pushdown");
}
