//! Table 1: "Peaks information for the top ECG on Figure 9" — per peak, the
//! rising and descending functions and the start/end points of their
//! subsequences.

use saq_bench::banner;
use saq_ecg::analysis::analyze;
use saq_ecg::synth::{synthesize, EcgSpec};

fn main() {
    banner("Table 1", "peaks information for the top ECG of Fig. 9");

    let ecg = synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() });
    let report = analyze(&ecg, 10.0).unwrap();
    println!("{}", report.table1());

    println!("paper's table (for its real ECG): rising slopes ~21-26, descending");
    println!("slopes ~ -15, R peaks ~149 samples apart; ours:");
    for row in &report.r_peaks {
        println!(
            "  peak {}: rising slope {:+.2}, descending slope {:+.2}, apex t = {:.0}",
            row.peak,
            row.rising.slope,
            row.descending.slope,
            row.apex().t
        );
    }
    let rrs = report.rr_intervals();
    println!("  R-R distances: {rrs:?}");
    assert!(rrs.iter().all(|&d| (d - 149.0).abs() <= 3.0));
}
