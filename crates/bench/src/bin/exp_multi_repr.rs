//! §5.2's multiple-representations claim: store several function families
//! for the same data to serve several query forms. Compares fidelity and
//! storage of lines, quadratics, and Bézier curves over shared breakpoints.

use saq_bench::{banner, fnum};
use saq_core::multi::MultiSeries;
use saq_ecg::synth::{synthesize, EcgSpec};
use saq_sequence::generators::{goalpost, sinusoid, GoalpostSpec};

fn main() {
    banner("§5.2", "multiple representations of the same sequences");

    let workloads = vec![
        ("goalpost (49 pts)", goalpost(GoalpostSpec::default()), 1.0),
        ("ECG (500 pts)", synthesize(EcgSpec::default()), 10.0),
        ("sinusoid (200 pts)", sinusoid(200, 1.0, 10.0, 0.02, 0.0, 0.0), 1.5),
    ];

    println!("workload            | family    | params | max deviation");
    for (name, seq, eps) in &workloads {
        let multi = MultiSeries::build(seq, *eps).unwrap();
        let (dl, dq, db) = multi.deviations(seq);
        let (pl, pq, pb) = multi.parameter_counts();
        for (family, params, dev) in [("linear", pl, dl), ("quadratic", pq, dq), ("bezier", pb, db)]
        {
            println!("{:19} | {:9} | {:>6} | {}", name, family, params, fnum(dev));
        }
        // The linear family honours its breaking tolerance; richer families
        // spend more parameters for equal-or-better fidelity on smooth data.
        assert!(dl <= eps + 1e-9, "{name}: linear dev {dl} vs eps {eps}");
        assert!(dq <= dl + 1e-9, "{name}: quadratic must not be worse");
    }
    println!("\nshape check: one set of breakpoints, three query-form-specific");
    println!("representations; quadratics halve linear deviation on smooth data at");
    println!("1.5x the parameters — the trade §5.2 anticipates.");
}
