//! Streaming ingestion vs batch re-runs: three live-feed shapes with
//! standing queries attached, measuring how much work the incremental
//! paths actually avoid.
//!
//! * **ticker** — long random-walk price feeds, a few trades per wave,
//!   banded watchers: both the suffix splice and id-bounds pruning win.
//! * **ecg** — one lead streamed chunk by chunk, drifting from the
//!   paper's regular ~136-sample rhythm to the anomalous ~149-sample
//!   rhythm, with `peak_interval` alarms standing; a single stream means
//!   the splice win is the whole story.
//! * **fleet** — many short telemetry feeds, high churn, per-group
//!   watchers: pruning carries the pump.
//!
//! Two ratios per scenario, both ≥ the `SAQ_EXP_MIN_SPEEDUP` floor where
//! the scenario exercises them:
//! * splice speedup — points a batch re-run would re-examine (the whole
//!   extended sequence, every wave) over points the online breaker
//!   actually re-broke;
//! * pump speedup — subscriptions × waves a naive re-run would evaluate
//!   over what the pruning ladder let through.
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — corpus scale (default 64)
//! * `SAQ_EXP_WAVES` — append waves per scenario (default 96)
//! * `SAQ_EXP_MIN_SPEEDUP` — required ratio floor (default 2.0)

use saq_bench::streaming::measure_streaming;
use saq_bench::{banner, env_f64};

fn main() {
    banner("streaming", "incremental append + standing-query work vs batch re-runs");

    let reports = measure_streaming();
    println!(
        "{:<7} | {:>8} | {:>9} | {:>11} | {:>12} | {:>13} | {:>10} | {:>6}",
        "feed", "seqs", "subs", "waves", "appended pts", "rebroken pts", "batch pts", "evals"
    );
    for r in &reports {
        println!(
            "{:<7} | {:>8} | {:>9} | {:>11} | {:>12} | {:>13} | {:>10} | {:>6}",
            r.name,
            r.sequences,
            r.subscriptions,
            r.waves,
            r.appended_points,
            r.rebroken_points,
            r.batch_points,
            r.evaluated
        );
    }
    println!();
    for r in &reports {
        println!(
            "{:<7} | splice {:>6.1}x | pump {:>6.1}x",
            r.name, r.splice_speedup, r.pump_speedup
        );
    }

    let floor = env_f64("SAQ_EXP_MIN_SPEEDUP", 2.0);
    for r in &reports {
        // Fleet feeds are deliberately short — a 40-point telemetry trace
        // has no long closed prefix to reuse, so there the splice only
        // has to not lose; the long-feed scenarios must clear the floor.
        let splice_floor = if r.name == "fleet" { 1.0 } else { floor };
        assert!(
            r.splice_speedup >= splice_floor,
            "{}: splice work must beat the batch re-run by >={splice_floor}x, measured {:.2}x \
             ({} rebroken vs {} batch points)",
            r.name,
            r.splice_speedup,
            r.rebroken_points,
            r.batch_points
        );
        // Single-stream scenarios have nothing to prune — every wave
        // legitimately touches every watcher's only subject.
        if r.sequences > 1 {
            assert!(
                r.pump_speedup >= floor,
                "{}: pruning must beat re-evaluating every subscription by >={floor}x, \
                 measured {:.2}x ({} evals vs {} naive)",
                r.name,
                r.pump_speedup,
                r.evaluated,
                r.subscriptions * r.waves
            );
        }
    }
    println!(
        "\nPASS: incremental work >={floor}x below batch re-runs on every feed \
         (splice on the long feeds, pruning wherever there is more than one stream)"
    );
}
