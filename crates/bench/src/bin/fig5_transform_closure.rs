//! Figure 5 / §2.1: "various two-peaked sequences not within a value-based
//! distance δ from the sequence of Fig. 3" — every feature-preserving
//! transformation keeps the two-peaks property (an *exact* match for the
//! generalized query) while defeating value-based matching.

use saq_baseline::euclid::band_match;
use saq_bench::{banner, sparkline};
use saq_core::alphabet::DEFAULT_THETA;
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::features::PeakTable;
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::generators::{goalpost, GoalpostSpec};
use saq_sequence::Sequence;

fn peak_count(seq: &Sequence) -> usize {
    let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(seq);
    let series = FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap();
    PeakTable::extract(&series, DEFAULT_THETA).len()
}

fn main() {
    banner("Fig. 5", "feature-preserving transforms defeat value matching");

    let exemplar = goalpost(GoalpostSpec::default());
    let delta = 0.5;
    println!("exemplar: {}\n", sparkline(&exemplar, 49));

    // The figure's variants, resampled on the same 24h grid.
    let variants: Vec<(&str, Sequence)> = vec![
        ("1: amplitude shift (+2.5F)", exemplar.map_values(|v| v + 2.5).unwrap()),
        ("2: amplitude scaling (x1.1)", exemplar.map_values(|v| v * 1.1).unwrap()),
        (
            "3: time shift (+3h)",
            goalpost(GoalpostSpec { peak1: 11.0, peak2: 21.0, ..GoalpostSpec::default() }),
        ),
        (
            "4: contraction (peaks 5h apart)",
            goalpost(GoalpostSpec {
                peak1: 5.0,
                peak2: 10.0,
                width: 0.9,
                ..GoalpostSpec::default()
            }),
        ),
        (
            "5: dilation (peaks 15h apart)",
            goalpost(GoalpostSpec {
                peak1: 4.0,
                peak2: 19.0,
                width: 2.2,
                ..GoalpostSpec::default()
            }),
        ),
    ];

    println!("variant                          | peaks | value match | feature match");
    let mut all_hold = true;
    for (name, v) in &variants {
        let peaks = peak_count(v);
        let value = band_match(&exemplar, v, delta);
        let feature = peaks == 2;
        all_hold &= feature && !value;
        println!(
            "{:32} | {:>5} | {:>11} | {}",
            name,
            peaks,
            if value { "YES" } else { "no" },
            if feature { "YES (exact)" } else { "no" }
        );
    }
    println!(
        "\nshape check: every variant is a feature-exact match and a value-based miss: {}",
        if all_hold { "HOLDS" } else { "VIOLATED" }
    );
}
