//! Figure 10: "An inverted file structure for R-R intervals" — a B-tree
//! over interval-length buckets pointing into a postings file — and the
//! worked query: "to find the ECGs with an R-R interval of duration
//! 136 ± 3... we follow the B-Tree looking for values between 133..139 and
//! find that ECG 2 satisfies the query."

use saq_bench::banner;
use saq_ecg::corpus::{build_corpus, build_rr_index, rr_query};

fn main() {
    banner("Fig. 10", "inverted-file index over R-R interval lengths");

    // A corpus of 20 ECGs sweeping rr 110..190 (ids 1..=20).
    let corpus = build_corpus(20, (110.0, 190.0), 2024).unwrap();
    let index = build_rr_index(&corpus);

    println!(
        "corpus: {} ECGs; index: {} buckets, {} postings\n",
        corpus.len(),
        index.bucket_count(),
        index.posting_count()
    );

    println!("bucket sample (keys present around 133..139):");
    for key in 130..=142 {
        let postings = index.lookup(key);
        if !postings.is_empty() {
            let ids: Vec<u64> = postings.iter().map(|p| p.sequence).collect();
            println!("  interval {key}: ECGs {ids:?}");
        }
    }

    println!("\nworked queries:");
    for (n, eps) in [(136, 3), (149, 3), (160, 5), (300, 10)] {
        let hits = rr_query(&index, n, eps);
        println!("  R-R {n} +- {eps}: {hits:?}");
    }

    // The paper's two-ECG scenario is covered by `exp_rr_sequences`; here
    // verify selectivity: a tight query matches only nearby-rr ECGs.
    let hits = rr_query(&index, 136, 3);
    for id in &hits {
        let rrs = corpus.report(*id).unwrap().rr_intervals();
        assert!(
            rrs.iter().any(|&d| (d - 136.0).abs() <= 4.0),
            "ECG {id} matched without a ~136 interval: {rrs:?}"
        );
    }
    println!("\nshape check: hits all contain an interval within the queried band.");
}
