//! Figures 2–3: the goal-post fever pattern — "a temperature pattern that
//! peaks exactly twice within 24 hours" — and a fixed exemplar of it on a
//! concrete axis (95–107 °F over 0–24h).

use saq_bench::{banner, sparkline};
use saq_core::alphabet::DEFAULT_THETA;
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::features::PeakTable;
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::generators::{goalpost, GoalpostSpec};

fn main() {
    banner("Figs. 2-3", "the goal-post fever pattern and a fixed exemplar");

    let exemplar = goalpost(GoalpostSpec::default());
    println!("exemplar (49 samples, 0..24h): {}", sparkline(&exemplar, 49));
    let stats = exemplar.stats();
    println!(
        "value range [{:.1}, {:.1}] degrees F (the figure's axis is 95..107)\n",
        stats.min, stats.max
    );

    let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(&exemplar);
    let series = FunctionSeries::build(&exemplar, &ranges, &RegressionFitter).unwrap();
    let table = PeakTable::extract(&series, DEFAULT_THETA);
    println!("detected peaks: {} (the defining property: exactly two)", table.len());
    for (i, p) in table.peaks.iter().enumerate() {
        println!(
            "  peak {}: apex at t = {:.1}h, amplitude {:.1}F, flank steepness {:.2}",
            i + 1,
            p.time(),
            p.amplitude(),
            p.steepness()
        );
    }
    assert_eq!(table.len(), 2, "the exemplar must exhibit goal-post fever");
    println!("\nshape check: two peaks, ~10h apart, matching Fig. 3's drawing.");
}
