//! §3's argument against frequency-domain similarity: "similarity tests
//! relying on proximity in the frequency domain can not detect similarity
//! under transformations such as dilation or contraction. Looking at the
//! goal-post fever example, none of the sequences of Figure 5 matches the
//! sequence given in Figure 3 if main frequencies are compared."
//!
//! Pits the F-index comparator (first-k DFT coefficients) against our
//! feature representation on the Fig. 5 variants.

use saq_baseline::findex::FeatureVector;
use saq_bench::{banner, fnum};
use saq_core::alphabet::DEFAULT_THETA;
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::features::PeakTable;
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::generators::{goalpost, GoalpostSpec};
use saq_sequence::Sequence;

fn peak_count(seq: &Sequence) -> usize {
    let ranges = LinearInterpolationBreaker::new(1.0).break_ranges(seq);
    let series = FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap();
    PeakTable::extract(&series, DEFAULT_THETA).len()
}

fn main() {
    banner("§3", "DFT feature distance vs. our peak features on Fig. 5 variants");

    let exemplar = goalpost(GoalpostSpec::default());
    let f_exemplar = FeatureVector::extract(&exemplar, 8);

    // Calibrate the DFT acceptance threshold on benign same-shape noise.
    let noisy = goalpost(GoalpostSpec { noise: 0.15, ..GoalpostSpec::default() });
    let threshold = 2.0 * f_exemplar.distance(&FeatureVector::extract(&noisy, 8)) + 1e-6;

    let variants = vec![
        ("same + noise", noisy),
        (
            "time shift (+3h)",
            goalpost(GoalpostSpec { peak1: 11.0, peak2: 21.0, ..GoalpostSpec::default() }),
        ),
        (
            "contraction",
            goalpost(GoalpostSpec {
                peak1: 5.0,
                peak2: 10.0,
                width: 0.9,
                ..GoalpostSpec::default()
            }),
        ),
        (
            "dilation",
            goalpost(GoalpostSpec {
                peak1: 4.0,
                peak2: 19.0,
                width: 2.2,
                ..GoalpostSpec::default()
            }),
        ),
    ];

    println!("(DFT acceptance threshold calibrated to {:.4})\n", threshold);
    println!("variant           | DFT dist | DFT verdict | our peak count | feature verdict");
    let mut dft_recall = 0;
    let mut feature_recall = 0;
    for (name, v) in &variants {
        let d = f_exemplar.distance(&FeatureVector::extract(v, 8));
        let dft_match = d <= threshold;
        let peaks = peak_count(v);
        let feat_match = peaks == 2;
        dft_recall += dft_match as usize;
        feature_recall += feat_match as usize;
        println!(
            "{:17} | {:>8} | {:>11} | {:>14} | {}",
            name,
            fnum(d),
            if dft_match { "match" } else { "MISS" },
            peaks,
            if feat_match { "match" } else { "MISS" }
        );
    }
    println!(
        "\nrecall on feature-equivalent variants: DFT {dft_recall}/4, features {feature_recall}/4"
    );
    assert_eq!(feature_recall, 4, "feature matching must accept all variants");
    assert!(dft_recall < 4, "DFT must miss at least the dilated/contracted variants");
    println!("shape check: matches the paper's §3 claim.");
}
