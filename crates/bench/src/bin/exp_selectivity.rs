//! Statistics-driven conjunction ordering: how many full-sequence
//! evaluations the planner's cardinality estimates save on a *skewed*
//! corpus, versus the static access-path ordering (which breaks ties in
//! declaration order).
//!
//! The ward is deliberately skewed — mostly single-peak logs, a sliver of
//! goalposts — and the expression is declared in pessimal order:
//!
//! ```text
//! min_steepness(0.05)  AND  peak_count = 2
//! ^ scan leaf, matches ~everything  ^ scan leaf, matches ~5%
//! ```
//!
//! Both leaves take the scan path, so the static planner keeps the
//! declaration order and evaluates the unselective steepness leaf first
//! over the whole store. The statistics-backed planner estimates the
//! peak-count leaf's cardinality from the index layer's peak-count
//! histogram, runs it first, and the steepness leaf only sees the few
//! survivors.
//!
//! Also demonstrated: the engine's incremental mode — a batch re-run
//! after `k` puts re-fetches exactly the `k` dirty ids (asserted through
//! the archive's fetch counter).
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — store size (default 600)
//!
//! Asserts ≥ 1.5× fewer full-sequence evaluations with cost ordering
//! (measured ≈ 1.9×), identical outcomes on both paths, and an
//! incremental re-run cost of exactly `k` fetches.

use saq_archive::{ArchiveStore, Medium};
use saq_bench::{banner, env_f64, env_usize};
use saq_core::algebra::{IndexCaps, QueryEngine, QueryExpr, StoreEngine};
use saq_core::store::{SequenceStore, StoreConfig};
use saq_core::QueryRequest;
use saq_engine::{BatchQuery, EngineConfig, QueryEngine as ShardedEngine};
use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
use saq_sequence::Sequence;

/// 1-in-20 goalposts (2 peaks), the rest single-peak logs — the skew the
/// static order can't see.
fn skewed_ward(n: usize) -> Vec<Sequence> {
    (0..n as u64)
        .map(|id| {
            if id % 20 == 0 {
                goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() })
            } else {
                peaks(PeaksSpec {
                    centers: vec![12.0],
                    seed: id,
                    noise: 0.1,
                    ..PeaksSpec::default()
                })
            }
        })
        .collect()
}

/// One coalesced wave through the unified request API; outcomes are
/// dropped — the experiment reads the archive's fetch counters instead.
fn run_wave(engine: &ShardedEngine, archive: &ArchiveStore, queries: &[BatchQuery]) {
    let requests: Vec<QueryRequest> =
        queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    for resp in engine.run_requests(&archive.snapshot(), &requests).unwrap() {
        resp.unwrap();
    }
}

fn main() {
    banner("selectivity", "statistics-driven And ordering vs static order on a skewed corpus");

    let sequences = env_usize("SAQ_EXP_SEQUENCES", 600).max(40);
    let corpus = skewed_ward(sequences);
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut archive = ArchiveStore::new(Medium::memory());
    for seq in &corpus {
        let id = store.insert(seq).unwrap();
        archive.put(id, seq.clone());
    }

    // Pessimal declaration order: the unselective leaf first.
    let expr = QueryExpr::min_steepness(0.05, 0.0).and(QueryExpr::peak_count(2, 0));

    let cost_engine = StoreEngine::new(&store); // statistics snapshot
    let static_engine = StoreEngine::with_caps(&store, IndexCaps::all()); // class order only
    println!("store: {sequences} sequences (~{} goalposts); expression:\n", sequences / 20 + 1);
    println!("cost-ordered plan (leaf estimates from index statistics):");
    println!("{}", cost_engine.plan(&expr).unwrap().explain());
    println!("static plan (declaration order among scan leaves):");
    println!("{}", static_engine.plan(&expr).unwrap().explain());

    let (cost_out, cost) = cost_engine.execute_with_stats(&expr).unwrap();
    let (static_out, stat) = static_engine.execute_with_stats(&expr).unwrap();
    assert_eq!(cost_out, static_out, "ordering must not change results");

    println!("plan         | entry evals | exact | approx");
    for (name, stats, out) in [("cost-ordered", &cost, &cost_out), ("static", &stat, &static_out)] {
        println!(
            "{name:<12} | {:>11} | {:>5} | {:>6}",
            stats.entries_scanned,
            out.exact.len(),
            out.approximate.len()
        );
    }
    let ratio = stat.entries_scanned as f64 / cost.entries_scanned.max(1) as f64;
    println!("\nordering win: {ratio:.2}x fewer full-sequence evaluations with cost ordering");

    // --- Incremental mode: re-run after k puts touches only the k dirty ids.
    // The cache must hold the whole corpus — an undersized LRU would evict
    // clean entries and make the re-run refetch more than the dirty set.
    let engine = ShardedEngine::new(EngineConfig {
        cache_capacity: sequences + 16,
        ..EngineConfig::default()
    })
    .unwrap();
    let two_peaks =
        vec![BatchQuery::Feature(saq_core::QuerySpec::PeakCount { count: 2, tolerance: 0 })];
    run_wave(&engine, &archive, &two_peaks);
    let cold_fetches = archive.fetch_count();
    let k = 5u64;
    for i in 0..k {
        archive.put(i, goalpost(GoalpostSpec { seed: 1000 + i, ..GoalpostSpec::default() }));
    }
    run_wave(&engine, &archive, &two_peaks);
    let dirty_fetches = archive.fetch_count() - cold_fetches;
    println!(
        "incremental re-run after {k} puts: {dirty_fetches} fetches \
         (cold run took {cold_fetches}); per-worker cache totals: {:?}",
        engine.last_run_report().cache_totals()
    );

    // Strict 1.5x by default; CI can relax via SAQ_EXP_MIN_SPEEDUP.
    let min_ratio = env_f64("SAQ_EXP_MIN_SPEEDUP", 1.5);
    assert!(
        ratio >= min_ratio,
        "expected >={min_ratio}x fewer evaluations with cost ordering, measured {ratio:.2}x \
         ({} vs {})",
        cost.entries_scanned,
        stat.entries_scanned
    );
    assert_eq!(dirty_fetches, k, "incremental re-run must touch only the dirty ids");
    println!(
        "PASS: >={min_ratio}x fewer full-sequence evaluations; \
         incremental re-run touched {k} ids"
    );
}
