//! Figure 1: the *value-based* notion of approximate queries — "the result
//! consists of all stored sequences within distance ±δ from the desired
//! sequence". Regenerates the figure's semantics: a query curve, a corpus,
//! and which members fall inside the band.

use saq_baseline::euclid::{band_match, max_pointwise_distance};
use saq_bench::{banner, fnum, sparkline};
use saq_sequence::{generators, Sequence};

fn main() {
    banner("Fig. 1", "value-based approximate query: sequences within +-delta");

    // The solid query curve of Fig. 1: a gentle hump over t in [0, 7].
    let query = generators::sinusoid(29, 0.25, 1.5, 1.0 / 14.0, 0.0, 1.5);
    let delta = 0.5;
    println!("query:   {}  (delta = {delta})\n", sparkline(&query, 29));

    let corpus: Vec<(&str, Sequence)> = vec![
        ("inside-band/small-noise", saq_preprocess::add_gaussian_noise(&query, 0.12, 7)),
        ("inside-band/offset+0.3", query.map_values(|v| v + 0.3).unwrap()),
        ("outside/offset+0.8", query.map_values(|v| v + 0.8).unwrap()),
        ("outside/inverted", query.map_values(|v| 3.0 - v).unwrap()),
        (
            "outside/two-humps",
            generators::peaks(generators::PeaksSpec {
                duration: 7.0,
                dt: 0.25,
                baseline: 1.5,
                centers: vec![2.0, 5.0],
                width: 0.6,
                amplitude: 1.5,
                noise: 0.0,
                seed: 0,
            }),
        ),
    ];

    println!("stored sequence            | Linf dist | within band");
    for (name, stored) in &corpus {
        let dist = max_pointwise_distance(&query, stored);
        println!(
            "{:26} | {:>9} | {}",
            name,
            dist.map(fnum).unwrap_or_else(|| "n/a".into()),
            if band_match(&query, stored, delta) { "YES" } else { "no" }
        );
    }
    println!("\nshape check: exactly the first two sequences are matches.");
}
