//! §5.2 compression claim: "500 points sequences are represented by about
//! 10 function segments. Assuming each representation requires 4 parameters
//! (such as function coefficients and breakpoints) we get about a factor of
//! 12 reduction in space." Sweeps ε to show the compression/fidelity
//! trade-off and reports the paper-point (ε = 10).

use saq_bench::{banner, fnum};
use saq_ecg::analysis::analyze;
use saq_ecg::synth::{synthesize, EcgSpec};
use saq_preprocess::{threshold_compress, Wavelet};

fn main() {
    banner("§5.2", "compression: segments, parameters, reduction factor");

    let ecg = synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() });

    println!("eps | segments | parameters | reduction | max deviation");
    for eps in [2.0, 5.0, 10.0, 15.0, 20.0, 30.0] {
        let report = analyze(&ecg, eps).unwrap();
        let c = report.series.compression();
        println!(
            "{:>3} | {:>8} | {:>10} | {:>8}x | {}",
            eps,
            c.segments,
            c.parameters,
            fnum(c.ratio()),
            fnum(report.series.max_deviation_from(&ecg))
        );
    }

    let paper_point = analyze(&ecg, 10.0).unwrap();
    let c = paper_point.series.compression();
    println!(
        "\npaper: ~10 segments, 4 params each, factor ~12.5 | measured at eps=10: {} segments, {} params, factor {:.1}",
        c.segments,
        c.parameters,
        c.ratio()
    );

    // §7: wavelet compression as the alternative feature-preserving
    // compressor the authors were experimenting with.
    println!("\nwavelet alternative (Haar, keep-k sweep):");
    println!("kept coeffs | ratio | peaks preserved");
    for keep in [16, 32, 64] {
        let comp = threshold_compress(&ecg, Wavelet::Haar, keep);
        let rec = comp.reconstruct();
        let rec_report = analyze(&rec, 10.0).unwrap();
        println!(
            "{:>11} | {:>5} | {} of {}",
            keep,
            fnum(1.0 / comp.compression_ratio()),
            rec_report.r_peaks.len(),
            paper_point.r_peaks.len()
        );
    }
    println!("\nshape check: reduction factor grows with eps; ~1/12 of raw size at");
    println!("the paper's operating point, and peaks survive moderate compression.");
}
