//! §7's ongoing experiment: "applying the wavelet transform for compressing
//! the sequences in a way that allows extracting features from the
//! compressed data rather than from the original sequences."
//!
//! Sweeps the kept-coefficient budget for both bases and reports whether
//! peaks/R–R features survive extraction from the *reconstructed* signal.

use saq_bench::{banner, fnum};
use saq_ecg::analysis::analyze;
use saq_ecg::synth::{synthesize, EcgSpec};
use saq_preprocess::{threshold_compress, Wavelet};
use saq_sequence::generators::{goalpost, GoalpostSpec};

fn main() {
    banner("§7", "feature extraction from wavelet-compressed data");

    // --- ECG: R-peak count and R-R intervals after compression.
    let ecg = synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() });
    let truth = analyze(&ecg, 10.0).unwrap();
    println!(
        "ECG ground truth: {} R peaks, intervals {:?}\n",
        truth.r_peaks.len(),
        truth.rr_buckets()
    );
    println!("basis | kept | compression | R peaks | interval error (samples)");
    for wavelet in [Wavelet::Haar, Wavelet::Daubechies4] {
        for keep in [8usize, 16, 32, 64, 128] {
            let comp = threshold_compress(&ecg, wavelet, keep);
            let rec = comp.reconstruct();
            let report = analyze(&rec, 10.0).unwrap();
            let err = if report.rr_buckets().len() == truth.rr_buckets().len() {
                let worst = report
                    .rr_buckets()
                    .iter()
                    .zip(truth.rr_buckets())
                    .map(|(a, b)| (a - b).abs())
                    .max()
                    .unwrap_or(0);
                format!("{worst}")
            } else {
                "-".into()
            };
            println!(
                "{:>5} | {:>4} | {:>10}x | {:>7} | {}",
                match wavelet {
                    Wavelet::Haar => "haar",
                    Wavelet::Daubechies4 => "d4",
                },
                keep,
                fnum(1.0 / comp.compression_ratio()),
                report.r_peaks.len(),
                err
            );
        }
    }

    // --- Goal-post logs: does two-peakedness survive?
    println!("\ngoal-post temperature log (49 samples):");
    let log = goalpost(GoalpostSpec::default());
    println!("kept | peaks detected (truth: 2)");
    for keep in [4usize, 8, 16, 24] {
        let comp = threshold_compress(&log, Wavelet::Haar, keep);
        // Haar reconstructions are staircases; one moving-average pass
        // restores differentiability before slope-based feature extraction
        // (the multiresolution smoothing Sec. 7 alludes to).
        let rec = saq_preprocess::moving_average(&comp.reconstruct(), 1);
        let ranges = saq_core::brk::Breaker::break_ranges(
            &saq_core::brk::LinearInterpolationBreaker::new(1.0),
            &rec,
        );
        let series =
            saq_core::repr::FunctionSeries::build(&rec, &ranges, &saq_curves::RegressionFitter)
                .unwrap();
        let peaks = saq_core::features::PeakTable::extract(&series, 0.25).len();
        println!("{:>4} | {peaks}", keep);
        if keep >= 16 {
            assert_eq!(peaks, 2, "keep={keep} must preserve both peaks");
        }
        if keep <= 8 {
            assert!(peaks < 2, "keep={keep} should be too lossy");
        }
    }
    println!("\nshape check: a modest coefficient budget preserves every feature;");
    println!("aggressive truncation loses peaks first — compression is bounded by");
    println!("feature preservation, exactly the trade-off Sec. 7 describes.");
}
