//! §5.1's three required properties of breaking algorithms, measured:
//!
//! * **consistency** — feature-equivalent variants break into the same
//!   slope structure;
//! * **robustness** — inserting one behaviour-preserving point shifts
//!   breakpoints by at most one position;
//! * **fragmentation avoidance** — most segments are longer than 2.

use saq_bench::{banner, goalpost_corpus};
use saq_core::alphabet::{series_symbols, symbols_to_string, DEFAULT_THETA};
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::{Point, Sequence};

fn slope_string(seq: &Sequence, eps: f64) -> String {
    let ranges = LinearInterpolationBreaker::new(eps).break_ranges(seq);
    let series = FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap();
    // Collapse repeats: the structural signature.
    let mut sig = String::new();
    for c in symbols_to_string(&series_symbols(&series, DEFAULT_THETA)).chars() {
        if !sig.ends_with(c) {
            sig.push(c);
        }
    }
    sig
}

fn main() {
    banner("§5.1", "breaking-algorithm properties: consistency, robustness, fragmentation");

    // --- Consistency across the two-peak variants.
    println!("consistency (collapsed slope signatures):");
    let corpus = goalpost_corpus();
    let mut two_peak_sigs = Vec::new();
    for (label, seq, k) in &corpus {
        let sig = slope_string(seq, 1.0);
        println!("  {:20} -> {}", label, sig);
        if *k == 2 {
            two_peak_sigs.push(sig);
        }
    }
    // Flats are transparent to the goal-post pattern (`0*` may appear
    // anywhere around peaks), so compare signatures modulo `f`.
    let essential = |s: &str| s.chars().filter(|&c| c != 'f').collect::<String>();
    let consistent = two_peak_sigs.iter().all(|s| essential(s) == essential(&two_peak_sigs[0]));
    println!(
        "  all two-peak variants share a signature: {}",
        if consistent { "YES" } else { "no" }
    );
    assert!(consistent, "consistency must hold on the two-peak corpus");

    // --- Robustness: insert an on-line point, measure breakpoint shift.
    println!("\nrobustness (single behaviour-preserving insertion):");
    let base = &corpus[0].1;
    let breaker = LinearInterpolationBreaker::new(1.0);
    let before = breaker.breakpoints(base);
    let mut worst_shift = 0usize;
    let mut trials = 0usize;
    for i in 0..base.len() - 1 {
        let a = base[i];
        let b = base[i + 1];
        // A point on the local line between samples i and i+1.
        let p = Point::new(0.5 * (a.t + b.t), 0.5 * (a.v + b.v));
        let perturbed = base.insert(p).unwrap();
        let after = breaker.breakpoints(&perturbed);
        if after.len() != before.len() {
            // Structure changed: count as a large shift.
            worst_shift = worst_shift.max(99);
        } else {
            for (x, y) in before.iter().zip(&after) {
                // Indices after the insertion point are expected to move by
                // exactly one slot; others by none.
                let expected = if *x > i { x + 1 } else { *x };
                let shift = y.abs_diff(expected);
                worst_shift = worst_shift.max(shift);
            }
        }
        trials += 1;
    }
    println!(
        "  {trials} insertions; worst breakpoint shift beyond the expected slot: {worst_shift}"
    );
    println!("  robustness (shift <= 1): {}", if worst_shift <= 1 { "HOLDS" } else { "VIOLATED" });

    // --- Fragmentation.
    println!("\nfragmentation avoidance (segments of length > 2):");
    for (label, seq, _) in &corpus {
        let ranges = breaker.break_ranges(seq);
        let long = ranges.iter().filter(|(lo, hi)| hi - lo + 1 > 2).count();
        println!(
            "  {:20} -> {:>2} segments, {:>3.0}% long",
            label,
            ranges.len(),
            100.0 * long as f64 / ranges.len() as f64
        );
    }
    println!("\nshape check: consistent signatures, <=1 breakpoint shift, mostly-long segments.");
}
