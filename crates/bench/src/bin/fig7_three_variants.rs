//! Figure 7: "Three two-peaks sequences broken at extrema by our algorithm
//! and approximated by regression lines" — consistency of breaking across
//! transformed variants of the same pattern.

use saq_bench::{banner, sparkline};
use saq_core::alphabet::{series_symbols, symbols_to_string, DEFAULT_THETA};
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::repr::FunctionSeries;
use saq_curves::RegressionFitter;
use saq_sequence::generators::{peaks, PeaksSpec};

fn main() {
    banner("Fig. 7", "three two-peak variants break at corresponding extrema");

    let variants = vec![
        (
            "narrow peaks early",
            peaks(PeaksSpec {
                duration: 26.0,
                dt: 1.0,
                baseline: 97.0,
                centers: vec![7.0, 17.0],
                width: 2.2,
                amplitude: 8.0,
                noise: 0.2,
                seed: 71,
            }),
        ),
        (
            "wider peaks centred",
            peaks(PeaksSpec {
                duration: 50.0,
                dt: 1.0,
                baseline: 97.0,
                centers: vec![14.0, 36.0],
                width: 4.0,
                amplitude: 7.0,
                noise: 0.2,
                seed: 72,
            }),
        ),
        (
            "asymmetric amplitudes",
            peaks(PeaksSpec {
                duration: 50.0,
                dt: 1.0,
                baseline: 97.0,
                centers: vec![10.0, 33.0],
                width: 3.0,
                amplitude: 6.5,
                noise: 0.2,
                seed: 73,
            }),
        ),
    ];

    let breaker = LinearInterpolationBreaker::new(1.0);
    for (name, seq) in &variants {
        let ranges = breaker.break_ranges(seq);
        let series = FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap();
        let symbols = symbols_to_string(&series_symbols(&series, DEFAULT_THETA));
        println!("\n{name}: {}", sparkline(seq, 50));
        println!("  slope string: {symbols}");
        for seg in series.segments() {
            print!("  {}", seg.curve.formula());
        }
        println!();
        // Consistency: all three carry the two-peak u+d+ ... u+d+ structure.
        let dfa = saq_core::alphabet::goalpost_pattern().compile();
        let ids: Vec<u8> = symbols
            .chars()
            .map(|c| saq_core::alphabet::slope_alphabet().id_of(c).unwrap())
            .collect();
        println!("  matches goal-post pattern: {}", if dfa.is_match(&ids) { "YES" } else { "no" });
    }
    println!("\nshape check: all three variants break into the same u/d structure");
    println!("(consistency, the first requirement of Sec. 4.3).");
}
