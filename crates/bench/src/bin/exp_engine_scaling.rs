//! Engine scaling: wall-clock speedup of the sharded batch executor at
//! 1/2/4/8 workers, plus the warm-cache effect, over a latency-emulated
//! archive.
//!
//! The archive's media are cost *models* (no real I/O), so this experiment
//! turns on real-time latency emulation: every fetch sleeps a scaled-down
//! fraction of its simulated access time. Workers overlap those waits the
//! way parallel requests against a real jukebox/tape robot would, which is
//! where the paper's archive-bound workload actually wins — and why the
//! speedup shows up even on a single-core runner (CPU-bound breaking work
//! additionally parallelizes on multicore hardware).
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — archive size (default 160)
//! * `SAQ_EXP_SEQ_LEN` — samples per sequence (default 1200)
//! * `SAQ_EXP_REALTIME_SCALE` — real seconds slept per simulated second
//!   (default 0.25 against the local-disk model ⇒ ~2 ms per fetch;
//!   0 disables sleeping and the speedup assertion with it)
//! * `SAQ_EXP_MIN_SPEEDUP` — asserted speedup floor (default 1.5; CI
//!   runners with noisy neighbours set a safer bound)

use saq_archive::{ArchiveStore, Medium};
use saq_bench::{banner, env_f64, env_usize, fnum};
use saq_core::algebra::QueryExpr;
use saq_core::query::QuerySpec;
use saq_core::{QueryOutcome, QueryRequest};
use saq_engine::{BatchQuery, EngineConfig, QueryEngine};
use saq_sequence::generators::{goalpost, random_walk, seismic_burst, GoalpostSpec};
use std::time::Instant;

fn build_archive(sequences: usize, len: usize, realtime_scale: f64) -> ArchiveStore {
    let mut archive = ArchiveStore::new(Medium::local_disk());
    archive.set_realtime_scale(realtime_scale);
    for id in 0..sequences as u64 {
        let seq = match id % 3 {
            0 => seismic_burst(len, len / 3 + (id as usize * 17) % (len / 2), 60, 0.05, 10.0, id),
            1 => random_walk(len, 0.0, 0.05, 500 + id),
            _ => goalpost(GoalpostSpec {
                duration: 24.0,
                dt: 24.0 / len as f64,
                seed: id,
                noise: 0.1,
                ..GoalpostSpec::default()
            }),
        };
        archive.put(id, seq);
    }
    archive
}

fn batch() -> Vec<BatchQuery> {
    vec![
        BatchQuery::Feature(QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() }),
        BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 }),
        BatchQuery::Feature(QuerySpec::PeakInterval { interval: 8, epsilon: 2 }),
        BatchQuery::Feature(QuerySpec::HasSteepPeak { steepness: 2.0, slack: 0.2 }),
        BatchQuery::ValueBand { query: goalpost(GoalpostSpec::default()), delta: 1.5, slack: 1.0 },
    ]
}

fn main() {
    banner("engine", "sharded batch query scaling: 1/2/4/8 workers over the archive");

    let sequences = env_usize("SAQ_EXP_SEQUENCES", 160);
    let len = env_usize("SAQ_EXP_SEQ_LEN", 1200);
    let realtime_scale = env_f64("SAQ_EXP_REALTIME_SCALE", 0.25);
    let archive = build_archive(sequences, len, realtime_scale);
    let queries = batch();
    println!(
        "archive: {sequences} sequences x {len} samples on `local-disk` \
         (realtime scale {realtime_scale})\n"
    );

    println!(
        "workers | cold batch (s) | warm batch (s) | speedup vs 1 | sim makespan (s) | \
         sim speedup | hit rate"
    );
    let mut cold_times = Vec::new();
    let mut sim_speedup4 = None;
    let mut reference = None;
    for &workers in &[1usize, 2, 4, 8] {
        let engine = QueryEngine::new(EngineConfig {
            workers,
            shards: workers * 4,
            cache_capacity: sequences.max(1),
            ..EngineConfig::default()
        })
        .unwrap();

        let t = Instant::now();
        let cold_out = run_wave(&engine, &archive, &queries);
        let cold = t.elapsed().as_secs_f64();
        // Per-worker simulated clocks of the cold batch: the makespan is
        // what the batch costs when workers overlap archive waits, the
        // total is what a serial scan of the same fetches would pay.
        let report = engine.last_run_report();
        if workers == 4 {
            sim_speedup4 = Some(report.sim_speedup());
        }

        let t = Instant::now();
        let warm_out = run_wave(&engine, &archive, &queries);
        let warm = t.elapsed().as_secs_f64();

        assert_eq!(cold_out, warm_out, "cache must not change results");
        match &reference {
            None => reference = Some(cold_out),
            Some(r) => assert_eq!(r, &cold_out, "worker count must not change results"),
        }

        cold_times.push(cold);
        println!(
            "{workers:>7} | {:>14} | {:>14} | {:>12} | {:>16} | {:>11} | {:>7.0}%",
            format!("{cold:.3}"),
            format!("{warm:.3}"),
            format!("{:.2}x", cold_times[0] / cold.max(1e-12)),
            format!("{:.3}", report.sim_makespan_seconds()),
            format!("{:.2}x", report.sim_speedup()),
            engine.cache_stats().hit_rate() * 100.0
        );
    }

    let outcomes = reference.expect("at least one run");
    let hits: usize = outcomes.iter().map(|o| o.all_ids().len()).sum();
    println!("\nbatch of {} queries matched {hits} (sequence, query) pairs", outcomes.len());
    println!(
        "simulated archive time per cold batch: {} s (each sequence fetched exactly once)",
        fnum(archive.elapsed_seconds() / cold_times.len() as f64)
    );

    // The strict 1.5x default is right for a quiet local machine; shared
    // CI runners can set SAQ_EXP_MIN_SPEEDUP to a safer bound.
    let min_speedup = env_f64("SAQ_EXP_MIN_SPEEDUP", 1.5);
    let mut speedup4 = cold_times[0] / cold_times[2].max(1e-12);
    println!("4-worker speedup: {speedup4:.2}x");
    if realtime_scale > 0.0 && sequences >= 32 {
        if speedup4 <= min_speedup {
            // A shared runner can stretch one timing sample; re-measure the
            // two cold batches back to back before declaring a regression.
            println!("(below threshold — re-measuring once)");
            speedup4 = measure_cold(&archive, &queries, 1) / measure_cold(&archive, &queries, 4);
            println!("re-measured 4-worker speedup: {speedup4:.2}x");
        }
        assert!(
            speedup4 > min_speedup,
            "expected >{min_speedup}x speedup at 4 workers, measured {speedup4:.2}x"
        );
        println!("PASS: >{min_speedup}x wall-clock speedup at 4 workers");
        // The simulated clocks tell the same story without wall-clock
        // noise: with real blocking the pool genuinely interleaves, so the
        // 4-worker makespan is well below the serial fetch total.
        let sim = sim_speedup4.expect("4-worker row ran");
        assert!(
            sim > min_speedup,
            "expected >{min_speedup}x simulated makespan speedup, measured {sim:.2}x"
        );
        println!("PASS: {sim:.2}x simulated (makespan) speedup at 4 workers");
    } else {
        println!("(speedup assertion skipped: latency emulation off or corpus too small)");
    }
}

/// Runs `queries` as one coalesced wave through the unified request API,
/// so the experiment exercises the path every entry point now routes to.
fn run_wave(
    engine: &QueryEngine,
    archive: &ArchiveStore,
    queries: &[BatchQuery],
) -> Vec<QueryOutcome> {
    let requests: Vec<QueryRequest> =
        queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
    engine
        .run_requests(&archive.snapshot(), &requests)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap().outcome)
        .collect()
}

/// Cold-cache wall-clock seconds for one batch at the given worker count.
fn measure_cold(archive: &ArchiveStore, queries: &[BatchQuery], workers: usize) -> f64 {
    let engine = QueryEngine::new(EngineConfig {
        workers,
        shards: workers * 4,
        cache_capacity: archive.len().max(1),
        ..EngineConfig::default()
    })
    .unwrap();
    let t = Instant::now();
    run_wave(&engine, archive, queries);
    t.elapsed().as_secs_f64().max(1e-12)
}
