//! `saqd` under concurrent load: what batch coalescing buys a shared
//! server.
//!
//! The paper's archive is slow and shared; the clients are many. This
//! experiment stands up two real `saqd` instances over TCP on the same
//! archive handle — one with a zero-width wave window (every query is
//! its own dispatch, the serial baseline) and one that coalesces up to
//! `clients` queries per wave — then drives both with the same workload:
//! `rounds` synchronized bursts of one query per client, scan-heavy SAQL
//! against an engine whose feature cache holds only a quarter of the
//! archive. Serial dispatch thrashes that cache (every query refetches
//! nearly everything); a coalesced wave pays one pass for the whole
//! burst and every answer in it reads one snapshot.
//!
//! Reported per mode: wall-clock queries/sec, p50/p99 round-trip
//! latency, archive fetches per query, and the server's own
//! queries-per-wave counter. The headline is *amortization*: serial
//! fetches-per-query divided by coalesced fetches-per-query.
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — archive size (default 48)
//! * `SAQ_EXP_CLIENTS` — concurrent client connections (default 6, min 4)
//! * `SAQ_EXP_ROUNDS` — synchronized bursts per mode (default 8)
//! * `SAQ_EXP_MIN_AMORTIZATION` — asserted fetch-amortization floor
//!   (default 2.0; the mechanism typically lands near the client count)
//! * `SAQ_EXP_MAX_P99_MS` — opt-in p99 latency ceiling in milliseconds
//!   for the *coalesced* mode (unset by default: wall-clock floors are
//!   machine-dependent, so CI opts in with a generous bound)
//!
//! Asserts identical outcomes in both modes and the amortization floor
//! (re-measured once before failing, as with the other experiments).

use saq_archive::{ArchiveStore, Medium};
use saq_bench::{banner, env_f64, env_usize, fnum};
use saq_core::{QueryOutcome, QueryRequest};
use saq_engine::EngineConfig;
use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq_server::{SaqClient, Saqd, SaqdConfig};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn main() {
    banner("exp_server_load", "saqd: wave coalescing vs serial dispatch under client load");

    let sequences = env_usize("SAQ_EXP_SEQUENCES", 48);
    let clients = env_usize("SAQ_EXP_CLIENTS", 6).max(4);
    let rounds = env_usize("SAQ_EXP_ROUNDS", 8).max(1);
    let floor = env_f64("SAQ_EXP_MIN_AMORTIZATION", 2.0);

    let mut archive = ArchiveStore::new(Medium::memory());
    for i in 0..sequences as u64 {
        let seq = match i % 4 {
            0 => goalpost(GoalpostSpec { seed: i, noise: 0.12, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: i,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            2 => peaks(PeaksSpec {
                centers: vec![12.0],
                seed: i,
                noise: 0.2,
                ..PeaksSpec::default()
            }),
            _ => random_walk(49, 0.0, 0.25, i),
        };
        archive.put(i, seq);
    }
    println!(
        "archive: {sequences} sequences · {clients} clients × {rounds} rounds \
         · engine cache capacity {} (quarter of the archive)\n",
        (sequences / 4).max(1)
    );

    let serial = run_mode(&archive, clients, rounds, Duration::ZERO);
    let coalesced = run_mode(&archive, clients, rounds, Duration::from_millis(200));
    assert_eq!(serial.outcomes, coalesced.outcomes, "both modes must return identical results");

    println!("mode       queries/s      p50        p99   fetches/query   queries/wave");
    for (name, m) in [("serial", &serial), ("coalesced", &coalesced)] {
        println!(
            "{name:<9} {:>10} {:>8} {:>10} {:>15} {:>14}",
            fnum(m.qps),
            format!("{:.1}ms", m.p50 * 1e3),
            format!("{:.1}ms", m.p99 * 1e3),
            format!("{:.2}", m.fetches_per_query),
            format!("{:.2}", m.queries_per_wave),
        );
    }

    let mut amortization = serial.fetches_per_query / coalesced.fetches_per_query.max(1e-9);
    println!("\nfetch amortization (serial / coalesced): {:.2}×", amortization);
    if amortization < floor {
        // One re-measure before failing: a loaded CI box can smear the
        // first run's wave formation.
        let serial = run_mode(&archive, clients, rounds, Duration::ZERO);
        let coalesced = run_mode(&archive, clients, rounds, Duration::from_millis(200));
        amortization = serial.fetches_per_query / coalesced.fetches_per_query.max(1e-9);
        println!("re-measured amortization: {amortization:.2}×");
    }
    assert!(amortization >= floor, "coalescing amortized only {amortization:.2}× (floor {floor}×)");
    if let Ok(ceiling) = std::env::var("SAQ_EXP_MAX_P99_MS") {
        let ceiling: f64 = ceiling.parse().expect("SAQ_EXP_MAX_P99_MS must be a number");
        let p99_ms = coalesced.p99 * 1e3;
        assert!(
            p99_ms <= ceiling,
            "coalesced p99 {p99_ms:.1}ms exceeds the SAQ_EXP_MAX_P99_MS ceiling {ceiling}ms"
        );
        println!("p99 ceiling honored: {p99_ms:.1}ms <= {ceiling}ms");
    }
    println!(
        "\ncoalescing {} queries per wave cut archive fetches {:.1}× — one snapshot,\n\
         one sharded pass, every client in the burst served from it.",
        fnum(coalesced.queries_per_wave),
        amortization
    );
}

/// Scan-heavy SAQL rotated across clients: distinct predicates (no leaf
/// dedup windfall), all forcing a pass over the archived entries.
fn query_for(client: usize) -> String {
    match client % 4 {
        0 => format!("steepness all >= 0.{}5 slack 0.1", 1 + client % 3),
        1 => "peaks = 2 tol 1".into(),
        2 => format!("steepness any >= 0.{} slack 0.2", 3 + client % 5),
        _ => "peaks = 1 tol 0 and steepness any >= 0.3 slack 0.2".into(),
    }
}

struct ModeReport {
    qps: f64,
    p50: f64,
    p99: f64,
    fetches_per_query: f64,
    queries_per_wave: f64,
    outcomes: Vec<QueryOutcome>,
}

/// Stands up a fresh server (fresh engine, cold cache) on the shared
/// archive and drives `rounds` synchronized bursts of one query per
/// client, measuring per-query round trips and the archive's fetch
/// counter across the whole run.
fn run_mode(archive: &ArchiveStore, clients: usize, rounds: usize, window: Duration) -> ModeReport {
    let server = Saqd::spawn(
        archive.clone(),
        SaqdConfig {
            max_wave: clients,
            wave_window: window,
            engine: EngineConfig {
                workers: 2,
                shards: 4,
                cache_capacity: (archive.len() / 4).max(1),
                ..EngineConfig::default()
            },
            ..SaqdConfig::default()
        },
    )
    .unwrap();

    let fetches_before = archive.fetch_count();
    let start = Instant::now();
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = server.addr();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = SaqClient::connect(addr).unwrap();
                let req = QueryRequest::saql(query_for(c));
                let mut latencies = Vec::with_capacity(rounds);
                let mut outcome = None;
                for _ in 0..rounds {
                    // The barrier lines every round up into one burst —
                    // the arrival pattern a shared server actually sees.
                    barrier.wait();
                    let t = Instant::now();
                    let resp = client.query(&req).unwrap();
                    latencies.push(t.elapsed().as_secs_f64());
                    outcome = Some(resp.outcome);
                }
                (c, outcome.unwrap(), latencies)
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let fetches = (archive.fetch_count() - fetches_before) as f64;
    let stats = server.metrics();
    server.shutdown();

    results.sort_by_key(|(c, _, _)| *c);
    let outcomes = results.iter().map(|(_, outcome, _)| outcome.clone()).collect();
    let mut latencies: Vec<f64> = results.iter().flat_map(|(_, _, l)| l.iter().copied()).collect();
    latencies.sort_by(f64::total_cmp);
    let total = (clients * rounds) as f64;
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    ModeReport {
        qps: total / wall,
        p50: pct(0.5),
        p99: pct(0.99),
        fetches_per_query: fetches / total,
        queries_per_wave: stats.queries as f64 / stats.waves.max(1) as f64,
        outcomes,
    }
}
