//! §4.4 end to end: the goal-post fever query `0* 1+ (-1)+ 0* 1+ (-1)+ 0*`
//! over a stored ward of temperature logs, via the slope-pattern index.

use saq_bench::{banner, goalpost_corpus};
use saq_core::query::{evaluate, QuerySpec};
use saq_core::store::{SequenceStore, StoreConfig};

fn main() {
    banner("§4.4", "goal-post query over the slope-pattern index");

    let corpus = goalpost_corpus();
    let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
    let mut labels = Vec::new();
    for (label, seq, true_peaks) in &corpus {
        let id = store.insert(seq).unwrap();
        labels.push((id, label.clone(), *true_peaks));
    }

    let outcome =
        evaluate(&store, &QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() })
            .unwrap();

    println!("sequence             | true peaks | slope string     | matched");
    let mut correct = 0;
    for (id, label, true_peaks) in &labels {
        let entry = store.get(*id).unwrap();
        let symbols = saq_core::alphabet::slope_alphabet().decode(&entry.symbols).unwrap();
        let matched = outcome.exact.contains(id);
        let should = *true_peaks == 2;
        if matched == should {
            correct += 1;
        }
        println!(
            "{:20} | {:>10} | {:16} | {}{}",
            label,
            true_peaks,
            symbols,
            if matched { "YES" } else { "no" },
            if matched == should { "" } else { "   <-- WRONG" }
        );
    }
    println!(
        "\naccuracy: {correct}/{} (paper: all two-peak variants are exact matches, others excluded)",
        labels.len()
    );
    assert_eq!(correct, labels.len(), "goal-post query must be perfectly selective");
}
