//! Adaptive re-planning from observed selectivities: mid-batch
//! re-ordering of `And` children when the observation wave's measured
//! match rates diverge from the static plan's estimates.
//!
//! The ward is skewed — mostly single-peak logs, a sliver of goalposts —
//! and the conjunction is declared in pessimal order:
//!
//! ```text
//! min_steepness(0.05)  AND  peak_count = 2
//! ^ matches ~everything     ^ matches ~5%
//! ```
//!
//! The sharded pass plans without histograms, so the static order runs
//! the unselective steepness leaf first over every candidate. With
//! `EngineConfig::adaptive` on, the first ~1/8 of shards double as an
//! observation wave: per-leaf match counts feed `PlanStats::refine`,
//! and the remaining shards run the corrected order — the selective
//! peak-count leaf first, the steepness leaf only over its survivors.
//! Both modes keep conjunctive guard-skipping, so re-planning itself is
//! the only variable.
//!
//! Environment knobs (CI smoke-runs cap these):
//! * `SAQ_EXP_SEQUENCES` — store size (default 600)
//! * `SAQ_EXP_SHARDS` — shard count (default 16)
//! * `SAQ_EXP_MIN_SPEEDUP` — required evaluation-count ratio (default 1.3)
//!
//! Asserts ≥ 1.3× fewer full-sequence evaluations with adaptivity on
//! (measured ≈ 1.6×) and identical outcomes on both paths (the helper
//! asserts outcome equality internally — ordering-only is the contract).

use saq_bench::planner::measure_adaptive;
use saq_bench::{banner, env_f64, env_usize};

fn main() {
    banner("adaptive", "mid-batch re-planning from observed selectivities vs static order");

    let sequences = env_usize("SAQ_EXP_SEQUENCES", 600).max(40);
    let shards = env_usize("SAQ_EXP_SHARDS", 16).max(2);
    let report = measure_adaptive(sequences, shards);

    println!(
        "store: {sequences} sequences (~{} goalposts) over {shards} shards\n",
        sequences / 20 + 1
    );
    println!("mode     | entry evals | exact | approx");
    for (name, evals) in
        [("static", report.static_entry_evals), ("adaptive", report.adaptive_entry_evals)]
    {
        println!("{name:<8} | {evals:>11} | {:>5} | {:>6}", report.exact, report.approximate);
    }
    println!(
        "\nre-planning win: {:.2}x fewer full-sequence evaluations with adaptivity on",
        report.speedup
    );

    let min_ratio = env_f64("SAQ_EXP_MIN_SPEEDUP", 1.3);
    assert!(
        report.speedup >= min_ratio,
        "expected >={min_ratio}x fewer evaluations with adaptive re-planning, measured {:.2}x \
         ({} vs {})",
        report.speedup,
        report.adaptive_entry_evals,
        report.static_entry_evals
    );
    println!("PASS: >={min_ratio}x fewer full-sequence evaluations, identical outcomes");
}
