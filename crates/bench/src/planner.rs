//! Adaptive re-planning measurements: the sharded engine with
//! [`saq_engine::EngineConfig::adaptive`] on vs off, over a corpus whose
//! selectivities the static scan order mis-ranks. Shared by
//! `exp_adaptive` and the `bench_harness` `planner` JSON section.
//!
//! The ward is skewed — mostly single-peak logs, a sliver of goalposts —
//! and the conjunction is declared in pessimal order: the steepness leaf
//! (matches ~everything) first, the peak-count leaf (~5%) second. The
//! sharded pass plans without histograms, so both scan leaves keep
//! declaration order; only the observation wave can correct it.

use saq_archive::{ArchiveStore, Medium};
use saq_core::algebra::QueryExpr;
use saq_core::QueryRequest;
use saq_engine::{EngineConfig, QueryEngine as ShardedEngine};
use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
use saq_sequence::Sequence;

/// What one adaptive-vs-static comparison measures.
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// Corpus size.
    pub sequences: usize,
    /// Shards the batch fanned out over (the observation wave is ~1/8
    /// of them).
    pub shards: usize,
    /// Full-sequence evaluations under the static (declaration) order.
    pub static_entry_evals: u64,
    /// Full-sequence evaluations with mid-batch re-planning on.
    pub adaptive_entry_evals: u64,
    /// `static / adaptive` (>1 means the re-plan won).
    pub speedup: f64,
    /// Exact matches — identical on both paths (asserted).
    pub exact: usize,
    /// Approximate matches — identical on both paths (asserted).
    pub approximate: usize,
}

/// 1-in-20 goalposts (2 peaks), the rest single-peak logs: the skew the
/// declaration order can't see.
pub fn correlated_ward(n: usize) -> Vec<Sequence> {
    (0..n as u64)
        .map(|id| {
            if id % 20 == 0 {
                goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() })
            } else {
                peaks(PeaksSpec {
                    centers: vec![12.0],
                    seed: id,
                    noise: 0.1,
                    ..PeaksSpec::default()
                })
            }
        })
        .collect()
}

/// The pessimally-declared conjunction over that ward: the unselective
/// steepness leaf first, the selective peak-count leaf second.
pub fn misranked_expr() -> QueryExpr {
    QueryExpr::min_steepness(0.05, 0.0).and(QueryExpr::peak_count(2, 0))
}

/// Runs [`misranked_expr`] through two sharded engines — adaptive
/// re-planning on and off — and reports full-sequence evaluation counts.
/// Outcomes are asserted identical: re-planning is ordering-only.
pub fn measure_adaptive(sequences: usize, shards: usize) -> PlannerReport {
    let mut archive = ArchiveStore::new(Medium::memory());
    for (id, seq) in correlated_ward(sequences).into_iter().enumerate() {
        archive.put(id as u64, seq);
    }
    let snapshot = archive.snapshot();
    let requests = vec![QueryRequest::expr(misranked_expr()).with_stats()];
    let run = |adaptive: bool| {
        let engine = ShardedEngine::new(EngineConfig {
            shards,
            adaptive,
            cache_capacity: sequences + 16,
            ..EngineConfig::default()
        })
        .expect("engine config valid");
        let mut responses = engine.run_requests(&snapshot, &requests).expect("batch runs");
        responses.pop().expect("one request").expect("request succeeds")
    };
    let adaptive = run(true);
    let fixed = run(false);
    assert_eq!(adaptive.outcome, fixed.outcome, "re-planning must be ordering-only");
    let static_entry_evals = fixed.stats.as_ref().expect("stats requested").entries_scanned;
    let adaptive_entry_evals = adaptive.stats.as_ref().expect("stats requested").entries_scanned;
    PlannerReport {
        sequences,
        shards,
        static_entry_evals,
        adaptive_entry_evals,
        speedup: static_entry_evals as f64 / adaptive_entry_evals.max(1) as f64,
        exact: adaptive.outcome.exact.len(),
        approximate: adaptive.outcome.approximate.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_static_on_the_misranked_ward() {
        let report = measure_adaptive(240, 16);
        assert!(report.exact + report.approximate > 0, "the conjunction matches something");
        assert!(
            report.adaptive_entry_evals < report.static_entry_evals,
            "observation must cut evaluations: {report:?}"
        );
    }
}
