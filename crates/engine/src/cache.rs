//! A bounded LRU cache for per-sequence break/feature results.
//!
//! Breaking and representing an archived sequence is the expensive step of
//! a batch query (the fetch pays simulated archive latency, the pipeline
//! pays real CPU). The engine keys this cache by sequence id so repeated
//! queries — and later batches over the same archive — skip both costs.
//! Eviction is strict least-recently-used with O(1) operations via an
//! intrusive doubly-linked list over a slot arena.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Hit/miss/eviction counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required recomputation.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache. Guarded against the
    /// zero-lookup case: a fresh (or never-consulted) cache reports 0.0
    /// rather than dividing by zero into NaN.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another counter set (per-worker stats roll up into
    /// run-level totals with this).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

#[derive(Debug)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from sequence id to a cached
/// value. Not internally synchronized; the engine wraps it in a mutex.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: CacheStats,
}

impl<V: Clone> LruCache<V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics on zero capacity (caller bug).
    pub fn new(capacity: usize) -> LruCache<V> {
        assert!(capacity > 0, "cache capacity must be >= 1");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The accumulated counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                Some(self.slots[slot].value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used entry
    /// when the cache is full; returns whether an eviction happened.
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache has a tail");
            self.detach(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            self.stats.evictions += 1;
            evicted = true;
        }
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
        evicted
    }

    /// Drops one entry (the *targeted* invalidation behind incremental
    /// cache maintenance — dirty ids are removed, clean entries survive);
    /// returns whether it was cached. Not counted as an eviction: the
    /// entry didn't lose a capacity race, its data changed.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.map.remove(&key) {
            Some(slot) => {
                self.detach(slot);
                self.free.push(slot);
                true
            }
            None => false,
        }
    }

    /// Keys from most to least recently used (test/introspection helper).
    pub fn keys_mru(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key);
            cur = self.slots[cur].next;
        }
        out
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn attach_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        c.insert(7, "seven");
        assert_eq!(c.get(7), Some("seven"));
        assert_eq!(c.get(8), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        for k in 1..=3 {
            c.insert(k, k);
        }
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(1), Some(1));
        c.insert(4, 4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), None, "LRU entry evicted");
        assert_eq!(c.get(1), Some(1));
        assert_eq!(c.get(3), Some(3));
        assert_eq!(c.get(4), Some(4));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2"); // refresh: 2 is now LRU
        c.insert(3, "c");
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some("a2"));
        assert_eq!(c.get(3), Some("c"));
    }

    #[test]
    fn capacity_one_keeps_only_newest() {
        let mut c = LruCache::new(1);
        for k in 0..10 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(9), Some(9));
        assert_eq!(c.stats().evictions, 9);
    }

    #[test]
    fn mru_order_tracks_access_pattern() {
        let mut c = LruCache::new(4);
        for k in [1u64, 2, 3, 4] {
            c.insert(k, ());
        }
        assert_eq!(c.keys_mru(), vec![4, 3, 2, 1]);
        c.get(2);
        assert_eq!(c.keys_mru(), vec![2, 4, 3, 1]);
    }

    #[test]
    fn slot_reuse_after_eviction_is_consistent() {
        // Drive enough churn that freed slots are recycled.
        let mut c = LruCache::new(5);
        for k in 0..100u64 {
            c.insert(k, k * 10);
            if k >= 5 {
                assert_eq!(c.len(), 5);
            }
        }
        for k in 95..100 {
            assert_eq!(c.get(k), Some(k * 10));
        }
        assert_eq!(c.stats().evictions, 95);
    }

    #[test]
    fn remove_targets_one_entry() {
        let mut c = LruCache::new(3);
        for k in 1u64..=3 {
            c.insert(k, k);
        }
        assert!(c.remove(2));
        assert!(!c.remove(2), "already gone");
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_mru(), vec![3, 1]);
        assert_eq!(c.stats().evictions, 0, "removal is not an eviction");
        // The freed slot is reusable and the list stays consistent.
        c.insert(4, 4);
        c.insert(5, 5);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 1, "capacity eviction still works");
        // Removing head and tail keeps the links sane.
        let head = c.keys_mru()[0];
        let tail = *c.keys_mru().last().unwrap();
        assert!(c.remove(head));
        assert!(c.remove(tail));
        assert_eq!(c.keys_mru().len(), 1);
    }

    #[test]
    fn insert_reports_evictions() {
        let mut c = LruCache::new(2);
        assert!(!c.insert(1, ()));
        assert!(!c.insert(1, ()), "refresh never evicts");
        assert!(!c.insert(2, ()));
        assert!(c.insert(3, ()), "capacity overflow evicts");
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2, evictions: 0 };
        a.merge(CacheStats { hits: 4, misses: 1, evictions: 3 });
        assert_eq!(a, CacheStats { hits: 5, misses: 3, evictions: 3 });
    }

    #[test]
    fn hit_rate() {
        let mut c = LruCache::new(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, ());
        c.get(1);
        c.get(2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<()>::new(0);
    }
}
