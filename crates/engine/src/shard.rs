//! Shard planning: contiguous, near-equal partitions of the archive's
//! sorted id space.
//!
//! Shards are contiguous runs of the *sorted* id list, so concatenating
//! per-shard exact hits in shard order yields a globally id-sorted result
//! with no re-sort — the property the merge step relies on for stable,
//! scheduling-independent output.

use std::ops::Range;

/// Splits `n` items into at most `shards` contiguous ranges of near-equal
/// size (sizes differ by at most one, larger chunks first). Empty ranges
/// are never produced; fewer than `shards` ranges are returned when there
/// are fewer items than shards.
pub fn plan(n: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards >= 1, "shard count must be >= 1");
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.min(n);
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(n: usize, shards: usize) -> Vec<usize> {
        plan(n, shards).iter().map(|r| r.len()).collect()
    }

    #[test]
    fn covers_everything_in_order() {
        for n in [1usize, 2, 7, 16, 100, 257] {
            for shards in [1usize, 2, 3, 8, 64] {
                let ranges = plan(n, shards);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous from 0");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n, "covers [0, {n})");
            }
        }
    }

    #[test]
    fn near_equal_sizes() {
        assert_eq!(sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(sizes(5, 8), vec![1, 1, 1, 1, 1], "never more shards than items");
        for n in [11usize, 64, 99] {
            for shards in [2usize, 5, 7] {
                let s = sizes(n, shards);
                let (min, max) = (s.iter().min().unwrap(), s.iter().max().unwrap());
                assert!(max - min <= 1, "{n}/{shards}: {s:?}");
            }
        }
    }

    #[test]
    fn empty_input_yields_no_shards() {
        assert!(plan(0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = plan(10, 0);
    }
}
