//! Per-worker simulated-clock accounting (makespan) of one engine run.
//!
//! The archive's global clock ([`saq_archive::ArchiveStore::elapsed_seconds`])
//! sums every fetch as if they happened serially. A worker pool overlaps
//! those waits, so the *simulated* cost of a parallel batch is the slowest
//! worker's clock — the makespan — not the sum. Tracking one clock per
//! worker lets experiments report simulated speedup without relying on
//! wall-clock emulation sleeps.

/// Simulated-latency accounting of the last engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Simulated seconds of archive access accrued by each worker of the
    /// pool (cache hits cost nothing).
    pub per_worker_sim_seconds: Vec<f64>,
}

impl RunReport {
    /// An all-zero report for a pool of `workers`.
    pub fn new(workers: usize) -> RunReport {
        RunReport { per_worker_sim_seconds: vec![0.0; workers] }
    }

    /// Number of workers the run used.
    pub fn workers(&self) -> usize {
        self.per_worker_sim_seconds.len()
    }

    /// Total simulated archive seconds — what a serial scan of the same
    /// fetches would pay.
    pub fn sim_total_seconds(&self) -> f64 {
        self.per_worker_sim_seconds.iter().sum()
    }

    /// Simulated makespan: the slowest worker's clock, i.e. the batch's
    /// simulated latency when workers overlap archive waits.
    pub fn sim_makespan_seconds(&self) -> f64 {
        self.per_worker_sim_seconds.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Speedup implied by the simulated clocks (total / makespan); 1.0 for
    /// an idle or single-worker run.
    pub fn sim_speedup(&self) -> f64 {
        let makespan = self.sim_makespan_seconds();
        if makespan <= 0.0 {
            1.0
        } else {
            self.sim_total_seconds() / makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_speedup() {
        let r = RunReport { per_worker_sim_seconds: vec![3.0, 1.0, 2.0, 2.0] };
        assert_eq!(r.workers(), 4);
        assert_eq!(r.sim_total_seconds(), 8.0);
        assert_eq!(r.sim_makespan_seconds(), 3.0);
        assert!((r.sim_speedup() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_report_is_neutral() {
        let r = RunReport::new(4);
        assert_eq!(r.sim_total_seconds(), 0.0);
        assert_eq!(r.sim_makespan_seconds(), 0.0);
        assert_eq!(r.sim_speedup(), 1.0);
    }
}
