//! Per-worker accounting of one engine run: simulated clocks (makespan)
//! and feature-cache counters.
//!
//! The archive's global clock ([`saq_archive::ArchiveStore::elapsed_seconds`])
//! sums every fetch as if they happened serially. A worker pool overlaps
//! those waits, so the *simulated* cost of a parallel batch is the slowest
//! worker's clock — the makespan — not the sum. Tracking one clock per
//! worker lets experiments report simulated speedup without relying on
//! wall-clock emulation sleeps. The per-worker cache counters expose how
//! evenly the shared feature cache serves the pool (and, in incremental
//! re-runs, that only dirty ids missed).

use crate::cache::CacheStats;

/// Per-worker accounting of the last engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Simulated seconds of archive access accrued by each worker of the
    /// pool (cache hits cost nothing).
    pub per_worker_sim_seconds: Vec<f64>,
    /// Feature-cache hits/misses/evictions observed by each worker.
    pub per_worker_cache: Vec<CacheStats>,
}

impl RunReport {
    /// An all-zero report for a pool of `workers`.
    pub fn new(workers: usize) -> RunReport {
        RunReport {
            per_worker_sim_seconds: vec![0.0; workers],
            per_worker_cache: vec![CacheStats::default(); workers],
        }
    }

    /// Number of workers the run used.
    pub fn workers(&self) -> usize {
        self.per_worker_sim_seconds.len()
    }

    /// The run's cache counters rolled up across workers.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.per_worker_cache {
            total.merge(*c);
        }
        total
    }

    /// Total simulated archive seconds — what a serial scan of the same
    /// fetches would pay.
    pub fn sim_total_seconds(&self) -> f64 {
        self.per_worker_sim_seconds.iter().sum()
    }

    /// Simulated makespan: the slowest worker's clock, i.e. the batch's
    /// simulated latency when workers overlap archive waits.
    pub fn sim_makespan_seconds(&self) -> f64 {
        self.per_worker_sim_seconds.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Speedup implied by the simulated clocks (total / makespan); 1.0 for
    /// an idle or single-worker run.
    pub fn sim_speedup(&self) -> f64 {
        let makespan = self.sim_makespan_seconds();
        if makespan <= 0.0 {
            1.0
        } else {
            self.sim_total_seconds() / makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_speedup() {
        let r = RunReport {
            per_worker_sim_seconds: vec![3.0, 1.0, 2.0, 2.0],
            per_worker_cache: vec![CacheStats::default(); 4],
        };
        assert_eq!(r.workers(), 4);
        assert_eq!(r.sim_total_seconds(), 8.0);
        assert_eq!(r.sim_makespan_seconds(), 3.0);
        assert!((r.sim_speedup() - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_totals_roll_up_workers() {
        let mut r = RunReport::new(2);
        r.per_worker_cache[0] = CacheStats { hits: 3, misses: 1, evictions: 0 };
        r.per_worker_cache[1] = CacheStats { hits: 1, misses: 2, evictions: 1 };
        let total = r.cache_totals();
        assert_eq!(total, CacheStats { hits: 4, misses: 3, evictions: 1 });
        assert!((total.hit_rate() - 4.0 / 7.0).abs() < 1e-12);
        assert_eq!(RunReport::new(0).cache_totals().hit_rate(), 0.0, "zero lookups stay finite");
    }

    #[test]
    fn idle_report_is_neutral() {
        let r = RunReport::new(4);
        assert_eq!(r.sim_total_seconds(), 0.0);
        assert_eq!(r.sim_makespan_seconds(), 0.0);
        assert_eq!(r.sim_speedup(), 1.0);
    }
}
