//! # saq-engine
//!
//! A sharded, multi-threaded **batch query executor** over the raw
//! [`ArchiveStore`]. The paper's architecture answers queries from local
//! compact representations; this crate covers the complementary heavy-
//! traffic workload: a *batch* of generalized approximate queries (shape,
//! peak features, value bands) pushed down to a large archive whose
//! per-sequence representations are computed on demand.
//!
//! The execution model:
//!
//! 1. **Shard** — archived ids (sorted) are split into contiguous,
//!    near-equal shards ([`shard::plan`]).
//! 2. **Execute** — a fixed pool of worker threads claims shards from a
//!    shared counter; each worker fetches every sequence of its shard once,
//!    runs the whole query batch against it, and emits per-query partial
//!    results. Fetches pay the archive's (simulated, optionally real-time
//!    emulated) access latency, so workers overlap archive waits the way
//!    parallel tape or jukebox requests would.
//! 3. **Cache** — per-sequence break/feature results ([`StoredEntry`]) go
//!    through a bounded LRU ([`cache::LruCache`]); repeated queries over
//!    the same archive skip both the fetch and the recomputation.
//! 4. **Merge** — per-shard hits concatenate in shard order (exact hits
//!    stay globally id-sorted because shards are contiguous runs of the
//!    sorted id space); approximate hits re-sort by `(deviation, id)`.
//!    The outcome is byte-identical to the sequential path regardless of
//!    worker count or scheduling.
//!
//! ```
//! use saq_archive::{ArchiveStore, Medium};
//! use saq_core::query::QuerySpec;
//! use saq_engine::{BatchQuery, EngineConfig, QueryEngine};
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//!
//! let mut archive = ArchiveStore::new(Medium::local_disk());
//! for id in 0..8 {
//!     archive.put(id, goalpost(GoalpostSpec { seed: id, ..GoalpostSpec::default() }));
//! }
//! let engine = QueryEngine::new(EngineConfig::default()).unwrap();
//! let out = engine
//!     .run(&archive, &[BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })])
//!     .unwrap();
//! assert_eq!(out[0].exact.len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod shard;

use cache::{CacheStats, LruCache};
use parking_lot::Mutex;
use saq_archive::ArchiveStore;
use saq_baseline::max_pointwise_distance;
use saq_core::query::{
    sort_approximate_matches, ApproximateMatch, PreparedQuery, QueryOutcome, QuerySpec,
    SequenceMatch,
};
use saq_core::store::{StoreConfig, StoredEntry};
use saq_core::{Error, Result};
use saq_sequence::Sequence;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning of the batch executor.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fixed worker-pool size (≥ 1). One worker degenerates to the
    /// sequential path over the same code.
    pub workers: usize,
    /// Number of shards the id space is split into (≥ 1). More shards than
    /// workers keeps the pool busy when shard costs are skewed.
    pub shards: usize,
    /// Capacity (entries) of the per-sequence feature LRU cache.
    pub cache_capacity: usize,
    /// Ingestion parameters (ε, θ) used when representing an archived
    /// sequence. Raw copies are always retained in cached entries — band
    /// queries need them — regardless of `store.keep_raw`.
    pub store: StoreConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 4, shards: 16, cache_capacity: 1024, store: StoreConfig::default() }
    }
}

/// One query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQuery {
    /// A generalized approximate feature query (shape, peak count, peak
    /// interval, steepness), with the store-level semantics of
    /// [`saq_core::query::evaluate`].
    Feature(QuerySpec),
    /// The value-based comparator (Fig. 1): a stored sequence matches
    /// exactly when every sample lies within the ±δ envelope of `query`,
    /// and approximately when it lies within ±δ·(1 + `slack`) (deviation =
    /// distance − δ). Length mismatches never match.
    ValueBand {
        /// The envelope's center sequence.
        query: Sequence,
        /// Envelope half-width δ (≥ 0).
        delta: f64,
        /// Fractional widening for the approximate tier (≥ 0; 0 = exact
        /// Fig. 1 semantics).
        slack: f64,
    },
}

/// A query compiled for repeated per-sequence evaluation.
enum Prepared {
    Feature(PreparedQuery),
    Band { query: Sequence, delta: f64, slack: f64 },
}

impl Prepared {
    fn new(query: &BatchQuery) -> Result<Prepared> {
        match query {
            BatchQuery::Feature(spec) => Ok(Prepared::Feature(PreparedQuery::new(spec)?)),
            BatchQuery::ValueBand { query, delta, slack } => {
                if !(delta.is_finite() && *delta >= 0.0) {
                    return Err(Error::BadConfig("band delta must be finite and >= 0".into()));
                }
                if !(slack.is_finite() && *slack >= 0.0) {
                    return Err(Error::BadConfig("band slack must be finite and >= 0".into()));
                }
                if query.is_empty() {
                    return Err(Error::EmptyInput);
                }
                Ok(Prepared::Band { query: query.clone(), delta: *delta, slack: *slack })
            }
        }
    }

    fn matches(&self, entry: &StoredEntry) -> Option<SequenceMatch> {
        match self {
            Prepared::Feature(prepared) => prepared.matches(entry),
            Prepared::Band { query, delta, slack } => {
                let raw = entry.raw.as_ref()?;
                let distance = max_pointwise_distance(query, raw)?;
                if distance <= *delta {
                    Some(SequenceMatch::Exact)
                } else if distance <= *delta * (1.0 + *slack) {
                    Some(SequenceMatch::Approximate(distance - *delta))
                } else {
                    None
                }
            }
        }
    }
}

/// The sharded parallel batch query engine. Cheap to keep alive: the
/// feature cache persists across [`QueryEngine::run`] calls, so a warm
/// engine answers repeated batches without re-touching the archive.
///
/// The cache is keyed by **sequence id only** — it cannot see that an id
/// now names different data. After overwriting an archived sequence
/// ([`ArchiveStore::put`] replaces silently), or before pointing a warm
/// engine at a *different* archive with overlapping ids, call
/// [`QueryEngine::clear_cache`] or results will reflect the stale cached
/// features.
#[derive(Debug)]
pub struct QueryEngine {
    config: EngineConfig,
    cache: Mutex<LruCache<Arc<StoredEntry>>>,
}

impl QueryEngine {
    /// Builds an engine; fails on a degenerate configuration.
    pub fn new(config: EngineConfig) -> Result<QueryEngine> {
        if config.workers == 0 {
            return Err(Error::BadConfig("engine needs at least one worker".into()));
        }
        if config.shards == 0 {
            return Err(Error::BadConfig("engine needs at least one shard".into()));
        }
        if config.cache_capacity == 0 {
            return Err(Error::BadConfig("feature cache needs capacity >= 1".into()));
        }
        // Validate ε/θ the same way the store does.
        saq_core::store::SequenceStore::new(config.store)?;
        Ok(QueryEngine { config, cache: Mutex::new(LruCache::new(config.cache_capacity)) })
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Counters of the per-sequence feature cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// Drops every cached feature entry (counters reset too). Required
    /// after archived sequences are replaced in place, or when reusing a
    /// warm engine against a different archive with overlapping ids.
    pub fn clear_cache(&self) {
        *self.cache.lock() = LruCache::new(self.config.cache_capacity);
    }

    /// Runs a batch of queries over every archived sequence using the
    /// worker pool; returns one outcome per query, in query order.
    ///
    /// Results are identical — same hits, same order — to
    /// [`QueryEngine::run_sequential`] for any worker/shard configuration.
    pub fn run(&self, archive: &ArchiveStore, queries: &[BatchQuery]) -> Result<Vec<QueryOutcome>> {
        let prepared: Vec<Prepared> = queries.iter().map(Prepared::new).collect::<Result<_>>()?;
        let ids = archive.ids();
        let shards = shard::plan(ids.len(), self.config.shards);
        if shards.is_empty() || prepared.is_empty() {
            return Ok(vec![QueryOutcome::default(); queries.len()]);
        }

        let slots: Vec<Mutex<Option<Vec<QueryOutcome>>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();
        let next_shard = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<Error>> = Mutex::new(None);
        let workers = self.config.workers.min(shards.len());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next_shard.fetch_add(1, Ordering::Relaxed);
                    if s >= shards.len() || abort.load(Ordering::Relaxed) {
                        return;
                    }
                    match self.eval_shard(archive, &ids[shards[s].clone()], &prepared) {
                        Ok(partials) => *slots[s].lock() = Some(partials),
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            first_error.lock().get_or_insert(e);
                        }
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        let shard_partials: Vec<Vec<QueryOutcome>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every shard completed"))
            .collect();
        Ok(merge(shard_partials, queries.len()))
    }

    /// The single-threaded reference path: one pass over the sorted ids, no
    /// sharding, no cache. The oracle that `run` is property-tested
    /// against.
    pub fn run_sequential(
        &self,
        archive: &ArchiveStore,
        queries: &[BatchQuery],
    ) -> Result<Vec<QueryOutcome>> {
        let prepared: Vec<Prepared> = queries.iter().map(Prepared::new).collect::<Result<_>>()?;
        let ids = archive.ids();
        let partials = self.eval_ids_uncached(archive, &ids, &prepared)?;
        Ok(merge(vec![partials], queries.len()))
    }

    /// Evaluates every query against every id of one shard, through the
    /// feature cache.
    fn eval_shard(
        &self,
        archive: &ArchiveStore,
        ids: &[u64],
        prepared: &[Prepared],
    ) -> Result<Vec<QueryOutcome>> {
        let mut partials = vec![QueryOutcome::default(); prepared.len()];
        for &id in ids {
            let entry = self.entry_for(archive, id)?;
            record(&entry, id, prepared, &mut partials);
        }
        Ok(partials)
    }

    /// As [`QueryEngine::eval_shard`] but recomputing every entry — the
    /// sequential oracle must not share state with the path under test.
    fn eval_ids_uncached(
        &self,
        archive: &ArchiveStore,
        ids: &[u64],
        prepared: &[Prepared],
    ) -> Result<Vec<QueryOutcome>> {
        let mut partials = vec![QueryOutcome::default(); prepared.len()];
        for &id in ids {
            let (seq, _cost) = archive.fetch(id).ok_or(Error::UnknownSequence { id })?;
            let entry = StoredEntry::compute(seq, &self.ingest_config())?;
            record(&entry, id, prepared, &mut partials);
        }
        Ok(partials)
    }

    /// The cached fetch → break → represent pipeline for one sequence.
    fn entry_for(&self, archive: &ArchiveStore, id: u64) -> Result<Arc<StoredEntry>> {
        if let Some(entry) = self.cache.lock().get(id) {
            return Ok(entry);
        }
        let (seq, _cost) = archive.fetch(id).ok_or(Error::UnknownSequence { id })?;
        let entry = Arc::new(StoredEntry::compute(seq, &self.ingest_config())?);
        self.cache.lock().insert(id, entry.clone());
        Ok(entry)
    }

    /// The store config with raw retention forced on (band queries need the
    /// raw samples).
    fn ingest_config(&self) -> StoreConfig {
        StoreConfig { keep_raw: true, ..self.config.store }
    }
}

/// Records one entry's verdicts for every query into the per-shard partial
/// outcomes (hits stay in id order within a shard).
fn record(entry: &StoredEntry, id: u64, prepared: &[Prepared], partials: &mut [QueryOutcome]) {
    for (q, prep) in prepared.iter().enumerate() {
        match prep.matches(entry) {
            Some(SequenceMatch::Exact) => partials[q].exact.push(id),
            Some(SequenceMatch::Approximate(deviation)) => {
                partials[q].approximate.push(ApproximateMatch { id, deviation })
            }
            None => {}
        }
    }
}

/// Merges per-shard partial outcomes (in shard order) into final outcomes
/// with the store-level ordering: exact ids ascending, approximate by
/// `(deviation, id)`.
fn merge(shard_partials: Vec<Vec<QueryOutcome>>, queries: usize) -> Vec<QueryOutcome> {
    let mut out = vec![QueryOutcome::default(); queries];
    for partials in shard_partials {
        debug_assert_eq!(partials.len(), queries);
        for (outcome, partial) in out.iter_mut().zip(partials) {
            // Shards are contiguous runs of the sorted id space, so plain
            // concatenation keeps `exact` globally sorted.
            outcome.exact.extend(partial.exact);
            outcome.approximate.extend(partial.approximate);
        }
    }
    for outcome in &mut out {
        debug_assert!(outcome.exact.windows(2).all(|w| w[0] < w[1]));
        sort_approximate_matches(&mut outcome.approximate);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_archive::Medium;
    use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};

    fn mixed_archive(n: u64) -> ArchiveStore {
        let mut archive = ArchiveStore::new(Medium::memory());
        for id in 0..n {
            let seq = match id % 3 {
                0 => goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() }),
                1 => peaks(PeaksSpec {
                    centers: vec![5.0, 12.0, 19.0],
                    seed: id,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }),
                _ => random_walk(64, 0.0, 0.2, id),
            };
            archive.put(id, seq);
        }
        archive
    }

    fn batch() -> Vec<BatchQuery> {
        vec![
            BatchQuery::Feature(QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() }),
            BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 }),
            BatchQuery::Feature(QuerySpec::PeakInterval { interval: 7, epsilon: 2 }),
            BatchQuery::Feature(QuerySpec::HasSteepPeak { steepness: 1.5, slack: 0.3 }),
            BatchQuery::ValueBand {
                query: goalpost(GoalpostSpec::default()),
                delta: 1.0,
                slack: 0.5,
            },
        ]
    }

    #[test]
    fn parallel_equals_sequential_across_worker_counts() {
        let archive = mixed_archive(30);
        let reference = QueryEngine::new(EngineConfig::default())
            .unwrap()
            .run_sequential(&archive, &batch())
            .unwrap();
        for workers in [1, 2, 4, 8] {
            for shards in [1, 3, 16, 64] {
                let engine =
                    QueryEngine::new(EngineConfig { workers, shards, ..EngineConfig::default() })
                        .unwrap();
                let out = engine.run(&archive, &batch()).unwrap();
                assert_eq!(out, reference, "workers={workers} shards={shards}");
            }
        }
    }

    #[test]
    fn batch_finds_the_goalposts() {
        let archive = mixed_archive(30);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine.run(&archive, &batch()).unwrap();
        // Ids 0, 3, 6, ... are goalposts: two peaks each.
        let twos = &out[1];
        for id in (0..30).step_by(3) {
            assert!(twos.all_ids().contains(&id), "goalpost {id} missing: {twos:?}");
        }
    }

    #[test]
    fn cache_serves_repeated_batches() {
        let archive = mixed_archive(12);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let first = engine.run(&archive, &batch()).unwrap();
        let cold = engine.cache_stats();
        assert_eq!(cold.misses, 12, "one miss per sequence");
        archive.reset_clock();
        let second = engine.run(&archive, &batch()).unwrap();
        let warm = engine.cache_stats();
        assert_eq!(first, second);
        assert_eq!(warm.misses, cold.misses, "warm run recomputes nothing");
        assert_eq!(warm.hits, cold.hits + 12);
        assert_eq!(archive.elapsed_seconds(), 0.0, "warm run never touches the archive");
    }

    #[test]
    fn tiny_cache_still_correct() {
        let archive = mixed_archive(20);
        let engine = QueryEngine::new(EngineConfig {
            cache_capacity: 2,
            workers: 4,
            ..EngineConfig::default()
        })
        .unwrap();
        let reference = engine.run_sequential(&archive, &batch()).unwrap();
        assert_eq!(engine.run(&archive, &batch()).unwrap(), reference);
        assert!(engine.cache_stats().evictions > 0, "capacity 2 must evict");
    }

    #[test]
    fn clear_cache_picks_up_replaced_sequences() {
        let mut archive = ArchiveStore::new(Medium::memory());
        archive.put(1, goalpost(GoalpostSpec::default()));
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let two_peaks = vec![BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })];
        assert_eq!(engine.run(&archive, &two_peaks).unwrap()[0].exact, vec![1]);

        // Replace id 1 with a one-peak sequence: the id-keyed cache cannot
        // notice, so the warm answer is stale by design…
        archive.put(1, peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }));
        assert_eq!(engine.run(&archive, &two_peaks).unwrap()[0].exact, vec![1], "stale hit");

        // …until the cache is cleared.
        engine.clear_cache();
        assert!(engine.run(&archive, &two_peaks).unwrap()[0].exact.is_empty());
        assert_eq!(engine.cache_stats().misses, 1, "clear also resets counters");
    }

    #[test]
    fn empty_archive_and_empty_batch() {
        let archive = ArchiveStore::new(Medium::memory());
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine.run(&archive, &batch()).unwrap();
        assert_eq!(out.len(), batch().len());
        assert!(out.iter().all(|o| o.exact.is_empty() && o.approximate.is_empty()));
        let none = engine.run(&mixed_archive(3), &[]).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn bad_configs_rejected() {
        for config in [
            EngineConfig { workers: 0, ..EngineConfig::default() },
            EngineConfig { shards: 0, ..EngineConfig::default() },
            EngineConfig { cache_capacity: 0, ..EngineConfig::default() },
            EngineConfig {
                store: StoreConfig { epsilon: f64::NAN, ..StoreConfig::default() },
                ..EngineConfig::default()
            },
        ] {
            assert!(QueryEngine::new(config).is_err(), "{config:?}");
        }
    }

    #[test]
    fn bad_queries_rejected() {
        let archive = mixed_archive(3);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let bad_pattern = BatchQuery::Feature(QuerySpec::Shape { pattern: "((".into() });
        assert!(engine.run(&archive, &[bad_pattern]).is_err());
        let bad_band = BatchQuery::ValueBand {
            query: goalpost(GoalpostSpec::default()),
            delta: -1.0,
            slack: 0.0,
        };
        assert!(engine.run(&archive, &[bad_band]).is_err());
    }

    #[test]
    fn band_query_value_semantics() {
        let mut archive = ArchiveStore::new(Medium::memory());
        let center = goalpost(GoalpostSpec::default());
        archive.put(1, center.clone());
        // Same shape, amplitude-shifted beyond δ but within δ·(1+slack).
        archive.put(2, goalpost(GoalpostSpec { baseline: 98.7, ..GoalpostSpec::default() }));
        // A different length never matches on values.
        archive.put(3, random_walk(10, 0.0, 0.1, 9));
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine
            .run(&archive, &[BatchQuery::ValueBand { query: center, delta: 0.5, slack: 1.0 }])
            .unwrap();
        assert_eq!(out[0].exact, vec![1]);
        let approx_ids: Vec<u64> = out[0].approximate.iter().map(|m| m.id).collect();
        assert_eq!(approx_ids, vec![2]);
        assert!(!out[0].all_ids().contains(&3));
    }
}
