//! # saq-engine
//!
//! A sharded, multi-threaded **batch query executor** over the raw
//! [`ArchiveStore`]. The paper's architecture answers queries from local
//! compact representations; this crate covers the complementary heavy-
//! traffic workload: generalized approximate queries — single specs,
//! batches, or whole [`QueryExpr`] trees — pushed down to a large archive
//! whose per-sequence representations are computed on demand.
//!
//! The execution model (every run first captures an [`ArchiveSnapshot`] —
//! or reuses one via [`QueryEngine::run_snapshot`] /
//! [`QueryEngine::bind_snapshot`] — and reads that pinned generation
//! end-to-end, so concurrent writers never tear a batch):
//!
//! 1. **Plan** — an expression is normalized and planned by the shared
//!    [`saq_core::algebra::Planner`]; conjunctive id-range leaves prune
//!    the candidate universe before any shard is formed.
//! 2. **Shard** — candidate ids (sorted) are split into contiguous,
//!    near-equal shards ([`shard::plan`]).
//! 3. **Execute** — a fixed pool of worker threads claims shards from a
//!    shared counter; each worker fetches every sequence of its shard once
//!    and emits per-leaf partial results. Shape and interval leaves are
//!    not evaluated entry by entry: the worker builds **shard-local**
//!    pattern/interval indexes ([`saq_index::IndexSet`]) over the shard's
//!    cached entries and serves those leaves from them. Fetches pay the
//!    archive's (simulated, optionally real-time emulated) access latency,
//!    so workers overlap archive waits the way parallel tape or jukebox
//!    requests would; each worker also keeps its own simulated clock and
//!    cache counters, so [`QueryEngine::last_run_report`] exposes the
//!    batch's simulated *makespan* and per-worker cache stats alongside
//!    the serial total.
//! 4. **Cache** — per-sequence break/feature results ([`StoredEntry`]) go
//!    through a bounded LRU ([`cache::LruCache`]) stamped with the
//!    archive's `(instance, generation)`. Invalidation is *incremental*:
//!    when the pinned snapshot can name the ids mutated since the cache's
//!    stamp ([`ArchiveSnapshot::changed_since`]), only those dirty entries
//!    drop, so re-running a batch after `k` puts re-fetches exactly `k`
//!    sequences. Stamping is forward-only: a run pinned to an older
//!    generation reads through without regressing a warmer cache.
//! 5. **Merge & combine** — per-shard hits merge id-sorted per leaf, and
//!    the shared [`saq_core::algebra::execute_plan`] composes leaves into
//!    the final outcome — byte-identical to the sequential engines for any
//!    worker/shard count.
//!
//! ```
//! use saq_archive::{ArchiveStore, Medium};
//! use saq_core::algebra::{QueryEngine as _, QueryExpr};
//! use saq_core::request::QueryRequest;
//! use saq_engine::{EngineConfig, QueryEngine};
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//!
//! let mut archive = ArchiveStore::new(Medium::local_disk());
//! for id in 0..8 {
//!     archive.put(id, goalpost(GoalpostSpec { seed: id, ..GoalpostSpec::default() }));
//! }
//! let engine = QueryEngine::new(EngineConfig::default()).unwrap();
//! // A coalesced wave: every request's leaves evaluated in one sharded
//! // pass pinned to one snapshot.
//! let wave = [
//!     QueryRequest::saql("peaks = 2"),
//!     QueryRequest::saql("peaks = 2 and id in [0..3]").with_stats(),
//! ];
//! let responses = engine.run_requests(&archive.snapshot(), &wave).unwrap();
//! assert_eq!(responses[0].as_ref().unwrap().outcome.exact.len(), 8);
//! assert_eq!(responses[1].as_ref().unwrap().outcome.exact, vec![0, 1, 2, 3]);
//! // The same pool also answers one expression at a time.
//! let expr = QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(0, 3));
//! assert_eq!(engine.bind(&archive).execute(&expr).unwrap().exact, vec![0, 1, 2, 3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod report;
pub mod shard;

use cache::{CacheStats, LruCache};
use parking_lot::Mutex;
use report::RunReport;
use saq_archive::{ArchiveSnapshot, ArchiveStore};
use saq_core::algebra::{
    execute_plan, interval_index_match_set, AccessPath, ExecStats, IndexCaps, LeafSource, MatchSet,
    MatchTier, PhysicalPlan, PlanNode, PlanStats, Planner, Pred, PreparedPred, QueryExpr,
};
use saq_core::query::{QueryOutcome, QuerySpec};
use saq_core::request::{QueryRequest, QueryResponse, SnapshotRef};
use saq_core::store::{StoreConfig, StoredEntry};
use saq_core::subscribe::{Delta, SubscriptionId, SubscriptionRegistry};
use saq_core::{Error, Result};
use saq_index::{DocPager as _, IndexDoc, IndexSet, SequenceIndex as _};
use saq_sequence::Sequence;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning of the batch executor.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Fixed worker-pool size (≥ 1). One worker degenerates to the
    /// sequential path over the same code.
    pub workers: usize,
    /// Number of shards the id space is split into (≥ 1). More shards than
    /// workers keeps the pool busy when shard costs are skewed.
    pub shards: usize,
    /// Capacity (entries) of the per-sequence feature LRU cache.
    pub cache_capacity: usize,
    /// Ingestion parameters (ε, θ) used when representing an archived
    /// sequence. Raw copies are always retained in cached entries — band
    /// queries need them — regardless of `store.keep_raw`.
    pub store: StoreConfig,
    /// Adaptive re-planning between shard waves: when a wave's scan
    /// order can matter (two or more entry-scanned predicates, at least
    /// one of them skippable under a conjunctive guard), the pool first
    /// evaluates an *observation wave* of shards, folds the observed
    /// per-predicate selectivities back into the planner statistics
    /// ([`saq_core::algebra::PlanStats::refine`]), and re-plans the scan
    /// order for the remaining shards when observation diverges from the
    /// estimates. Ordering-only: outcomes are byte-identical either way.
    pub adaptive: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            shards: 16,
            cache_capacity: 1024,
            store: StoreConfig::default(),
            adaptive: true,
        }
    }
}

/// One query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQuery {
    /// A generalized approximate feature query (shape, peak count, peak
    /// interval, steepness), with the store-level semantics of
    /// [`saq_core::query::evaluate`].
    Feature(QuerySpec),
    /// The value-based comparator (Fig. 1): a stored sequence matches
    /// exactly when every sample lies within the ±δ envelope of `query`,
    /// and approximately when it lies within ±δ·(1 + `slack`) (deviation =
    /// distance − δ). Length mismatches never match.
    ValueBand {
        /// The envelope's center sequence.
        query: Sequence,
        /// Envelope half-width δ (≥ 0).
        delta: f64,
        /// Fractional widening for the approximate tier (≥ 0; 0 = exact
        /// Fig. 1 semantics).
        slack: f64,
    },
}

impl BatchQuery {
    /// Lowers to the algebra's leaf predicate — batch queries are exactly
    /// single-leaf expressions.
    pub fn to_pred(&self) -> Pred {
        match self {
            BatchQuery::Feature(spec) => Pred::Feature(spec.clone()),
            BatchQuery::ValueBand { query, delta, slack } => {
                Pred::ValueBand { query: query.clone(), delta: *delta, slack: *slack }
            }
        }
    }
}

/// The sharded parallel batch query engine. Cheap to keep alive: the
/// feature cache persists across runs, so a warm engine answers repeated
/// batches without re-touching the archive.
///
/// The cache is keyed by sequence id and stamped with the archive's
/// `(instance, generation)` pair: overwriting an archived sequence
/// ([`ArchiveStore::put`]) or pointing the engine at a different archive
/// bumps or changes the stamp, and the next run drops the stale entries
/// automatically. Each run captures its stamp up front and touches the
/// cache only while it still carries that stamp, so even concurrent runs
/// against *different* archives stay correct — the superseded run just
/// stops caching. [`QueryEngine::clear_cache`] remains for explicit
/// resets (it also zeroes the hit/miss counters).
#[derive(Debug)]
pub struct QueryEngine {
    config: EngineConfig,
    cache: Mutex<StampedCache>,
    /// Per-worker simulated clocks of the most recent run.
    last_run: Mutex<RunReport>,
}

/// The id-keyed feature cache together with the archive stamp it was
/// filled under, behind one lock so every access atomically answers "does
/// this cache belong to my archive snapshot".
#[derive(Debug)]
struct StampedCache {
    /// `(instance_id, generation)` of the archive the entries belong to;
    /// `None` until the first run.
    stamp: Option<(u64, u64)>,
    lru: LruCache<Arc<StoredEntry>>,
}

impl QueryEngine {
    /// Builds an engine; fails on a degenerate configuration.
    pub fn new(config: EngineConfig) -> Result<QueryEngine> {
        if config.workers == 0 {
            return Err(Error::BadConfig("engine needs at least one worker".into()));
        }
        if config.shards == 0 {
            return Err(Error::BadConfig("engine needs at least one shard".into()));
        }
        if config.cache_capacity == 0 {
            return Err(Error::BadConfig("feature cache needs capacity >= 1".into()));
        }
        // Validate ε/θ the same way the store does.
        saq_core::store::SequenceStore::new(config.store)?;
        Ok(QueryEngine {
            config,
            cache: Mutex::new(StampedCache {
                stamp: None,
                lru: LruCache::new(config.cache_capacity),
            }),
            last_run: Mutex::new(RunReport::default()),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Counters of the per-sequence feature cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().lru.stats()
    }

    /// Drops every cached feature entry (counters reset too). Staleness is
    /// handled automatically via the archive's generation stamp; this
    /// remains for explicit resets (e.g. reclaiming memory).
    pub fn clear_cache(&self) {
        self.cache.lock().lru = LruCache::new(self.config.cache_capacity);
    }

    /// Per-worker simulated clocks of the most recent [`QueryEngine::run`]
    /// or [`BoundEngine`] execution: the simulated makespan of a parallel
    /// batch versus the serial total.
    pub fn last_run_report(&self) -> RunReport {
        self.last_run.lock().clone()
    }

    /// Binds the engine to an archive as a composable-query backend
    /// implementing [`saq_core::algebra::QueryEngine`]: plans fan out
    /// across this engine's worker pool and feature cache. The trait also
    /// brings the textual entry point, so SAQL queries run sharded:
    ///
    /// ```
    /// use saq_archive::{ArchiveStore, Medium};
    /// use saq_core::algebra::{QueryEngine as _, QueryExpr};
    /// use saq_engine::{EngineConfig, QueryEngine};
    /// use saq_sequence::generators::{goalpost, GoalpostSpec};
    ///
    /// let mut archive = ArchiveStore::new(Medium::memory());
    /// for id in 0..6 {
    ///     archive.put(id, goalpost(GoalpostSpec { seed: id, ..GoalpostSpec::default() }));
    /// }
    /// let engine = QueryEngine::new(EngineConfig::default()).unwrap();
    /// let bound = engine.bind(&archive);
    /// let expr = QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(2, 4));
    /// assert_eq!(bound.execute(&expr).unwrap().exact, vec![2, 3, 4]);
    /// // Same query, as a SAQL request.
    /// use saq_core::request::QueryRequest;
    /// let resp = bound.request(&QueryRequest::saql("peaks = 2 and id in [2..4]")).unwrap();
    /// assert_eq!(resp.outcome.exact, vec![2, 3, 4]);
    /// ```
    pub fn bind<'e>(&'e self, archive: &'e ArchiveStore) -> BoundEngine<'e> {
        BoundEngine { engine: self, target: BoundTarget::Live(archive) }
    }

    /// As [`QueryEngine::bind`], but pinned to one [`ArchiveSnapshot`]:
    /// every execution reads that generation, no matter how far the live
    /// archive has moved on. This is the engine concurrent readers use —
    /// capture a snapshot, bind it, query without any locking.
    pub fn bind_snapshot(&self, snapshot: ArchiveSnapshot) -> BoundEngine<'_> {
        BoundEngine { engine: self, target: BoundTarget::Pinned(snapshot) }
    }

    /// Answers a **coalesced wave** of requests against one pinned
    /// snapshot: every request is planned, the distinct leaf predicates
    /// across the whole wave are evaluated in a *single* sharded pass of
    /// the worker pool (one fetch per candidate sequence for the entire
    /// wave, shared leaf results for identical predicates), and each
    /// request's plan is then composed from the shared results. This is
    /// the entry point the `saqd` server feeds — the ROADMAP's "one
    /// snapshot per coalesced batch wave".
    ///
    /// Returns one `Result` per request, in request order: a bad query
    /// (SAQL parse failure, invalid predicate, snapshot-pin mismatch)
    /// fails *that* request without poisoning the rest of the wave. Only
    /// wave-level failures — an archive id vanishing mid-evaluation — fail
    /// the whole call.
    pub fn run_requests(
        &self,
        snapshot: &ArchiveSnapshot,
        requests: &[QueryRequest],
    ) -> Result<Vec<Result<QueryResponse>>> {
        let current = SnapshotRef::new(snapshot.instance_id(), snapshot.generation());
        let ids = snapshot.ids();
        let planner = Planner::new(IndexCaps::all());
        let mut slots: Vec<PreparedPred> = Vec::new();
        let prepped: Vec<Result<PreppedRequest>> = requests
            .iter()
            .map(|req| {
                req.verify_pin(Some(current))?;
                let expr = req.resolve()?;
                let plan = planner.plan(&expr)?;
                let universe: Vec<u64> = match plan.id_bounds() {
                    Some((lo, hi)) => {
                        ids.iter().copied().filter(|id| (lo..=hi).contains(id)).collect()
                    }
                    None => ids.to_vec(),
                };
                // Identical predicates across the wave share one slot —
                // and therefore one evaluation — in the sharded pass.
                let leaf_slots = plan
                    .leaves()
                    .into_iter()
                    .map(|node| {
                        let PlanNode::Leaf { pred, .. } = node else {
                            unreachable!("leaves() yields only leaves")
                        };
                        slots.iter().position(|p| p.pred() == pred.pred()).unwrap_or_else(|| {
                            slots.push(pred.as_ref().clone());
                            slots.len() - 1
                        })
                    })
                    .collect();
                Ok(PreppedRequest { plan, universe, leaf_slots })
            })
            .collect();

        // The wave's evaluation universe: the union of the (id-bounds
        // pruned) per-request universes. Any unbounded request widens it
        // to every archived id.
        let union: Vec<u64> =
            if prepped.iter().flatten().any(|prep| prep.universe.len() == ids.len()) {
                ids.to_vec()
            } else {
                let mut merged: Vec<u64> =
                    prepped.iter().flatten().flat_map(|p| p.universe.iter().copied()).collect();
                merged.sort_unstable();
                merged.dedup();
                merged
            };

        let stamp = self.ensure_fresh(snapshot);
        let adapt = wave_adaptivity(&slots, &prepped, &union, self.config.adaptive);
        let (sets, report, leaf_evals) =
            self.eval_leaves(snapshot, &union, &slots, stamp, &adapt)?;
        *self.last_run.lock() = report;

        Ok(requests
            .iter()
            .zip(prepped)
            .map(|(req, prep)| {
                let prep = prep?;
                let mut source = WaveSource {
                    universe: &prep.universe,
                    leaf_slots: &prep.leaf_slots,
                    sets: &sets,
                };
                let (outcome, mut stats) = execute_plan(&prep.plan, &mut source)?;
                // The sharded pass evaluated this request's scan leaves
                // over the whole wave universe; report the per-entry
                // evaluations performed on its behalf (index-served
                // leaves perform none, shared leaves are counted once
                // per request they serve).
                stats.entries_scanned = prep.leaf_slots.iter().map(|&s| leaf_evals[s]).sum();
                // Rendered after execution so each leaf line carries the
                // cardinality it was observed to resolve to.
                let explain = req.want_explain.then(|| prep.plan.explain_with(Some(&stats)));
                Ok(QueryResponse {
                    outcome,
                    stats: req.want_stats.then_some(stats),
                    explain,
                    snapshot: Some(current),
                })
            })
            .collect())
    }

    /// Re-evaluates a [`SubscriptionRegistry`]'s standing queries against
    /// one pinned snapshot, pruning with the exact set of ids mutated
    /// since generation `last_pumped`
    /// ([`ArchiveSnapshot::changed_since`]). Subscriptions that execute
    /// run through this engine's sharded pool and feature cache — a pump
    /// after a k-id wave re-fetches at most those k sequences.
    ///
    /// `changed_since` answering `None` is the **wildcard**: an id-less
    /// whole-archive mutation ([`ArchiveStore::mark_all_changed`]) or a
    /// delta that fell off the bounded mutation log. It flows through to
    /// [`SubscriptionRegistry::pump`] as `None`, which re-evaluates every
    /// subscription — collapsing it to an empty dirty set would silently
    /// freeze them all (the regression `tests/prop_subscriptions.rs`
    /// guards).
    pub fn pump_subscriptions(
        &self,
        snapshot: &ArchiveSnapshot,
        registry: &mut SubscriptionRegistry,
        last_pumped: u64,
    ) -> Result<Vec<(SubscriptionId, Delta)>> {
        let dirty = snapshot.changed_since(last_pumped);
        let bound = self.bind_snapshot(snapshot.clone());
        registry.pump(&bound, dirty.as_deref(), None)
    }

    /// Runs a batch of queries over every archived sequence using the
    /// worker pool; returns one outcome per query, in query order. The
    /// run captures a snapshot of the archive up front and is pinned to it
    /// end-to-end — a writer mutating the archive mid-run cannot tear the
    /// results.
    ///
    /// Results are identical — same hits, same order — to
    /// [`QueryEngine::run_sequential`] for any worker/shard configuration.
    #[deprecated(note = "use `run_requests` with `QueryRequest`s")]
    pub fn run(&self, archive: &ArchiveStore, queries: &[BatchQuery]) -> Result<Vec<QueryOutcome>> {
        self.batch_outcomes(&archive.snapshot(), queries)
    }

    /// As `run`, over an already-captured snapshot: planner input, leaf
    /// evaluation, and the feature cache's `(instance, generation)` stamp
    /// all read the pinned generation.
    #[deprecated(note = "use `run_requests` with `QueryRequest`s")]
    pub fn run_snapshot(
        &self,
        snapshot: &ArchiveSnapshot,
        queries: &[BatchQuery],
    ) -> Result<Vec<QueryOutcome>> {
        self.batch_outcomes(snapshot, queries)
    }

    /// Shared body of the deprecated batch shims: lower each
    /// [`BatchQuery`] to a single-leaf request and run them as one wave —
    /// the same code path (and therefore byte-identical results) as the
    /// unified API.
    fn batch_outcomes(
        &self,
        snapshot: &ArchiveSnapshot,
        queries: &[BatchQuery],
    ) -> Result<Vec<QueryOutcome>> {
        let requests: Vec<QueryRequest> =
            queries.iter().map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred()))).collect();
        self.run_requests(snapshot, &requests)?
            .into_iter()
            .map(|r| r.map(|resp| resp.outcome))
            .collect()
    }

    /// The single-threaded reference path: one pass over the sorted ids of
    /// a fresh snapshot, no sharding, no cache. The oracle that `run` is
    /// property-tested against.
    pub fn run_sequential(
        &self,
        archive: &ArchiveStore,
        queries: &[BatchQuery],
    ) -> Result<Vec<QueryOutcome>> {
        let preds: Vec<PreparedPred> =
            queries.iter().map(|q| PreparedPred::new(&q.to_pred())).collect::<Result<_>>()?;
        let snapshot = archive.snapshot();
        let mut sets = vec![MatchSet::new(); preds.len()];
        for &id in snapshot.ids() {
            let (seq, _cost) = snapshot.fetch(id).ok_or(Error::UnknownSequence { id })?;
            let entry = StoredEntry::compute(seq, &self.ingest_config())?;
            record(Some(&entry), id, &preds, &mut sets);
        }
        Ok(sets.into_iter().map(MatchSet::into_outcome).collect())
    }

    /// Re-stamps the cache for the run's pinned `(instance, generation)`
    /// pair and returns that stamp for the run to carry (cache reads and
    /// fills are only honored while the cache still carries the run's
    /// stamp).
    ///
    /// Invalidation is **incremental** whenever possible: if the cache was
    /// filled under an older generation of the *same* archive and the
    /// snapshot can name the ids mutated in between
    /// ([`ArchiveSnapshot::changed_since`]), exactly those dirty entries
    /// are dropped and every clean entry survives — a re-run after `k`
    /// puts re-fetches only the `k` dirty ids. Only when the delta is
    /// unknown (different archive, wildcard mutation, or a delta older
    /// than the archive's bounded mutation log) does the whole cache
    /// reset.
    ///
    /// The stamp only ever moves *forward*: a run pinned to an older
    /// snapshot than the cache's stamp (same instance) leaves the warm
    /// cache to its newer owner and simply bypasses it — the per-access
    /// stamp check in [`QueryEngine::entry_for`] keeps the pinned run from
    /// reading entries of the wrong generation.
    fn ensure_fresh(&self, snapshot: &ArchiveSnapshot) -> (u64, u64) {
        let current = (snapshot.instance_id(), snapshot.generation());
        let mut cache = self.cache.lock();
        match cache.stamp {
            Some(stamp) if stamp == current => {}
            Some((instance, generation)) if instance == current.0 && generation > current.1 => {
                // The cache already belongs to a newer generation of this
                // archive; don't regress it for an old-pinned run.
            }
            Some((instance, generation)) if instance == current.0 => {
                match snapshot.changed_since(generation) {
                    Some(dirty) => {
                        for id in dirty {
                            cache.lru.remove(id);
                        }
                    }
                    None => cache.lru = LruCache::new(self.config.cache_capacity),
                }
                cache.stamp = Some(current);
            }
            Some(_) => {
                cache.lru = LruCache::new(self.config.cache_capacity);
                cache.stamp = Some(current);
            }
            None => cache.stamp = Some(current),
        }
        current
    }

    /// Evaluates every leaf predicate against every candidate id using the
    /// sharded worker pool; returns one id-sorted [`MatchSet`] per leaf,
    /// the per-worker report (simulated clocks + cache counters), and the
    /// number of per-entry predicate evaluations performed *per leaf*
    /// (leaves served by the shard-local indexes contribute none, and
    /// evaluations skipped under a conjunctive guard are not counted).
    ///
    /// When the wave's scan order can matter (`adapt.replan` is set), the
    /// shards run as two barrier-separated waves: an **observation wave**
    /// over a fraction of the shards, whose per-slot selectivities are
    /// folded back into the planner statistics
    /// ([`PlanStats::refine`]) to re-derive the scan order the
    /// remaining shards run under. Ordering-only: which ids each slot
    /// matches is unchanged, so outcomes are byte-identical.
    fn eval_leaves(
        &self,
        snapshot: &ArchiveSnapshot,
        ids: &[u64],
        preds: &[PreparedPred],
        stamp: (u64, u64),
        adapt: &WaveAdaptivity,
    ) -> Result<(Vec<MatchSet>, RunReport, Vec<u64>)> {
        let shards = shard::plan(ids.len(), self.config.shards);
        if shards.is_empty() || preds.is_empty() {
            return Ok((
                vec![MatchSet::new(); preds.len()],
                RunReport::new(0),
                vec![0; preds.len()],
            ));
        }
        let workers = self.config.workers.min(shards.len());
        let logs: Vec<Mutex<(f64, CacheStats)>> =
            (0..workers).map(|_| Mutex::new((0.0, CacheStats::default()))).collect();
        let leaf_evals: Vec<AtomicU64> = preds.iter().map(|_| AtomicU64::new(0)).collect();

        // Observation wave size: enough shards to see real selectivities,
        // small enough that most of the batch still benefits from the
        // refined order.
        let observe = match &adapt.replan {
            Some(_) if shards.len() >= 2 => (shards.len() / 8).max(1),
            _ => shards.len(),
        };
        let mut order = adapt.order.clone();
        let policy = ScanPolicy { order: &order, guards: &adapt.guards };
        let first = self.eval_wave(
            snapshot,
            ids,
            &shards[..observe],
            preds,
            stamp,
            policy,
            &logs,
            &leaf_evals,
        )?;
        let rest = if observe < shards.len() {
            if let Some(replan) = &adapt.replan {
                let matched: Vec<u64> = (0..preds.len())
                    .map(|slot| first.iter().map(|p| p[slot].len() as u64).sum())
                    .collect();
                let evaluated: Vec<u64> =
                    leaf_evals.iter().map(|n| n.load(Ordering::Relaxed)).collect();
                if let Some(refined) =
                    replan.refined_order(ids.len() as u64, &matched, &evaluated, preds)
                {
                    order = refined;
                }
            }
            let policy = ScanPolicy { order: &order, guards: &adapt.guards };
            self.eval_wave(
                snapshot,
                ids,
                &shards[observe..],
                preds,
                stamp,
                policy,
                &logs,
                &leaf_evals,
            )?
        } else {
            Vec::new()
        };

        let mut sets = vec![MatchSet::new(); preds.len()];
        for partials in first.into_iter().chain(rest) {
            debug_assert_eq!(partials.len(), preds.len());
            for (set, partial) in sets.iter_mut().zip(partials) {
                for (id, tier) in partial {
                    set.insert(id, tier);
                }
            }
        }
        let (per_worker_sim_seconds, per_worker_cache) =
            logs.into_iter().map(Mutex::into_inner).unzip();
        let report = RunReport { per_worker_sim_seconds, per_worker_cache };
        Ok((sets, report, leaf_evals.into_iter().map(AtomicU64::into_inner).collect()))
    }

    /// Runs one wave of shards through the worker pool under one scan
    /// policy, returning the per-shard partials in shard order. Worker
    /// clocks, cache counters, and per-leaf evaluation totals accumulate
    /// into the caller's `logs`/`leaf_evals` across waves, so the run
    /// report spans the whole batch.
    #[allow(clippy::too_many_arguments)]
    fn eval_wave(
        &self,
        snapshot: &ArchiveSnapshot,
        ids: &[u64],
        shards: &[std::ops::Range<usize>],
        preds: &[PreparedPred],
        stamp: (u64, u64),
        policy: ScanPolicy<'_>,
        logs: &[Mutex<(f64, CacheStats)>],
        leaf_evals: &[AtomicU64],
    ) -> Result<Vec<ShardPartials>> {
        let slots: Vec<Mutex<Option<ShardPartials>>> =
            shards.iter().map(|_| Mutex::new(None)).collect();
        let next_shard = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<Error>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for log in logs {
                scope.spawn(|| loop {
                    let s = next_shard.fetch_add(1, Ordering::Relaxed);
                    if s >= shards.len() || abort.load(Ordering::Relaxed) {
                        return;
                    }
                    match self.eval_shard(snapshot, &ids[shards[s].clone()], preds, stamp, policy) {
                        Ok(eval) => {
                            *slots[s].lock() = Some(eval.partials);
                            let mut log = log.lock();
                            log.0 += eval.sim_seconds;
                            log.1.merge(eval.cache);
                            for (total, n) in leaf_evals.iter().zip(&eval.leaf_evals) {
                                total.fetch_add(*n, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            first_error.lock().get_or_insert(e);
                        }
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every shard completed"))
            .collect())
    }

    /// Evaluates every leaf against every id of one shard through the
    /// feature cache.
    ///
    /// Shape and interval leaves are not evaluated entry by entry:
    /// the worker builds a **shard-local** [`IndexSet`] over the shard's
    /// (LRU-cached) entries and serves those leaves from it — shape leaves
    /// by a required-symbol-pruned pattern-index scan, interval leaves by
    /// a B+tree range lookup — so they stop scanning every cached entry.
    /// Only the remaining leaves (peak count, steepness, value bands) pay
    /// a per-entry evaluation, counted per leaf in
    /// [`ShardEval::leaf_evals`].
    ///
    /// When no leaf scans entries, the shard-local index is fed from the
    /// archive's **cold documents** ([`ArchiveSnapshot::cold_docs`])
    /// where available — documents persisted by the last compaction under
    /// the same representation parameters page in from the durable
    /// segment instead of re-running fetch → break → represent per id.
    /// Ids the pager refuses (mutated since compaction, or simply absent)
    /// fall back to the full pipeline, so results never depend on cold
    /// coverage.
    ///
    /// The scan policy orders the per-id slot evaluations and names each
    /// slot's conjunctive guards: when a guard evaluated earlier for the
    /// same id already *rejected* it, the slot's evaluation is skipped —
    /// every request using the slot also intersects with that guard, so
    /// the id cannot reach any outcome the slot feeds. Skips never elide
    /// the entry fetch itself, only the predicate evaluation.
    fn eval_shard(
        &self,
        snapshot: &ArchiveSnapshot,
        ids: &[u64],
        preds: &[PreparedPred],
        stamp: (u64, u64),
        policy: ScanPolicy<'_>,
    ) -> Result<ShardEval> {
        let serves: Vec<LeafServe> = preds.iter().map(LeafServe::of).collect();
        let needs_scan = serves.iter().any(|s| matches!(s, LeafServe::EntryScan));
        let build_index = serves.iter().any(LeafServe::is_index);
        let cold = if build_index && !needs_scan {
            snapshot.cold_docs().filter(|c| c.matches_config(&self.ingest_config())).cloned()
        } else {
            None
        };
        let mut shard_index = build_index.then(IndexSet::new);
        let mut eval = ShardEval {
            partials: vec![Vec::new(); preds.len()],
            sim_seconds: 0.0,
            cache: CacheStats::default(),
            leaf_evals: vec![0; preds.len()],
        };
        // Per-id verdicts for this shard's scan loop: NotEvaluated also
        // covers skipped slots, so a skipped slot never guards another.
        let mut verdicts = vec![Verdict::NotEvaluated; preds.len()];
        for &id in ids {
            let entry = if needs_scan {
                let (entry, cost, cache) = self.entry_for(snapshot, id, stamp)?;
                eval.sim_seconds += cost;
                eval.cache.merge(cache);
                Some(entry)
            } else {
                None
            };
            if let Some(index) = shard_index.as_mut() {
                match entry.as_deref() {
                    Some(entry) => insert_entry_doc(index, id, entry),
                    None => match cold.as_ref().and_then(|c| c.doc(id)) {
                        Some(doc) => index.insert_doc(id, &doc.as_doc()),
                        None => {
                            let (entry, cost, cache) = self.entry_for(snapshot, id, stamp)?;
                            eval.sim_seconds += cost;
                            eval.cache.merge(cache);
                            insert_entry_doc(index, id, &entry);
                        }
                    },
                }
            }
            verdicts.fill(Verdict::NotEvaluated);
            for &ix in policy.order {
                match serves[ix] {
                    LeafServe::IdOnly => {
                        verdicts[ix] = match preds[ix].matches(id, None) {
                            Some(m) => {
                                eval.partials[ix].push((id, MatchTier::from_match(m)));
                                Verdict::Matched
                            }
                            None => Verdict::Rejected,
                        };
                    }
                    LeafServe::EntryScan => {
                        if policy.guards[ix].iter().any(|&g| verdicts[g] == Verdict::Rejected) {
                            continue;
                        }
                        eval.leaf_evals[ix] += 1;
                        verdicts[ix] = match preds[ix].matches(id, entry.as_deref()) {
                            Some(m) => {
                                eval.partials[ix].push((id, MatchTier::from_match(m)));
                                Verdict::Matched
                            }
                            None => Verdict::Rejected,
                        };
                    }
                    LeafServe::PatternIndex | LeafServe::IntervalIndex => {}
                }
            }
        }
        if let Some(index) = &shard_index {
            for ((partial, pred), serve) in eval.partials.iter_mut().zip(preds).zip(&serves) {
                match serve {
                    LeafServe::PatternIndex => {
                        let regex = pred.regex().expect("shape leaf holds its regex");
                        let mut hits = index.pattern().full_matches(regex);
                        hits.sort_unstable();
                        *partial = hits.into_iter().map(|id| (id, MatchTier::exact())).collect();
                    }
                    LeafServe::IntervalIndex => {
                        let Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) =
                            *pred.pred()
                        else {
                            unreachable!("interval serve implies an interval leaf");
                        };
                        *partial = interval_index_match_set(index.interval(), interval, epsilon)
                            .iter()
                            .collect();
                    }
                    LeafServe::IdOnly | LeafServe::EntryScan => {}
                }
            }
        }
        Ok(eval)
    }

    /// The cached fetch → break → represent pipeline for one sequence;
    /// also returns the simulated seconds the fetch cost (0 on a hit) and
    /// this lookup's cache counters (for per-worker accounting).
    /// The cache is consulted and filled only while it still carries this
    /// run's `stamp` — if a concurrent run re-stamped it for a different
    /// archive, this run computes fresh entries and leaves the cache to
    /// its new owner.
    fn entry_for(
        &self,
        snapshot: &ArchiveSnapshot,
        id: u64,
        stamp: (u64, u64),
    ) -> Result<(Arc<StoredEntry>, f64, CacheStats)> {
        {
            let mut cache = self.cache.lock();
            if cache.stamp == Some(stamp) {
                if let Some(entry) = cache.lru.get(id) {
                    return Ok((entry, 0.0, CacheStats { hits: 1, ..CacheStats::default() }));
                }
            }
        }
        let (seq, cost) = snapshot.fetch(id).ok_or(Error::UnknownSequence { id })?;
        let entry = Arc::new(StoredEntry::compute(seq, &self.ingest_config())?);
        let mut delta = CacheStats { misses: 1, ..CacheStats::default() };
        let mut cache = self.cache.lock();
        if cache.stamp == Some(stamp) && cache.lru.insert(id, entry.clone()) {
            delta.evictions = 1;
        }
        Ok((entry, cost.total(), delta))
    }

    /// The store config with raw retention forced on (band queries need the
    /// raw samples).
    fn ingest_config(&self) -> StoreConfig {
        StoreConfig { keep_raw: true, ..self.config.store }
    }
}

/// Per-leaf hit lists of one shard (id order within the shard).
type ShardPartials = Vec<Vec<(u64, MatchTier)>>;

/// Indexes one materialized entry into a shard-local index set.
fn insert_entry_doc(index: &mut IndexSet, id: u64, entry: &StoredEntry) {
    let buckets = entry.peaks.interval_buckets();
    index.insert_doc(
        id,
        &IndexDoc {
            symbols: &entry.symbols,
            interval_buckets: &buckets,
            peak_count: entry.peaks.len(),
        },
    );
}

/// Everything one shard's evaluation produced.
struct ShardEval {
    partials: ShardPartials,
    /// Simulated archive seconds this shard's fetches cost.
    sim_seconds: f64,
    /// Cache counters observed while materializing this shard's entries.
    cache: CacheStats,
    /// Per-entry predicate evaluations, per leaf (scan-served leaves
    /// only; index-served leaves stay 0).
    leaf_evals: Vec<u64>,
}

/// How the sharded pass serves one leaf predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeafServe {
    /// Id arithmetic alone — no entry, no index.
    IdOnly,
    /// Shard-local slope-pattern index (pruned full-match scan).
    PatternIndex,
    /// Shard-local inverted interval file (B+tree range lookup).
    IntervalIndex,
    /// Per-entry predicate evaluation.
    EntryScan,
}

impl LeafServe {
    fn of(pred: &PreparedPred) -> LeafServe {
        match pred.pred() {
            Pred::IdRange { .. } => LeafServe::IdOnly,
            Pred::Feature(QuerySpec::Shape { .. }) => LeafServe::PatternIndex,
            Pred::Feature(QuerySpec::PeakInterval { .. }) => LeafServe::IntervalIndex,
            _ => LeafServe::EntryScan,
        }
    }

    fn is_index(&self) -> bool {
        matches!(self, LeafServe::PatternIndex | LeafServe::IntervalIndex)
    }

    fn is_per_id(&self) -> bool {
        matches!(self, LeafServe::IdOnly | LeafServe::EntryScan)
    }
}

/// One id's verdict for one slot within a shard's scan loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Not reached yet, index-served, or skipped under a guard.
    NotEvaluated,
    Rejected,
    Matched,
}

/// The scan policy one wave runs under: the order the per-id loop walks
/// the slots in, and each slot's conjunctive guards.
#[derive(Clone, Copy)]
struct ScanPolicy<'a> {
    order: &'a [usize],
    guards: &'a [Vec<usize>],
}

/// The wave-level adaptive-execution context `run_requests` derives from
/// the prepped plans before any shard runs.
struct WaveAdaptivity {
    /// Slot indices in initial evaluation order: id filters first, then
    /// scans by estimated cardinality (the slot conjunction's
    /// `exec_order`), index-served slots wherever they fall (their loop
    /// arm is a no-op).
    order: Vec<usize>,
    /// Per slot: the guard slots — per-id-served slots that are a direct
    /// conjunct sibling of this slot's root `And` in **every** request
    /// using it. An id a guard rejected is excluded from every outcome
    /// this slot can feed, so its evaluation may be skipped.
    guards: Vec<Vec<usize>>,
    /// Present when between-wave re-planning could change the order:
    /// two or more entry-scanned slots, at least one skippable under an
    /// entry-scanned guard.
    replan: Option<ReplanCtx>,
}

/// Between-wave re-planning inputs: a conjunction over every slot
/// predicate (leaf `ix` == slot index) planned under the wave's initial
/// statistics, plus those statistics for [`PlanStats::refine`].
struct ReplanCtx {
    expr: QueryExpr,
    plan: PhysicalPlan,
    stats: PlanStats,
}

/// Observation must exceed estimate (or vice versa) by this factor —
/// after +1 smoothing on both sides — before a batch re-plans its scan
/// order mid-wave.
const DIVERGENCE_FACTOR: f64 = 2.0;

impl ReplanCtx {
    /// Extrapolates the observation wave's per-slot hit rates to the full
    /// universe, and — when observation diverges from the estimates past
    /// [`DIVERGENCE_FACTOR`] — folds them into the statistics via
    /// [`PlanStats::refine`] and re-plans the slot conjunction. Returns
    /// the refined slot order, or `None` to keep the current one.
    fn refined_order(
        &self,
        universe: u64,
        matched: &[u64],
        evaluated: &[u64],
        preds: &[PreparedPred],
    ) -> Option<Vec<usize>> {
        let mut exec =
            ExecStats { universe, observed: vec![None; preds.len()], ..ExecStats::default() };
        for (slot, pred) in preds.iter().enumerate() {
            if LeafServe::of(pred) != LeafServe::EntryScan || evaluated[slot] == 0 {
                continue;
            }
            let rate = matched[slot] as f64 / evaluated[slot] as f64;
            exec.record_observed(slot, (rate * universe as f64).round() as u64);
        }
        if !self.stats.diverged(&exec, &self.plan, DIVERGENCE_FACTOR) {
            return None;
        }
        let mut stats = self.stats.clone();
        stats.refine(&exec, &self.plan);
        let plan = Planner::with_stats(IndexCaps::all(), stats).plan(&self.expr).ok()?;
        match plan.root() {
            PlanNode::And { exec_order, .. } if exec_order.len() == preds.len() => {
                Some(exec_order.clone())
            }
            _ => None,
        }
    }
}

/// Collects the slots that appear under a pipeline breaker
/// (`Limit`/`TopK`) anywhere in a request's plan. A breaker's truncation
/// can turn one id's absence into a *different* id's presence, so these
/// slots must never skip an evaluation.
fn breaker_slots(
    node: &PlanNode,
    leaf_slots: &[usize],
    under: bool,
    out: &mut std::collections::BTreeSet<usize>,
) {
    match node {
        PlanNode::Leaf { ix, .. } => {
            if under {
                out.insert(leaf_slots[*ix]);
            }
        }
        PlanNode::And { children, .. } | PlanNode::Or(children) => {
            children.iter().for_each(|c| breaker_slots(c, leaf_slots, under, out));
        }
        PlanNode::Not(child) => breaker_slots(child, leaf_slots, under, out),
        PlanNode::Limit(child, _) | PlanNode::TopK(child, _) => {
            breaker_slots(child, leaf_slots, true, out);
        }
    }
}

/// Derives the wave's scan order, conjunctive guards, and (when the
/// order can matter) the between-wave re-planning context.
///
/// A guard is sound only if it holds in **every** request that shares
/// the slot: the guard sets are the intersection, over each request
/// using a slot, of the per-id-served leaf slots sitting as direct
/// children of that request's root `And` — and a request whose root is
/// not an `And`, or that reads the slot under a pipeline breaker,
/// contributes the empty set. Skipping an id the guard rejected is then
/// outcome-preserving: the final conjunction intersects with the guard's
/// match set, which excludes that id, in every consuming request.
fn wave_adaptivity(
    slots: &[PreparedPred],
    prepped: &[Result<PreppedRequest>],
    union: &[u64],
    adaptive: bool,
) -> WaveAdaptivity {
    use std::collections::BTreeSet;
    let serves: Vec<LeafServe> = slots.iter().map(LeafServe::of).collect();
    let mut guards: Vec<Option<BTreeSet<usize>>> = vec![None; slots.len()];
    for prep in prepped.iter().flatten() {
        let conjuncts: BTreeSet<usize> = match prep.plan.root() {
            PlanNode::And { children, .. } => children
                .iter()
                .filter_map(|child| match child {
                    PlanNode::Leaf { ix, .. } => Some(prep.leaf_slots[*ix]),
                    _ => None,
                })
                .filter(|&s| serves[s].is_per_id())
                .collect(),
            _ => BTreeSet::new(),
        };
        let mut breakered = BTreeSet::new();
        breaker_slots(prep.plan.root(), &prep.leaf_slots, false, &mut breakered);
        for &slot in &prep.leaf_slots {
            let mut mine =
                if breakered.contains(&slot) { BTreeSet::new() } else { conjuncts.clone() };
            mine.remove(&slot);
            match guards[slot].as_mut() {
                Some(acc) => acc.retain(|g| mine.contains(g)),
                None => guards[slot] = Some(mine),
            }
        }
    }
    let guards: Vec<Vec<usize>> =
        guards.into_iter().map(|g| g.unwrap_or_default().into_iter().collect()).collect();

    let mut order: Vec<usize> = (0..slots.len()).collect();
    let mut replan = None;
    if slots.len() >= 2 {
        let stats = PlanStats {
            universe: union.len() as u64,
            id_span: union.first().copied().zip(union.last().copied()),
            index: None,
            observed: Default::default(),
        };
        let expr =
            QueryExpr::And(slots.iter().map(|p| QueryExpr::Leaf(p.pred().clone())).collect());
        if let Ok(plan) = Planner::with_stats(IndexCaps::all(), stats.clone()).plan(&expr) {
            // The slot conjunction's plan is usable only if normalization
            // kept it aligned: child i is exactly slot i's predicate.
            let aligned = matches!(plan.root(), PlanNode::And { children, .. }
            if children.len() == slots.len()
                && children.iter().zip(slots).all(|(child, slot)| {
                    matches!(child, PlanNode::Leaf { pred, .. } if pred.pred() == slot.pred())
                }));
            if aligned {
                if let PlanNode::And { exec_order, .. } = plan.root() {
                    order = exec_order.clone();
                }
                let reorderable = guards.iter().enumerate().any(|(s, g)| {
                    serves[s] == LeafServe::EntryScan
                        && g.iter().any(|&g| serves[g] == LeafServe::EntryScan)
                });
                if adaptive && reorderable {
                    replan = Some(ReplanCtx { expr, plan, stats });
                }
            }
        }
    }
    WaveAdaptivity { order, guards, replan }
}

/// Records one entry's verdicts for every leaf into per-leaf match sets.
fn record(entry: Option<&StoredEntry>, id: u64, preds: &[PreparedPred], sets: &mut [MatchSet]) {
    for (set, pred) in sets.iter_mut().zip(preds) {
        if let Some(m) = pred.matches(id, entry) {
            set.insert(id, MatchTier::from_match(m));
        }
    }
}

/// A [`QueryEngine`] bound to one archive: the sharded implementation of
/// the algebra's engine trait. Leaves of a planned expression are
/// evaluated in a single pass of the worker pool (one fetch per candidate
/// sequence regardless of leaf count), then composed by the shared plan
/// executor — so outcomes are id-identical to the sequential engines.
///
/// ```
/// use saq_archive::{ArchiveStore, Medium};
/// use saq_core::algebra::{QueryEngine as _, QueryExpr};
/// use saq_engine::{EngineConfig, QueryEngine};
/// use saq_sequence::generators::{goalpost, GoalpostSpec};
///
/// let mut archive = ArchiveStore::new(Medium::memory());
/// archive.put(1, goalpost(GoalpostSpec::default()));
/// let engine = QueryEngine::new(EngineConfig::default()).unwrap();
/// let bound = engine.bind(&archive);
/// let out = bound.execute(&QueryExpr::peak_count(2, 0).negate()).unwrap();
/// assert!(out.exact.is_empty());
/// ```
#[derive(Debug)]
pub struct BoundEngine<'e> {
    engine: &'e QueryEngine,
    target: BoundTarget<'e>,
}

/// What a [`BoundEngine`] execution reads: a live archive (each run
/// captures a fresh snapshot) or one pinned generation.
#[derive(Debug)]
enum BoundTarget<'e> {
    Live(&'e ArchiveStore),
    Pinned(ArchiveSnapshot),
}

impl BoundEngine<'_> {
    fn capture(&self) -> ArchiveSnapshot {
        match &self.target {
            BoundTarget::Live(archive) => archive.snapshot(),
            BoundTarget::Pinned(snapshot) => snapshot.clone(),
        }
    }

    fn one_request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        let snapshot = self.capture();
        self.engine
            .run_requests(&snapshot, std::slice::from_ref(req))?
            .pop()
            .expect("one response per request")
    }
}

impl saq_core::algebra::QueryEngine for BoundEngine<'_> {
    /// A single-request wave of [`QueryEngine::run_requests`]: the
    /// planner's universe, every shard's leaf evaluation, and the feature
    /// cache stamp all read one pinned generation.
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let resp = self.one_request(&QueryRequest::expr(expr.clone()).with_stats())?;
        Ok((resp.outcome, resp.stats.expect("stats were requested")))
    }

    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        self.one_request(req)
    }

    /// The engine claims full index capability — shape and interval
    /// leaves are served by the workers' shard-local indexes rather than
    /// the (nonexistent) global indexes of a raw archive — so the default
    /// all-caps rendering is exactly the plan a request runs.
    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        Ok(Planner::new(IndexCaps::all()).plan(expr)?.explain())
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        let snapshot = self.capture();
        Some(SnapshotRef::new(snapshot.instance_id(), snapshot.generation()))
    }
}

/// One request of a wave, planned and mapped onto the wave's shared leaf
/// slots.
struct PreppedRequest {
    plan: PhysicalPlan,
    /// This request's candidate universe (the snapshot's sorted ids,
    /// pruned by the plan's id bounds).
    universe: Vec<u64>,
    /// For each plan leaf (by leaf `ix`), the wave-global predicate slot
    /// whose evaluated [`MatchSet`] serves it.
    leaf_slots: Vec<usize>,
}

/// [`LeafSource`] over the leaf results a wave's sharded pass already
/// produced. Leaves were evaluated over the wave's *union* universe, so
/// every lookup is restricted to this request's own universe (or the
/// narrower candidate list the plan's conjunction ordering supplies) —
/// `Not` and unconstrained leaves must never see another request's ids.
struct WaveSource<'a> {
    universe: &'a [u64],
    leaf_slots: &'a [usize],
    sets: &'a [MatchSet],
}

impl LeafSource for WaveSource<'_> {
    fn universe(&mut self) -> Result<Vec<u64>> {
        Ok(self.universe.to_vec())
    }

    fn eval_leaf(
        &mut self,
        ix: usize,
        _pred: &PreparedPred,
        path: AccessPath,
        candidates: Option<&[u64]>,
        stats: &mut ExecStats,
    ) -> Result<MatchSet> {
        match path {
            AccessPath::IdFilter | AccessPath::PatternIndex | AccessPath::IntervalIndex => {
                stats.index_leaves += 1;
            }
            AccessPath::Scan => stats.scan_leaves += 1,
        }
        let set = self.sets[self.leaf_slots[ix]].clone();
        Ok(set.restrict(candidates.unwrap_or(self.universe)))
    }
}

// The classic `run`/`run_snapshot` shims are deprecated but must keep
// working byte-identically — these tests deliberately keep exercising
// them (they now route through `run_requests`, so every cache and
// invalidation test below covers the unified path too).
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use saq_archive::Medium;
    use saq_core::algebra::QueryEngine as _;
    use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};

    fn mixed_archive(n: u64) -> ArchiveStore {
        let mut archive = ArchiveStore::new(Medium::memory());
        for id in 0..n {
            let seq = match id % 3 {
                0 => goalpost(GoalpostSpec { seed: id, noise: 0.1, ..GoalpostSpec::default() }),
                1 => peaks(PeaksSpec {
                    centers: vec![5.0, 12.0, 19.0],
                    seed: id,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }),
                _ => random_walk(64, 0.0, 0.2, id),
            };
            archive.put(id, seq);
        }
        archive
    }

    fn batch() -> Vec<BatchQuery> {
        vec![
            BatchQuery::Feature(QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() }),
            BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 1 }),
            BatchQuery::Feature(QuerySpec::PeakInterval { interval: 7, epsilon: 2 }),
            BatchQuery::Feature(QuerySpec::HasSteepPeak { steepness: 1.5, slack: 0.3 }),
            BatchQuery::ValueBand {
                query: goalpost(GoalpostSpec::default()),
                delta: 1.0,
                slack: 0.5,
            },
        ]
    }

    #[test]
    fn parallel_equals_sequential_across_worker_counts() {
        let archive = mixed_archive(30);
        let reference = QueryEngine::new(EngineConfig::default())
            .unwrap()
            .run_sequential(&archive, &batch())
            .unwrap();
        for workers in [1, 2, 4, 8] {
            for shards in [1, 3, 16, 64] {
                let engine =
                    QueryEngine::new(EngineConfig { workers, shards, ..EngineConfig::default() })
                        .unwrap();
                let out = engine.run(&archive, &batch()).unwrap();
                assert_eq!(out, reference, "workers={workers} shards={shards}");
            }
        }
    }

    #[test]
    fn batch_finds_the_goalposts() {
        let archive = mixed_archive(30);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine.run(&archive, &batch()).unwrap();
        // Ids 0, 3, 6, ... are goalposts: two peaks each.
        let twos = &out[1];
        for id in (0..30).step_by(3) {
            assert!(twos.all_ids().contains(&id), "goalpost {id} missing: {twos:?}");
        }
    }

    #[test]
    fn cache_serves_repeated_batches() {
        let archive = mixed_archive(12);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let first = engine.run(&archive, &batch()).unwrap();
        let cold = engine.cache_stats();
        assert_eq!(cold.misses, 12, "one miss per sequence");
        archive.reset_clock();
        let second = engine.run(&archive, &batch()).unwrap();
        let warm = engine.cache_stats();
        assert_eq!(first, second);
        assert_eq!(warm.misses, cold.misses, "warm run recomputes nothing");
        assert_eq!(warm.hits, cold.hits + 12);
        assert_eq!(archive.elapsed_seconds(), 0.0, "warm run never touches the archive");
        assert_eq!(
            engine.last_run_report().sim_total_seconds(),
            0.0,
            "warm per-worker clocks stay idle"
        );
    }

    #[test]
    fn cold_documents_serve_index_leaves_without_fetching() {
        use saq_archive::DurabilityConfig;
        use saq_durable::{Backend, MemoryBackend};
        let backend: Arc<dyn Backend> = Arc::new(MemoryBackend::new());
        let config =
            DurabilityConfig { compact_after: 0, index_docs: Some(StoreConfig::default()) };
        let mut archive = ArchiveStore::open_backend(backend, Medium::memory(), config).unwrap();
        let template = mixed_archive(12);
        for &id in template.ids().iter() {
            archive.put(id, template.snapshot().fetch(id).unwrap().0.clone());
        }
        archive.compact().unwrap();
        let index_batch = vec![
            BatchQuery::Feature(QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() }),
            BatchQuery::Feature(QuerySpec::PeakInterval { interval: 7, epsilon: 2 }),
        ];
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let reference = engine.run_sequential(&template, &index_batch).unwrap();
        let before = archive.fetch_count();
        let out = engine.run(&archive, &index_batch).unwrap();
        assert_eq!(out, reference, "cold-served results match recomputing everything");
        assert_eq!(
            archive.fetch_count(),
            before,
            "an index-only batch pages cold documents and fetches no sequences"
        );
        // A mutated id is refused by the pager and falls back to the full
        // fetch → break → represent pipeline; everything else stays cold.
        archive.put(3, random_walk(64, 0.0, 0.2, 99));
        let before = archive.fetch_count();
        let out = engine.run(&archive, &index_batch).unwrap();
        assert_eq!(archive.fetch_count() - before, 1, "only the dirtied id pays a fetch");
        assert_eq!(out, engine.run_sequential(&archive, &index_batch).unwrap());
        // Entry-scan leaves force the pipeline regardless of cold docs.
        let before = archive.fetch_count();
        engine
            .run(&archive, &[BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })])
            .unwrap();
        assert!(archive.fetch_count() > before, "scan leaves still fetch");
    }

    #[test]
    fn tiny_cache_still_correct() {
        let archive = mixed_archive(20);
        let engine = QueryEngine::new(EngineConfig {
            cache_capacity: 2,
            workers: 4,
            ..EngineConfig::default()
        })
        .unwrap();
        let reference = engine.run_sequential(&archive, &batch()).unwrap();
        assert_eq!(engine.run(&archive, &batch()).unwrap(), reference);
        assert!(engine.cache_stats().evictions > 0, "capacity 2 must evict");
    }

    #[test]
    fn generation_stamp_invalidates_replaced_sequences() {
        let mut archive = ArchiveStore::new(Medium::memory());
        archive.put(1, goalpost(GoalpostSpec::default()));
        archive.put(2, goalpost(GoalpostSpec::default()));
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let two_peaks = vec![BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })];
        assert_eq!(engine.run(&archive, &two_peaks).unwrap()[0].exact, vec![1, 2]);

        // Replace id 1 with a one-peak sequence: the put bumps the
        // archive's generation and logs the dirty id, so the warm engine
        // drops exactly that entry on the next run — id 2 stays cached.
        archive.put(1, peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }));
        assert_eq!(engine.run(&archive, &two_peaks).unwrap()[0].exact, vec![2]);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 3, "two cold misses + the one dirty id");
        assert_eq!(stats.hits, 1, "the clean entry survived the re-stamp");
    }

    #[test]
    fn incremental_rerun_touches_only_dirty_ids() {
        let mut archive = mixed_archive(20);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let reference = |a: &ArchiveStore| {
            QueryEngine::new(EngineConfig::default()).unwrap().run_sequential(a, &batch()).unwrap()
        };
        engine.run(&archive, &batch()).unwrap();
        assert_eq!(archive.fetch_count(), 20, "cold run fetches everything");

        // k = 3 puts: one brand-new id, two replacements.
        archive.put(100, goalpost(GoalpostSpec { seed: 100, ..GoalpostSpec::default() }));
        archive.put(4, peaks(PeaksSpec { centers: vec![12.0], seed: 4, ..PeaksSpec::default() }));
        archive.put(7, random_walk(64, 0.0, 0.2, 77));
        let before = archive.fetch_count();
        let out = engine.run(&archive, &batch()).unwrap();
        assert_eq!(
            archive.fetch_count() - before,
            3,
            "incremental re-run fetches exactly the k dirty ids"
        );
        assert_eq!(out, reference(&archive), "incremental results match a cold engine");
        assert_eq!(engine.last_run_report().cache_totals().misses, 3);

        // A wildcard mutation degrades to full invalidation — correct,
        // just not incremental.
        archive.mark_all_changed();
        let before = archive.fetch_count();
        let out = engine.run(&archive, &batch()).unwrap();
        assert_eq!(archive.fetch_count() - before, 21, "unknown delta refetches everything");
        assert_eq!(out, reference(&archive));
    }

    #[test]
    fn tiered_with_archive_put_keeps_reruns_incremental() {
        use saq_archive::TieredStore;
        use saq_core::store::StoreConfig;
        let mut tiered =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        for i in 0..12 {
            tiered.insert(&goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() })).unwrap();
        }
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        engine.run(tiered.archive(), &batch()).unwrap();
        let before = tiered.archive().fetch_count();

        // The tracked-mutation path records exactly the touched id…
        let id = tiered.local().ids()[3];
        tiered
            .with_archive_put(id, &peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }))
            .unwrap();
        engine.run(tiered.archive(), &batch()).unwrap();
        assert_eq!(
            tiered.archive().fetch_count() - before,
            1,
            "re-run after with_archive_put fetches only the touched id"
        );

        // …whereas the wildcard borrow degrades to full invalidation.
        tiered.archive_mut();
        let before = tiered.archive().fetch_count();
        engine.run(tiered.archive(), &batch()).unwrap();
        assert_eq!(tiered.archive().fetch_count() - before, 12);
    }

    #[test]
    fn pinned_runs_read_their_generation_while_the_archive_moves_on() {
        let mut archive = mixed_archive(6);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let snap = archive.snapshot();
        let expected = engine.run(&archive, &batch()).unwrap();
        let expr = QueryExpr::peak_count(2, 1).or(QueryExpr::peak_interval(10, 3));
        let expr_expected = engine.bind(&archive).execute(&expr).unwrap();

        // The writer removes and rewrites sequences after the pin.
        archive.remove(0);
        archive.put(1, random_walk(64, 0.0, 0.2, 99));
        archive.put(50, goalpost(GoalpostSpec { seed: 50, ..GoalpostSpec::default() }));
        assert_ne!(engine.run(&archive, &batch()).unwrap(), expected, "live results moved on");

        // Pinned runs — batch and algebra alike — still see the old state.
        assert_eq!(engine.run_snapshot(&snap, &batch()).unwrap(), expected);
        assert_eq!(engine.bind_snapshot(snap).execute(&expr).unwrap(), expr_expected);
    }

    #[test]
    fn shard_local_indexes_serve_shape_and_interval_leaves() {
        use saq_core::algebra::QueryEngine as _;
        let archive = mixed_archive(30);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let expr =
            QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*").and(QueryExpr::peak_interval(10, 3));
        let (out, stats) = engine.bind(&archive).execute_with_stats(&expr).unwrap();
        assert_eq!(stats.entries_scanned, 0, "both leaves served by shard-local indexes");
        assert_eq!(stats.index_leaves, 2);
        assert_eq!(stats.scan_leaves, 0);
        assert!(!out.all_ids().is_empty(), "{out:?}");
        // A scan leaf in the mix pays per-entry evaluations; the index
        // leaves still don't.
        let mixed = expr.and(QueryExpr::min_steepness(0.1, 0.0));
        let (_, stats) = engine.bind(&archive).execute_with_stats(&mixed).unwrap();
        assert_eq!(stats.entries_scanned, 30, "one evaluation per candidate for the scan leaf");
    }

    #[test]
    fn stale_stamped_access_bypasses_the_cache_but_stays_correct() {
        // Simulates a run that captured its stamp before a concurrent run
        // re-stamped the cache for a different archive: the stale run must
        // compute from its own archive and must not pollute the cache.
        let mut a1 = ArchiveStore::new(Medium::memory());
        a1.put(1, goalpost(GoalpostSpec::default())); // two peaks
        let mut a2 = ArchiveStore::new(Medium::memory());
        a2.put(1, peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() })); // one peak
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let snap1 = a1.snapshot();
        let stale_stamp = engine.ensure_fresh(&snap1);

        let two_peaks = vec![BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })];
        assert!(engine.run(&a2, &two_peaks).unwrap()[0].exact.is_empty(), "a2's id 1 has 1 peak");

        // The stale-stamped path sees a1's real data, not a2's cache…
        let (entry, _, _) = engine.entry_for(&snap1, 1, stale_stamp).unwrap();
        assert_eq!(entry.peaks.len(), 2, "computed from a1, not served from a2's cache");
        // …and did not overwrite a2's cached entry.
        assert!(engine.run(&a2, &two_peaks).unwrap()[0].exact.is_empty());
        assert_eq!(engine.cache_stats().misses, 1, "a2's entry stayed cached throughout");
    }

    #[test]
    fn switching_archives_invalidates_too() {
        let a = mixed_archive(3);
        let mut b = ArchiveStore::new(Medium::memory());
        // Same id, different content.
        b.put(0, peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }));
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let two_peaks = vec![BatchQuery::Feature(QuerySpec::PeakCount { count: 2, tolerance: 0 })];
        assert!(engine.run(&a, &two_peaks).unwrap()[0].exact.contains(&0), "id 0 is a goalpost");
        assert!(
            !engine.run(&b, &two_peaks).unwrap()[0].exact.contains(&0),
            "other archive's id 0 has one peak"
        );
    }

    #[test]
    fn empty_archive_and_empty_batch() {
        let archive = ArchiveStore::new(Medium::memory());
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine.run(&archive, &batch()).unwrap();
        assert_eq!(out.len(), batch().len());
        assert!(out.iter().all(|o| o.exact.is_empty() && o.approximate.is_empty()));
        let none = engine.run(&mixed_archive(3), &[]).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn bad_configs_rejected() {
        for config in [
            EngineConfig { workers: 0, ..EngineConfig::default() },
            EngineConfig { shards: 0, ..EngineConfig::default() },
            EngineConfig { cache_capacity: 0, ..EngineConfig::default() },
            EngineConfig {
                store: StoreConfig { epsilon: f64::NAN, ..StoreConfig::default() },
                ..EngineConfig::default()
            },
        ] {
            assert!(QueryEngine::new(config).is_err(), "{config:?}");
        }
    }

    #[test]
    fn bad_queries_rejected() {
        let archive = mixed_archive(3);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let bad_pattern = BatchQuery::Feature(QuerySpec::Shape { pattern: "((".into() });
        assert!(engine.run(&archive, &[bad_pattern]).is_err());
        let bad_band = BatchQuery::ValueBand {
            query: goalpost(GoalpostSpec::default()),
            delta: -1.0,
            slack: 0.0,
        };
        assert!(engine.run(&archive, &[bad_band]).is_err());
    }

    #[test]
    fn band_query_value_semantics() {
        let mut archive = ArchiveStore::new(Medium::memory());
        let center = goalpost(GoalpostSpec::default());
        archive.put(1, center.clone());
        // Same shape, amplitude-shifted beyond δ but within δ·(1+slack).
        archive.put(2, goalpost(GoalpostSpec { baseline: 98.7, ..GoalpostSpec::default() }));
        // A different length never matches on values.
        archive.put(3, random_walk(10, 0.0, 0.1, 9));
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let out = engine
            .run(&archive, &[BatchQuery::ValueBand { query: center, delta: 0.5, slack: 1.0 }])
            .unwrap();
        assert_eq!(out[0].exact, vec![1]);
        let approx_ids: Vec<u64> = out[0].approximate.iter().map(|m| m.id).collect();
        assert_eq!(approx_ids, vec![2]);
        assert!(!out[0].all_ids().contains(&3));
    }

    #[test]
    fn bound_engine_composes_and_prunes_by_id_range() {
        let archive = mixed_archive(30);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let bound = engine.bind(&archive);
        // Goalposts within ids 0..=14 only.
        let expr = QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(0, 14));
        let (out, stats) = bound.execute_with_stats(&expr).unwrap();
        assert!(out.exact.iter().all(|id| *id <= 14));
        assert!(out.exact.contains(&0));
        assert_eq!(stats.universe, 15, "id bounds prune the candidate universe");
        assert_eq!(stats.entries_scanned, 15, "one entry-leaf evaluation per candidate");
    }

    #[test]
    fn bound_engine_matches_batch_api_on_single_leaves() {
        let archive = mixed_archive(24);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        for query in batch() {
            let via_run = engine.run(&archive, std::slice::from_ref(&query)).unwrap().remove(0);
            let via_expr =
                engine.bind(&archive).execute(&QueryExpr::Leaf(query.to_pred())).unwrap();
            assert_eq!(via_run, via_expr, "{query:?}");
        }
    }

    #[test]
    fn wave_matches_one_at_a_time_execution() {
        let archive = mixed_archive(24);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let wave = [
            QueryRequest::saql("peaks = 2 tol 1 and interval = 7 tol 2").with_stats(),
            QueryRequest::saql("shape \"0* 1+ (-1)+ 0* 1+ (-1)+ 0*\" or peaks = 3"),
            QueryRequest::expr(QueryExpr::peak_count(2, 0).and(QueryExpr::id_range(0, 9)))
                .with_explain(),
            QueryRequest::saql("not steepness any >= 1.0 slack 0.2"),
        ];
        let responses = engine.run_requests(&archive.snapshot(), &wave).unwrap();
        assert_eq!(responses.len(), wave.len());
        for (req, resp) in wave.iter().zip(&responses) {
            let resp = resp.as_ref().unwrap();
            let solo = engine.bind(&archive).request(req).unwrap();
            assert_eq!(resp.outcome, solo.outcome, "{req:?}");
            assert_eq!(resp.snapshot, solo.snapshot);
            assert_eq!(resp.explain, solo.explain);
        }
        assert!(responses[0].as_ref().unwrap().stats.is_some());
        assert!(responses[1].as_ref().unwrap().stats.is_none());
        assert!(responses[2].as_ref().unwrap().explain.as_ref().unwrap().contains("And"));
    }

    #[test]
    fn wave_amortizes_fetches_and_dedups_shared_leaves() {
        let n = 24;
        let archive = mixed_archive(n);
        // Capacity below the corpus size: serial one-at-a-time execution
        // thrashes the LRU, a coalesced wave fetches each id once.
        let config = EngineConfig { cache_capacity: n as usize / 4, ..EngineConfig::default() };
        let queries = [
            "steepness all >= 0.2 slack 0.1",
            "peaks = 2 tol 1",
            "steepness any >= 1.0 slack 0.2",
            "steepness all >= 0.2 slack 0.1 and peaks = 2 tol 1",
        ];

        let serial_engine = QueryEngine::new(config).unwrap();
        let before = archive.fetch_count();
        let mut serial_outcomes = Vec::new();
        for q in &queries {
            let resp = serial_engine.bind(&archive).request(&QueryRequest::saql(*q)).unwrap();
            serial_outcomes.push(resp.outcome);
        }
        let serial_fetches = archive.fetch_count() - before;

        let wave_engine = QueryEngine::new(config).unwrap();
        let wave: Vec<QueryRequest> =
            queries.iter().map(|q| QueryRequest::saql(*q).with_stats()).collect();
        let before = archive.fetch_count();
        let responses = wave_engine.run_requests(&archive.snapshot(), &wave).unwrap();
        let wave_fetches = archive.fetch_count() - before;

        for (resp, solo) in responses.iter().zip(&serial_outcomes) {
            assert_eq!(&resp.as_ref().unwrap().outcome, solo);
        }
        assert_eq!(wave_fetches, n, "a wave fetches each sequence exactly once");
        assert!(
            serial_fetches >= 3 * wave_fetches,
            "serial thrashes the small LRU: {serial_fetches} vs {wave_fetches}"
        );
        // Shared leaves across the wave: queries 0 and 3 share one
        // steepness predicate, 1 and 3 one peak-count predicate — 6 plan
        // leaves, 3 distinct slots, each evaluated once over n entries.
        let per_request: Vec<u64> = responses
            .iter()
            .map(|r| r.as_ref().unwrap().stats.as_ref().unwrap().entries_scanned)
            .collect();
        assert_eq!(per_request, vec![n, n, n, 2 * n], "per-leaf counts, shared slots");
    }

    #[test]
    fn wave_isolates_per_request_failures() {
        let archive = mixed_archive(6);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let snapshot = archive.snapshot();
        let current = SnapshotRef::new(snapshot.instance_id(), snapshot.generation());
        let stale = SnapshotRef::new(current.instance, current.generation + 1);
        let wave = [
            QueryRequest::saql("peaks = 2 tol 1"),
            QueryRequest::saql("peaks 2"), // parse error
            QueryRequest::saql("peaks = 2").pinned(stale), // pin mismatch
            QueryRequest::saql("shape \"((\""), // invalid pattern
            QueryRequest::saql("peaks = 3").pinned(current), // matching pin
        ];
        let responses = engine.run_requests(&snapshot, &wave).unwrap();
        assert!(responses[0].is_ok());
        assert_eq!(responses[1].as_ref().unwrap_err().code(), 7, "SAQL parse error");
        assert_eq!(responses[2].as_ref().unwrap_err().code(), 8, "snapshot mismatch");
        assert_eq!(responses[3].as_ref().unwrap_err().code(), 3, "pattern error");
        let pinned = responses[4].as_ref().unwrap();
        assert_eq!(pinned.snapshot, Some(current));
        assert_eq!(
            responses[0].as_ref().unwrap().outcome,
            engine.bind(&archive).execute(&QueryExpr::peak_count(2, 1)).unwrap(),
            "failures elsewhere in the wave don't disturb good requests"
        );
    }

    #[test]
    fn wave_not_and_bounds_respect_each_requests_universe() {
        // The wave's leaves evaluate over the *union* universe; a `Not`
        // (or an unconstrained leaf) of a narrower request must still see
        // only that request's ids.
        let archive = mixed_archive(20);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let narrow =
            QueryRequest::expr(QueryExpr::peak_count(2, 0).negate().and(QueryExpr::id_range(5, 9)));
        let wide = QueryRequest::saql("peaks = 2 tol 1");
        let responses = engine.run_requests(&archive.snapshot(), &[narrow.clone(), wide]).unwrap();
        let in_wave = responses[0].as_ref().unwrap();
        let solo = engine.bind(&archive).request(&narrow).unwrap();
        assert_eq!(in_wave.outcome, solo.outcome);
        assert!(in_wave.outcome.all_ids().iter().all(|id| (5..=9).contains(id)));
    }

    #[test]
    fn batch_shims_stay_byte_identical_to_the_unified_path() {
        let archive = mixed_archive(18);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let snapshot = archive.snapshot();
        let via_run = engine.run(&archive, &batch()).unwrap();
        let via_run_snapshot = engine.run_snapshot(&snapshot, &batch()).unwrap();
        let via_requests: Vec<QueryOutcome> = engine
            .run_requests(
                &snapshot,
                &batch()
                    .iter()
                    .map(|q| QueryRequest::expr(QueryExpr::Leaf(q.to_pred())))
                    .collect::<Vec<_>>(),
            )
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap().outcome)
            .collect();
        assert_eq!(via_run, via_requests);
        assert_eq!(via_run_snapshot, via_requests);
    }

    #[test]
    fn per_worker_clocks_show_overlap() {
        let archive = mixed_archive(32);
        // Memory fetches cost ~nothing simulated and finish instantly, so
        // one worker would drain every shard before the rest spawn. Use the
        // disk cost model with real blocking (~0.8 ms per fetch) so the
        // pool genuinely interleaves and the per-worker clocks spread.
        let mut disk = ArchiveStore::new(Medium::local_disk());
        for id in archive.ids() {
            disk.put(id, archive.get(id).unwrap().as_ref().clone());
        }
        disk.set_realtime_scale(0.1);
        let engine =
            QueryEngine::new(EngineConfig { workers: 4, shards: 8, ..EngineConfig::default() })
                .unwrap();
        engine.run(&disk, &batch()).unwrap();
        let report = engine.last_run_report();
        assert_eq!(report.workers(), 4);
        let total = report.sim_total_seconds();
        let makespan = report.sim_makespan_seconds();
        assert!(total > 0.0);
        assert!(makespan > 0.0 && makespan < total, "workers overlap: {report:?}");
        assert!((total - disk.elapsed_seconds()).abs() < 1e-9, "clocks account every fetch");
        assert!(report.sim_speedup() > 1.5, "4 workers should overlap: {report:?}");
    }

    #[test]
    fn subscription_pump_prunes_by_dirty_ids() {
        let mut archive = mixed_archive(6);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let mut reg = SubscriptionRegistry::new();
        // Goalposts sit at ids 0 and 3 in the mixed archive.
        let watched = reg.register_saql("peaks = 2 and id in [0..0]").unwrap();
        let baseline = archive.generation();
        let deltas = engine.pump_subscriptions(&archive.snapshot(), &mut reg, baseline).unwrap();
        assert_eq!(deltas.len(), 1, "baseline pump reports the starting membership");
        assert_eq!(reg.current(watched), Some(&[0][..]));

        // A wave touching only unrelated ids: the id-bounds prune means
        // no subscription executes at all.
        let pumped = archive.generation();
        archive.put(5, random_walk(64, 0.0, 0.2, 99));
        let evaluated = reg.counters().evaluated;
        let deltas = engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        assert!(deltas.is_empty());
        assert_eq!(reg.counters().evaluated, evaluated, "dirty id 5 is outside [0..0]");
        assert_eq!(reg.counters().skipped_id_bounds, 1);

        // Overwriting the watched id re-evaluates and emits the exit.
        let pumped = archive.generation();
        archive.put(0, random_walk(64, 0.0, 0.2, 98));
        let deltas = engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        assert_eq!(deltas, vec![(watched, Delta { entered: vec![], left: vec![0] })]);
    }

    #[test]
    fn subscription_pump_treats_wildcards_as_reevaluate_everything() {
        let mut archive = mixed_archive(3);
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let mut reg = SubscriptionRegistry::new();
        let watched = reg.register_saql("peaks = 2").unwrap();
        let pumped = archive.generation();
        engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        let members = reg.current(watched).unwrap().to_vec();
        assert!(!members.is_empty());

        // An id-less whole-archive mutation: `changed_since` answers
        // `None`, and the pump must re-evaluate rather than skip.
        let pumped = archive.generation();
        archive.remove(members[0]);
        archive.mark_all_changed();
        assert_eq!(archive.changed_since(pumped), None, "wildcard precondition");
        let deltas = engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        assert_eq!(deltas.len(), 1, "wildcard wave must not freeze the subscription");
        assert_eq!(deltas[0].1.left, vec![members[0]]);
    }

    #[test]
    fn subscription_pump_sees_appended_points() {
        let mut archive = ArchiveStore::new(Medium::memory());
        let full = goalpost(GoalpostSpec::default());
        let (head, tail) = full.points().split_at(full.len() / 2);
        archive.put(1, Sequence::new(head.to_vec()).unwrap());
        let engine = QueryEngine::new(EngineConfig::default()).unwrap();
        let mut reg = SubscriptionRegistry::new();
        let watched = reg.register_saql("peaks = 2").unwrap();
        let pumped = archive.generation();
        engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        let before = reg.current(watched).unwrap().to_vec();

        // Streaming in the second half completes the second goalpost; the
        // append wave is exactly-tracked, so the pump sees `[1]` dirty.
        let pumped = archive.generation();
        archive.append_points(1, tail);
        let deltas = engine.pump_subscriptions(&archive.snapshot(), &mut reg, pumped).unwrap();
        assert_eq!(reg.current(watched), Some(&[1][..]));
        if before.is_empty() {
            assert_eq!(deltas, vec![(watched, Delta { entered: vec![1], left: vec![] })]);
        }
    }
}
