//! # saq-archive
//!
//! A simulated archival-storage substrate for the paper's §1 motivation:
//! "often this data is archived off-line on very slow storage media (e.g.
//! magnetic tape) in a remote central site... obtaining raw seismic data can
//! take several days. Since the exact data points are not necessarily of
//! interest, we can store instead an approximate representation that is much
//! more compact, thus can be stored locally."
//!
//! Nothing here sleeps: media are *cost models* and accesses accrue
//! simulated seconds, so experiments measure the latency shape (local
//! representation ≪ remote raw) deterministically. This substitutes for the
//! remote tape archive the paper's scientists fought with (DESIGN.md,
//! substitution 2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durability;
mod engine;
mod medium;
mod store;

pub use durability::{compute_doc, decode_sequence, encode_sequence, ColdDocs, DurabilityConfig};
pub use engine::ArchiveScanEngine;
pub use medium::{AccessCost, Medium};
pub use store::{ArchiveSnapshot, ArchiveSnapshotProbe, ArchiveStore, TieredStore};
