//! The archive's durability bridge: payload codecs, the handle tying an
//! [`ArchiveStore`] to its [`DurableStore`], and
//! the staleness-aware cold-document pager.
//!
//! The durable layer stores opaque bytes; this module owns the two
//! encodings the archive commits to disk — raw sequences as WAL/segment
//! payloads ([`encode_sequence`]/[`decode_sequence`]) and precomputed
//! index documents ([`compute_doc`]) — plus [`ColdDocs`], the
//! [`DocPager`] that serves those documents back after a restart while
//! refusing any id mutated since they were computed.
//!
//! # Why refusal is always sound
//!
//! A document is exact for id `i` at the compaction base generation
//! `B`. [`ColdDocs`] marks `i` dirty on *every* later mutation of `i`
//! (and poisons itself entirely on a wildcard), so it serves `i` only
//! while the entry a query would compute from is byte-identical to the
//! one the document was derived from. The dirty set only ever grows
//! within one compaction era, and it is shared by *all* snapshots
//! holding this pager: a snapshot pinned at generation `G ≥ B` may see
//! ids marked dirty by mutations *after* `G` and refuse them
//! needlessly — costing a recompute from its pinned sequence, never a
//! wrong answer.

use crate::ArchiveStore;
use parking_lot::{Mutex, RwLock};
use saq_core::{Error, Result, StoreConfig, StoredEntry};
use saq_durable::codec::{self, Cursor};
use saq_durable::store::DocsReader;
use saq_durable::{DurableStore, SegmentReader, WalOp};
use saq_index::cold::{DocPager, OwnedDoc};
use saq_sequence::{Point, Sequence};
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How an [`ArchiveStore`] persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Auto-compact once this many WAL records accumulate (0 = only
    /// compact when [`ArchiveStore::compact`](crate::ArchiveStore::compact)
    /// is called explicitly).
    pub compact_after: u64,
    /// When set, compaction also persists precomputed index documents
    /// under this representation configuration, so reopening serves
    /// index-only queries without recomputing every entry. Use the same
    /// configuration the query engine ingests with.
    pub index_docs: Option<StoreConfig>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { compact_after: 1024, index_docs: Some(StoreConfig::default()) }
    }
}

/// The durable half of an archive: the open store, its configuration,
/// and the current cold-document pager. Lives behind the one mutex that
/// serializes WAL appends with compactions; the locking order is always
/// durable-handle first, then the archive state lock.
pub(crate) struct DurableHandle {
    pub(crate) store: Mutex<DurableStore>,
    pub(crate) config: DurabilityConfig,
    pub(crate) cold: RwLock<Option<Arc<ColdDocs>>>,
}

impl fmt::Debug for DurableHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableHandle").field("config", &self.config).finish_non_exhaustive()
    }
}

impl DurableHandle {
    /// Marks an id dirty (or poisons everything for a wildcard) in the
    /// current cold pager, if any.
    pub(crate) fn mark(&self, id: Option<u64>) {
        if let Some(cold) = self.cold.read().as_ref() {
            cold.mark(id);
        }
    }
}

// --- payload codecs ---------------------------------------------------

/// Encodes a raw sequence as a WAL/segment payload: point count, then
/// `(t, v)` IEEE-754 pairs.
pub fn encode_sequence(seq: &Sequence) -> Vec<u8> {
    let points = seq.points();
    let mut out = Vec::with_capacity(4 + points.len() * 16);
    codec::put_u32(&mut out, points.len() as u32);
    for p in points {
        codec::put_f64(&mut out, p.t);
        codec::put_f64(&mut out, p.v);
    }
    out
}

/// Decodes [`encode_sequence`] output back into a sequence.
pub fn decode_sequence(bytes: &[u8]) -> saq_durable::Result<Sequence> {
    let mut c = Cursor::new(bytes, "sequence payload");
    let count = c.get_u32()? as usize;
    let mut points = Vec::with_capacity(count.min(bytes.len() / 16 + 1));
    for _ in 0..count {
        let t = c.get_f64()?;
        let v = c.get_f64()?;
        points.push(Point::new(t, v));
    }
    c.finish()?;
    Sequence::new(points)
        .map_err(|e| saq_durable::Error::corrupt(format!("sequence payload rejected: {e}")))
}

/// Builds the WAL op for a mutation: puts carry the encoded sequence.
pub(crate) fn wal_op(id: Option<u64>, seq: Option<&Sequence>) -> WalOp {
    match (id, seq) {
        (Some(id), Some(seq)) => WalOp::Put { id, payload: encode_sequence(seq) },
        (Some(id), None) => WalOp::Remove { id },
        (None, _) => WalOp::Wildcard,
    }
}

/// Builds the WAL op for an append wave: the payload carries only the
/// *delta* points, in the same [`encode_sequence`] framing as puts.
/// Replay folds deltas into their entry through [`merge_append`].
pub(crate) fn wal_append_op(id: u64, delta: &Sequence) -> WalOp {
    WalOp::Append { id, payload: encode_sequence(delta) }
}

/// The archive's [`saq_durable::AppendMerge`]: folds an append-delta
/// payload into the prior entry payload during WAL replay. Decoding both
/// sides re-validates what the live path validated before logging — a
/// delta whose first timestamp doesn't extend the prior sequence is
/// corruption, not data.
pub(crate) fn merge_append(prior: Option<&[u8]>, delta: &[u8]) -> saq_durable::Result<Vec<u8>> {
    let delta_seq = decode_sequence(delta)?;
    match prior {
        // The append created the entry: the delta is the whole payload.
        None => Ok(delta.to_vec()),
        Some(prior) => {
            let merged = decode_sequence(prior)?.concat(&delta_seq).map_err(|e| {
                saq_durable::Error::corrupt(format!("append payload rejected: {e}"))
            })?;
            Ok(encode_sequence(&merged))
        }
    }
}

/// Runs the ingestion pipeline for one sequence and captures the index
/// document the engine would derive from it.
pub fn compute_doc(seq: &Sequence, config: &StoreConfig) -> Result<OwnedDoc> {
    let entry = StoredEntry::compute(seq, config)?;
    Ok(OwnedDoc {
        interval_buckets: entry.peaks.interval_buckets(),
        peak_count: entry.peaks.len(),
        symbols: entry.symbols,
    })
}

/// Maps a durable-layer failure into the stack-wide error type.
pub fn storage_error(e: saq_durable::Error) -> Error {
    Error::from(e)
}

// --- the cold pager ---------------------------------------------------

/// A [`DocPager`] over the index documents persisted by the last
/// compaction, refusing ids mutated since (see the module docs for the
/// soundness argument).
pub struct ColdDocs {
    reader: SegmentReader,
    epsilon_bits: u64,
    theta_bits: u64,
    breaker_tag: u64,
    base_generation: u64,
    dirty: RwLock<HashSet<u64>>,
    poisoned: AtomicBool,
}

impl fmt::Debug for ColdDocs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColdDocs")
            .field("base_generation", &self.base_generation)
            .field("dirty", &self.dirty.read().len())
            .field("poisoned", &self.poisoned.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ColdDocs {
    pub(crate) fn new(pager: DocsReader) -> ColdDocs {
        ColdDocs {
            reader: pager.reader,
            epsilon_bits: pager.epsilon_bits,
            theta_bits: pager.theta_bits,
            breaker_tag: pager.breaker_tag,
            base_generation: pager.base_generation,
            dirty: RwLock::new(HashSet::new()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks `id` dirty; `None` (a wildcard mutation) poisons the whole
    /// pager — every future request is refused.
    pub(crate) fn mark(&self, id: Option<u64>) {
        match id {
            Some(id) => {
                self.dirty.write().insert(id);
            }
            None => self.poisoned.store(true, Ordering::Release),
        }
    }

    /// Whether these documents were computed under the same
    /// representation parameters (bit-exact ε and θ, and the same
    /// breaking algorithm — the two breakers produce different valid
    /// segmentations, so documents from one must never serve the other)
    /// as `config`.
    pub fn matches_config(&self, config: &StoreConfig) -> bool {
        self.epsilon_bits == config.epsilon.to_bits()
            && self.theta_bits == config.theta.to_bits()
            && self.breaker_tag == config.breaker.tag()
    }

    /// The generation the documents are exact at.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Documents currently refused because their id mutated after the
    /// compaction that wrote them.
    pub fn dirty_count(&self) -> usize {
        self.dirty.read().len()
    }

    /// Segment pages fetched so far — cold-open experiments use this to
    /// show queries page in O(needed), not O(archive).
    pub fn pages_read(&self) -> u64 {
        self.reader.pages_read()
    }
}

impl DocPager for ColdDocs {
    fn doc(&self, id: u64) -> Option<OwnedDoc> {
        if self.poisoned.load(Ordering::Acquire) || self.dirty.read().contains(&id) {
            return None;
        }
        let bytes = self.reader.get(id).ok()??;
        OwnedDoc::decode(&bytes).ok()
    }

    fn ids(&self) -> Vec<u64> {
        if self.poisoned.load(Ordering::Acquire) {
            return Vec::new();
        }
        let dirty = self.dirty.read();
        match self.reader.keys() {
            Ok(keys) => keys.into_iter().filter(|id| !dirty.contains(id)).collect(),
            Err(_) => Vec::new(),
        }
    }
}

/// Seeds a fresh [`ColdDocs`] from recovery: ids mutated between the
/// docs' base generation and the recovered head start out dirty, and a
/// replayed wildcard poisons the pager, exactly as if the mutations had
/// happened live.
pub(crate) fn seed_cold(pager: DocsReader, mutations: &[(u64, Option<u64>)]) -> ColdDocs {
    let base = pager.base_generation;
    let cold = ColdDocs::new(pager);
    for (generation, id) in mutations {
        if *generation > base {
            cold.mark(*id);
        }
    }
    cold
}

/// `(id, encoded bytes)` rows bound for one segment.
pub(crate) type SegmentRows = Vec<(u64, Vec<u8>)>;

/// Builds the compaction inputs for `entries` visible in a state:
/// encoded sequences sorted by id, plus (when configured) their encoded
/// index documents. A sequence the ingestion pipeline rejects simply
/// gets no document — it will be recomputed (and rejected) at query
/// time, same as today.
pub(crate) fn compaction_payload(
    ids: &[u64],
    get: impl Fn(u64) -> Option<Arc<Sequence>>,
    docs_config: Option<&StoreConfig>,
) -> (SegmentRows, Option<SegmentRows>) {
    let mut entries = Vec::with_capacity(ids.len());
    let mut docs = docs_config.map(|_| Vec::with_capacity(ids.len()));
    for &id in ids {
        let Some(seq) = get(id) else { continue };
        entries.push((id, encode_sequence(&seq)));
        if let (Some(docs), Some(config)) = (docs.as_mut(), docs_config) {
            if let Ok(doc) = compute_doc(&seq, config) {
                docs.push((id, doc.encode()));
            }
        }
    }
    (entries, docs)
}

/// Convenience re-export: opens a directory-backed archive. See
/// [`ArchiveStore::open`].
pub fn open_dir(
    path: impl Into<std::path::PathBuf>,
    medium: crate::Medium,
    config: DurabilityConfig,
) -> Result<ArchiveStore> {
    let backend = saq_durable::FileBackend::open(path.into()).map_err(storage_error)?;
    ArchiveStore::open_backend(Arc::new(backend), medium, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    #[test]
    fn sequence_payload_round_trips_bit_exactly() {
        let seq = goalpost(GoalpostSpec { seed: 3, noise: 0.2, ..GoalpostSpec::default() });
        let decoded = decode_sequence(&encode_sequence(&seq)).unwrap();
        assert_eq!(seq.points(), decoded.points());
        // Corruption surfaces as errors, not empty sequences.
        let mut bytes = encode_sequence(&seq);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_sequence(&bytes).is_err());
        assert!(decode_sequence(&[9, 9, 9]).is_err());
    }

    #[test]
    fn computed_docs_match_the_ingestion_pipeline() {
        let seq = goalpost(GoalpostSpec { seed: 9, ..GoalpostSpec::default() });
        let config = StoreConfig::default();
        let doc = compute_doc(&seq, &config).unwrap();
        let entry = StoredEntry::compute(&seq, &config).unwrap();
        assert_eq!(doc.symbols, entry.symbols);
        assert_eq!(doc.interval_buckets, entry.peaks.interval_buckets());
        assert_eq!(doc.peak_count, entry.peaks.len());
        let roundtrip = OwnedDoc::decode(&doc.encode()).unwrap();
        assert_eq!(roundtrip, doc);
    }
}
