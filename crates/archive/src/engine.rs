//! The sequential [`QueryEngine`] over a raw [`ArchiveStore`].
//!
//! This is the "application program scans the archive" baseline of §1,
//! lifted onto the query algebra: every needed sequence is fetched from
//! the (simulated slow) medium, broken and represented on the fly, and the
//! shared plan executor composes the per-leaf results. No index structures
//! exist over raw archives, so every entry leaf takes the scan path; only
//! id-range leaves are index-grade. For the sharded parallel counterpart
//! see `saq_engine::QueryEngine::bind`.

use crate::store::{ArchiveSnapshot, ArchiveStore};
use saq_core::algebra::{
    execute_plan, AccessPath, ExecStats, IndexCaps, LeafSource, MatchSet, MatchTier, Planner, Pred,
    PreparedPred, QueryEngine, QueryExpr,
};
use saq_core::request::{QueryRequest, QueryResponse, SnapshotRef};
use saq_core::store::{StoreConfig, StoredEntry};
use saq_core::{Error, QueryOutcome, Result};
use std::collections::HashMap;
use std::rc::Rc;

/// A sequential query engine over a raw archive: fetch → break →
/// represent per sequence (memoized within one execution), with the
/// algebra's composition semantics on top.
///
/// ```
/// use saq_archive::{ArchiveScanEngine, ArchiveStore, Medium};
/// use saq_core::algebra::{QueryEngine, QueryExpr};
/// use saq_core::store::StoreConfig;
/// use saq_sequence::generators::{goalpost, GoalpostSpec};
///
/// let mut archive = ArchiveStore::new(Medium::memory());
/// archive.put(7, goalpost(GoalpostSpec::default()));
/// let engine = ArchiveScanEngine::new(&archive, StoreConfig::default());
/// let out = engine.execute(&QueryExpr::peak_count(2, 0)).unwrap();
/// assert_eq!(out.exact, vec![7]);
/// ```
#[derive(Debug)]
pub struct ArchiveScanEngine<'a> {
    target: ScanTarget<'a>,
    config: StoreConfig,
}

/// What an execution reads: a live archive (each run captures a fresh
/// snapshot) or one pinned generation (every run reads the same state).
#[derive(Debug)]
enum ScanTarget<'a> {
    Live(&'a ArchiveStore),
    Pinned(ArchiveSnapshot),
}

impl<'a> ArchiveScanEngine<'a> {
    /// An engine over `archive`, representing sequences with the given
    /// ingestion parameters (raw retention is forced on — value-band
    /// leaves need the raw samples). Each execution captures a snapshot up
    /// front and runs entirely against it, so a query racing a writer sees
    /// one consistent generation.
    pub fn new(archive: &'a ArchiveStore, config: StoreConfig) -> ArchiveScanEngine<'a> {
        ArchiveScanEngine {
            target: ScanTarget::Live(archive),
            config: StoreConfig { keep_raw: true, ..config },
        }
    }

    /// An engine pinned to one [`ArchiveSnapshot`]: every execution reads
    /// that generation, no matter how far the live archive has moved on.
    pub fn pinned(snapshot: ArchiveSnapshot, config: StoreConfig) -> ArchiveScanEngine<'static> {
        ArchiveScanEngine {
            target: ScanTarget::Pinned(snapshot),
            config: StoreConfig { keep_raw: true, ..config },
        }
    }
}

impl ArchiveScanEngine<'_> {
    fn capture(&self) -> ArchiveSnapshot {
        match &self.target {
            ScanTarget::Live(archive) => archive.snapshot(),
            ScanTarget::Pinned(snapshot) => snapshot.clone(),
        }
    }
}

impl QueryEngine for ArchiveScanEngine<'_> {
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let snap = self.capture();
        let plan = Planner::new(IndexCaps::none()).plan(expr)?;
        let mut source = ScanSource { snap: &snap, config: self.config, entries: HashMap::new() };
        execute_plan(&plan, &mut source)
    }

    /// One snapshot, captured before the pin check, serves planning,
    /// explain, and every fetch of the request.
    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        let snap = self.capture();
        let current = SnapshotRef::new(snap.instance_id(), snap.generation());
        req.verify_pin(Some(current))?;
        let expr = req.resolve()?;
        let plan = Planner::new(IndexCaps::none()).plan(&expr)?;
        let explain = req.want_explain.then(|| plan.explain());
        let mut source = ScanSource { snap: &snap, config: self.config, entries: HashMap::new() };
        let (outcome, stats) = execute_plan(&plan, &mut source)?;
        Ok(QueryResponse {
            outcome,
            stats: req.want_stats.then_some(stats),
            explain,
            snapshot: Some(current),
        })
    }

    /// No index structures exist over a raw archive, so the rendering
    /// shows every entry leaf on the scan path.
    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        Ok(Planner::new(IndexCaps::none()).plan(expr)?.explain())
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        let snap = self.capture();
        Some(SnapshotRef::new(snap.instance_id(), snap.generation()))
    }
}

/// Leaf evaluation by scanning one pinned archive generation, memoizing
/// each sequence's computed entry so a multi-leaf expression fetches and
/// represents it once.
struct ScanSource<'a> {
    snap: &'a ArchiveSnapshot,
    config: StoreConfig,
    entries: HashMap<u64, Rc<StoredEntry>>,
}

impl ScanSource<'_> {
    fn entry(&mut self, id: u64) -> Result<Rc<StoredEntry>> {
        if let Some(entry) = self.entries.get(&id) {
            return Ok(entry.clone());
        }
        let (seq, _cost) = self.snap.fetch(id).ok_or(Error::UnknownSequence { id })?;
        let entry = Rc::new(StoredEntry::compute(seq, &self.config)?);
        self.entries.insert(id, entry.clone());
        Ok(entry)
    }
}

impl LeafSource for ScanSource<'_> {
    fn universe(&mut self) -> Result<Vec<u64>> {
        Ok(self.snap.ids().to_vec())
    }

    fn eval_leaf(
        &mut self,
        _ix: usize,
        pred: &PreparedPred,
        path: AccessPath,
        candidates: Option<&[u64]>,
        stats: &mut ExecStats,
    ) -> Result<MatchSet> {
        let ids = match candidates {
            Some(c) => c.to_vec(),
            None => self.snap.ids().to_vec(),
        };
        if path == AccessPath::IdFilter {
            stats.index_leaves += 1;
            let Pred::IdRange { lo, hi } = *pred.pred() else {
                return Err(Error::BadConfig("id-filter path on a non-id-range leaf".into()));
            };
            return Ok(MatchSet::from_exact(ids.into_iter().filter(|id| (lo..=hi).contains(id))));
        }
        stats.scan_leaves += 1;
        let mut set = MatchSet::new();
        for id in ids {
            let entry = self.entry(id)?;
            stats.entries_scanned += 1;
            if let Some(m) = pred.matches(id, Some(&entry)) {
                set.insert(id, MatchTier::from_match(m));
            }
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;
    use saq_core::store::SequenceStore;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn corpus() -> (SequenceStore, ArchiveStore) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut archive = ArchiveStore::new(Medium::memory());
        for seq in [
            peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }),
            goalpost(GoalpostSpec::default()),
            peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() }),
        ] {
            let id = store.insert(&seq).unwrap();
            archive.put(id, seq);
        }
        (store, archive)
    }

    #[test]
    fn agrees_with_the_store_engine() {
        let (store, archive) = corpus();
        let exprs = [
            QueryExpr::peak_count(2, 1).and(QueryExpr::peak_interval(8, 2)),
            QueryExpr::shape("0* 1+ (-1)+ 0* 1+ (-1)+ 0*").or(QueryExpr::peak_count(1, 0)),
            QueryExpr::peak_count(2, 1).negate(),
            QueryExpr::peak_count(2, 1).top_k(2),
        ];
        let store_engine = saq_core::algebra::StoreEngine::new(&store);
        let scan = ArchiveScanEngine::new(&archive, StoreConfig::default());
        for expr in exprs {
            assert_eq!(
                scan.execute(&expr).unwrap(),
                store_engine.execute(&expr).unwrap(),
                "{expr:?}"
            );
        }
    }

    #[test]
    fn memoizes_fetches_across_leaves() {
        let (_, archive) = corpus();
        archive.reset_clock();
        let scan = ArchiveScanEngine::new(&archive, StoreConfig::default());
        // Three scan leaves over three sequences: each sequence is fetched
        // once, not once per leaf.
        let expr = QueryExpr::peak_count(2, 1)
            .and(QueryExpr::min_steepness(0.1, 0.0))
            .and(QueryExpr::has_steep_peak(0.1, 0.0));
        let (_, stats) = scan.execute_with_stats(&expr).unwrap();
        assert!(stats.entries_scanned >= 3, "{stats:?}");
        let cost_once = {
            archive.reset_clock();
            for id in archive.ids() {
                archive.fetch(id).unwrap();
            }
            archive.elapsed_seconds()
        };
        archive.reset_clock();
        scan.execute(&expr).unwrap();
        assert!((archive.elapsed_seconds() - cost_once).abs() < 1e-9);
    }

    #[test]
    fn id_range_prunes_fetches() {
        let (_, archive) = corpus();
        let scan = ArchiveScanEngine::new(&archive, StoreConfig::default());
        archive.reset_clock();
        let expr = QueryExpr::id_range(1, 1).and(QueryExpr::peak_count(1, 0));
        let (out, stats) = scan.execute_with_stats(&expr).unwrap();
        assert_eq!(out.exact, vec![1]);
        assert_eq!(stats.entries_scanned, 1, "only the id-range survivor is fetched");
    }
}
