//! Archive and tiered stores with simulated access accounting.

use crate::medium::{AccessCost, Medium};
use parking_lot::Mutex;
use saq_core::{QueryOutcome, QuerySpec, Result, SequenceStore, StoreConfig};
use saq_sequence::Sequence;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes per raw sample: a timestamp and a value, both `f64`.
const BYTES_PER_POINT: u64 = 16;

/// Bytes per stored representation parameter.
const BYTES_PER_PARAM: u64 = 8;

/// How many mutations the dirty-id log retains. Older deltas are forgotten
/// and [`ArchiveStore::changed_since`] answers `None` (callers fall back
/// to full invalidation), so the log stays O(1) memory per archive.
const MUTATION_LOG_CAP: usize = 4096;

/// Raw sequences living on a (simulated) slow medium. Every fetch accrues
/// simulated latency.
#[derive(Debug)]
pub struct ArchiveStore {
    medium: Medium,
    sequences: HashMap<u64, Sequence>,
    elapsed: Mutex<f64>,
    /// Real seconds slept per simulated second on each fetch (0 = never
    /// sleep). See [`ArchiveStore::set_realtime_scale`].
    realtime_scale: f64,
    /// Process-unique identity of this archive instance.
    instance: u64,
    /// Bumped on every content mutation; see [`ArchiveStore::generation`].
    generation: u64,
    /// Recent mutations as `(generation, id)`; `None` ids are wildcard
    /// entries ("anything may have changed"). Drives
    /// [`ArchiveStore::changed_since`].
    mutation_log: VecDeque<(u64, Option<u64>)>,
    /// Number of [`ArchiveStore::fetch`] calls that found their sequence.
    fetches: AtomicU64,
}

/// Source of process-unique [`ArchiveStore::instance_id`]s.
static NEXT_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl ArchiveStore {
    /// An empty archive on the given medium.
    pub fn new(medium: Medium) -> ArchiveStore {
        ArchiveStore {
            medium,
            sequences: HashMap::new(),
            elapsed: Mutex::new(0.0),
            realtime_scale: 0.0,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            generation: 0,
            mutation_log: VecDeque::new(),
            fetches: AtomicU64::new(0),
        }
    }

    /// A process-unique identifier of this archive instance. Together with
    /// [`ArchiveStore::generation`] it forms a staleness stamp: caches
    /// keyed by sequence id (like the batch engine's feature cache) store
    /// the `(instance_id, generation)` pair they were filled under and
    /// self-invalidate when either part changes.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// A counter bumped by every content mutation ([`ArchiveStore::put`],
    /// and conservatively [`TieredStore::archive_mut`]). Equal generation
    /// ⇒ unchanged content, so derived per-sequence state is still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Makes fetches *really* block for `scale` wall-clock seconds per
    /// simulated second (0, the default, never sleeps). Concurrent fetches
    /// block independently, so overlapping them — as the sharded batch
    /// engine does — hides archive latency the way overlapping real tape or
    /// jukebox requests would. Experiments use small scales (e.g. `1e-4`)
    /// to keep runs short while preserving the latency shape.
    pub fn set_realtime_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "realtime scale must be finite and >= 0");
        self.realtime_scale = scale;
    }

    /// The configured wall-clock seconds per simulated second.
    pub fn realtime_scale(&self) -> f64 {
        self.realtime_scale
    }

    /// Archives a raw sequence (writing is done off the query path and not
    /// accounted). Replaces silently; the generation counter and the
    /// mutation log record that this id changed, so id-keyed caches can
    /// self-invalidate — incrementally, via
    /// [`ArchiveStore::changed_since`].
    pub fn put(&mut self, id: u64, seq: Sequence) {
        self.record_mutation(Some(id));
        self.sequences.insert(id, seq);
    }

    /// Marks the whole archive as potentially changed (a wildcard
    /// mutation): the generation bumps and every generation delta crossing
    /// this point reports "unknown" so caches fall back to full
    /// invalidation. Used when mutable access is handed out without
    /// tracking what it touched.
    pub fn mark_all_changed(&mut self) {
        self.record_mutation(None);
    }

    /// Appends one mutation to the bounded log, bumping the generation.
    fn record_mutation(&mut self, id: Option<u64>) {
        self.generation += 1;
        if self.mutation_log.len() == MUTATION_LOG_CAP {
            self.mutation_log.pop_front();
        }
        self.mutation_log.push_back((self.generation, id));
    }

    /// The ids mutated after `generation` (deduplicated, ascending), or
    /// `None` when the delta is unknown — the generation lies outside the
    /// retained log, is from the future, or a wildcard mutation
    /// ([`ArchiveStore::mark_all_changed`]) happened in between. `None`
    /// means "assume everything changed".
    ///
    /// This is the incremental-maintenance contract behind the batch
    /// engine's dirty-id cache invalidation: a cache stamped with an older
    /// generation re-fetches exactly these ids instead of dropping
    /// everything.
    pub fn changed_since(&self, generation: u64) -> Option<Vec<u64>> {
        if generation > self.generation {
            return None;
        }
        if generation == self.generation {
            return Some(Vec::new());
        }
        // The log must reach back to the first mutation after `generation`.
        if self.mutation_log.front().is_none_or(|&(g, _)| g > generation + 1) {
            return None;
        }
        let mut ids = Vec::new();
        for &(g, id) in &self.mutation_log {
            if g > generation {
                ids.push(id?);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }

    /// Number of successful fetches so far (incremental-mode experiments
    /// assert re-runs touch only dirty ids through this counter).
    pub fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Number of archived sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// All archived ids, sorted — the canonical enumeration order that the
    /// batch engine's shard partitioning relies on.
    pub fn ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.sequences.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Direct access to an archived sequence *without* touching the
    /// simulated medium — for tests and introspection only. Query paths
    /// (including the batch engine) must go through
    /// [`ArchiveStore::fetch`] so access costs are accounted.
    pub fn get(&self, id: u64) -> Option<&Sequence> {
        self.sequences.get(&id)
    }

    /// Fetches a raw sequence, accruing simulated seek + transfer time (and
    /// really sleeping when a realtime scale is configured).
    pub fn fetch(&self, id: u64) -> Option<(&Sequence, AccessCost)> {
        let seq = self.sequences.get(&id)?;
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let cost = self.medium.access(seq.len() as u64 * BYTES_PER_POINT);
        *self.elapsed.lock() += cost.total();
        if self.realtime_scale > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                cost.total() * self.realtime_scale,
            ));
        }
        Some((seq, cost))
    }

    /// Total simulated seconds accrued by fetches so far.
    pub fn elapsed_seconds(&self) -> f64 {
        *self.elapsed.lock()
    }

    /// Resets the simulated clock.
    pub fn reset_clock(&self) {
        *self.elapsed.lock() = 0.0;
    }
}

/// The paper's recommended architecture: compact representations on fast
/// local storage, raw data archived remotely. Queries run locally; only a
/// drill-down to raw data pays the archival price.
#[derive(Debug)]
pub struct TieredStore {
    local: SequenceStore,
    local_medium: Medium,
    archive: ArchiveStore,
}

impl TieredStore {
    /// Builds a tiered store; representations live on `local_medium`, raw
    /// data on `archive_medium`.
    pub fn new(
        config: StoreConfig,
        local_medium: Medium,
        archive_medium: Medium,
    ) -> Result<TieredStore> {
        // The local tier never needs the raw copies.
        let local = SequenceStore::new(StoreConfig { keep_raw: false, ..config })?;
        Ok(TieredStore { local, local_medium, archive: ArchiveStore::new(archive_medium) })
    }

    /// Ingests a sequence into both tiers.
    pub fn insert(&mut self, seq: &Sequence) -> Result<u64> {
        let id = self.local.insert(seq)?;
        self.archive.put(id, seq.clone());
        Ok(id)
    }

    /// The local representation store.
    pub fn local(&self) -> &SequenceStore {
        &self.local
    }

    /// The raw archive.
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// Mutable access to the raw archive (e.g. to configure realtime
    /// latency emulation before a batch run). Conservatively records a
    /// wildcard mutation — the borrow allows arbitrary changes, so
    /// id-keyed caches must assume any content may have changed (their
    /// incremental dirty-id path reports "unknown" across this point).
    pub fn archive_mut(&mut self) -> &mut ArchiveStore {
        self.archive.mark_all_changed();
        &mut self.archive
    }

    /// Answers a generalized approximate query from local representations,
    /// returning the outcome and the simulated local read cost (reading
    /// every representation's parameters once).
    pub fn query_local(&self, query: &QuerySpec) -> Result<(QueryOutcome, f64)> {
        let outcome = saq_core::query::evaluate(&self.local, query)?;
        let report = self.local.total_compression();
        let bytes = report.parameters as u64 * BYTES_PER_PARAM;
        let cost = self.local_medium.access(bytes).total();
        Ok((outcome, cost))
    }

    /// The pre-representation workflow of §1: fetch every raw sequence from
    /// the archive (one access each) so an application program can scan
    /// them. Returns the simulated cost.
    pub fn full_archive_scan_cost(&self) -> f64 {
        self.archive.reset_clock();
        let ids: Vec<u64> = self.local.ids();
        for id in ids {
            let _ = self.archive.fetch(id);
        }
        self.archive.elapsed_seconds()
    }

    /// Drill-down: fetch the raw sequences behind `ids` (e.g. the query's
    /// exact matches) for fine-resolution inspection; returns the cost.
    pub fn drill_down_cost(&self, ids: &[u64]) -> f64 {
        self.archive.reset_clock();
        for &id in ids {
            let _ = self.archive.fetch(id);
        }
        self.archive.elapsed_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn corpus() -> Vec<Sequence> {
        let mut out = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                out.push(goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() }));
            } else {
                out.push(peaks(PeaksSpec {
                    centers: vec![6.0, 12.0, 18.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }));
            }
        }
        out
    }

    #[test]
    fn archive_accounts_latency() {
        let mut a = ArchiveStore::new(Medium::remote_tape());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.len(), 1);
        assert_eq!(a.elapsed_seconds(), 0.0);
        let (seq, cost) = a.fetch(1).unwrap();
        assert_eq!(seq.len(), 49);
        assert!(cost.seek_seconds == 90.0);
        assert!(a.elapsed_seconds() >= 90.0);
        assert!(a.fetch(99).is_none());
        a.reset_clock();
        assert_eq!(a.elapsed_seconds(), 0.0);
    }

    #[test]
    fn tiered_local_query_beats_archive_scan() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        for s in corpus() {
            t.insert(&s).unwrap();
        }
        let (outcome, local_cost) =
            t.query_local(&QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
        assert_eq!(outcome.exact.len(), 5, "{outcome:?}");
        let scan_cost = t.full_archive_scan_cost();
        // The headline motivation: orders of magnitude apart.
        assert!(scan_cost > 1000.0 * local_cost, "scan {scan_cost} local {local_cost}");
    }

    #[test]
    fn drill_down_touches_only_matches() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        for s in corpus() {
            t.insert(&s).unwrap();
        }
        let (outcome, _) = t.query_local(&QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
        let drill = t.drill_down_cost(&outcome.exact);
        let full = t.full_archive_scan_cost();
        assert!(drill < full, "drill {drill} full {full}");
        // 5 of 10 sequences -> roughly half the cost.
        assert!((drill / full - 0.5).abs() < 0.1, "ratio {}", drill / full);
    }

    #[test]
    fn ids_sorted_and_get_is_free() {
        let mut a = ArchiveStore::new(Medium::local_disk());
        for id in [9u64, 2, 5] {
            a.put(id, goalpost(GoalpostSpec::default()));
        }
        assert_eq!(a.ids(), vec![2, 5, 9]);
        assert!(a.get(5).is_some());
        assert!(a.get(1).is_none());
        assert_eq!(a.elapsed_seconds(), 0.0, "get() must not touch the medium");
    }

    #[test]
    fn realtime_scale_sleeps_on_fetch() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.realtime_scale(), 0.0);
        // Memory access costs ~1e-7 simulated seconds; a large scale makes
        // the sleep observable without slowing the suite.
        a.set_realtime_scale(2.0e5);
        let t = std::time::Instant::now();
        a.fetch(1).unwrap();
        assert!(t.elapsed().as_secs_f64() >= 0.015, "fetch must really block");
    }

    #[test]
    #[should_panic(expected = "realtime scale")]
    fn negative_realtime_scale_rejected() {
        ArchiveStore::new(Medium::memory()).set_realtime_scale(-1.0);
    }

    #[test]
    fn generation_tracks_mutations_and_instances_differ() {
        let mut a = ArchiveStore::new(Medium::memory());
        let b = ArchiveStore::new(Medium::memory());
        assert_ne!(a.instance_id(), b.instance_id());
        assert_eq!(a.generation(), 0);
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.generation(), 1);
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.generation(), 2, "replacement counts as a mutation");
        // Reads don't bump.
        let _ = a.fetch(1);
        let _ = a.get(1);
        let _ = a.ids();
        assert_eq!(a.generation(), 2);

        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        let g = t.archive().generation();
        let _ = t.archive_mut();
        assert_eq!(t.archive().generation(), g + 1, "archive_mut is a conservative mutation");
    }

    #[test]
    fn changed_since_reports_exact_dirty_ids() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(3, goalpost(GoalpostSpec::default()));
        a.put(1, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        assert_eq!(a.changed_since(g), Some(vec![]), "no mutation since g");
        a.put(7, goalpost(GoalpostSpec::default()));
        a.put(1, goalpost(GoalpostSpec::default()));
        a.put(7, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(g), Some(vec![1, 7]), "deduplicated, ascending");
        assert_eq!(a.changed_since(0), Some(vec![1, 3, 7]), "full history retained");
        assert_eq!(a.changed_since(a.generation() + 1), None, "future generations are unknown");
    }

    #[test]
    fn wildcard_mutations_poison_the_delta() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        a.mark_all_changed();
        a.put(2, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(g), None, "a wildcard in the delta means unknown");
        assert_eq!(a.changed_since(a.generation()), Some(vec![]));

        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        let g = t.archive().generation();
        let _ = t.archive_mut();
        assert_eq!(t.archive().changed_since(g), None, "archive_mut is a wildcard");
    }

    #[test]
    fn overflowing_the_mutation_log_degrades_to_unknown() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(0, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        for i in 0..(super::MUTATION_LOG_CAP as u64 + 4) {
            a.put(i % 16, goalpost(GoalpostSpec::default()));
        }
        assert_eq!(a.changed_since(g), None, "delta fell off the bounded log");
        // Recent deltas still resolve.
        let recent = a.generation();
        a.put(99, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(recent), Some(vec![99]));
    }

    #[test]
    fn fetch_count_tracks_successful_fetches() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.fetch_count(), 0);
        let _ = a.fetch(1);
        let _ = a.fetch(1);
        let _ = a.fetch(99);
        assert_eq!(a.fetch_count(), 2, "misses don't count");
    }

    #[test]
    fn archive_mut_exposes_the_raw_tier() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        t.archive_mut().set_realtime_scale(0.0);
        assert_eq!(t.archive().realtime_scale(), 0.0);
    }

    #[test]
    fn local_tier_drops_raw() {
        let mut t = TieredStore::new(
            StoreConfig::default(),
            Medium::local_disk(),
            Medium::optical_jukebox(),
        )
        .unwrap();
        let id = t.insert(&goalpost(GoalpostSpec::default())).unwrap();
        assert!(t.local().get(id).unwrap().raw.is_none());
        assert_eq!(t.archive().len(), 1);
    }
}
