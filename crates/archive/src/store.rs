//! Archive and tiered stores with simulated access accounting.
//!
//! The archive is snapshot-isolated: its contents live in an immutable
//! [`ArchiveState`] behind an `Arc` swap, writers install a new state
//! (clone-on-write of only the touched bucket) and readers pin the one
//! they captured — see [`ArchiveStore::snapshot`].

use crate::durability::{self, ColdDocs, DurabilityConfig, DurableHandle};
use crate::medium::{AccessCost, Medium};
use parking_lot::{Mutex, RwLock};
use saq_core::{QueryOutcome, QuerySpec, Result, SequenceStore, StoreConfig};
use saq_durable::{Backend, DurableConfig, DurableStore, WalRecord};
use saq_index::cold::SegmentIndexSet;
use saq_index::ShardedCowMap;
use saq_sequence::{Point, Sequence};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Bytes per raw sample: a timestamp and a value, both `f64`.
const BYTES_PER_POINT: u64 = 16;

/// Bytes per stored representation parameter.
const BYTES_PER_PARAM: u64 = 8;

/// How many mutations the dirty-id log retains. Older deltas are forgotten
/// and [`ArchiveStore::changed_since`] answers `None` (callers fall back
/// to full invalidation), so the log stays O(1) memory per archive.
const MUTATION_LOG_CAP: usize = 4096;

/// Raw sequences living on a (simulated) slow medium. Every fetch accrues
/// simulated latency.
///
/// An `ArchiveStore` is a cheap *handle*: cloning it yields another handle
/// to the same archive (same contents, same clocks and counters, same
/// generation line), which is how a writer thread and reader threads share
/// one archive without external locking. Mutators keep `&mut self`
/// signatures to mark intent, but mutations are visible through every
/// handle. Readers that need a stable view take an [`ArchiveSnapshot`].
#[derive(Debug, Clone)]
pub struct ArchiveStore {
    shared: Arc<ArchiveShared>,
}

/// State shared by every handle (and snapshot) of one archive.
#[derive(Debug)]
struct ArchiveShared {
    medium: Medium,
    /// Process-unique identity of this archive instance.
    instance: u64,
    /// Simulated seconds accrued by fetches.
    elapsed: Mutex<f64>,
    /// Real seconds slept per simulated second on each fetch, as `f64`
    /// bits (0 = never sleep). See [`ArchiveStore::set_realtime_scale`].
    realtime_scale_bits: AtomicU64,
    /// Number of [`ArchiveStore::fetch`] calls that found their sequence.
    fetches: AtomicU64,
    /// The current immutable contents. Writers install a new `Arc` under
    /// the write lock; readers briefly hold the read lock only to clone
    /// the `Arc` out.
    state: RwLock<Arc<ArchiveState>>,
    /// Recent mutations; drives [`ArchiveStore::changed_since`].
    log: Mutex<MutationLog>,
    /// The durable half, when this archive was opened from storage:
    /// the WAL/segment store plus the current cold-document pager.
    /// `None` for purely in-memory archives ([`ArchiveStore::new`]).
    durable: Option<Arc<DurableHandle>>,
}

/// One immutable generation of archive contents. Never mutated once
/// published — writers build a successor (sharing every untouched bucket)
/// and swap it in.
#[derive(Debug)]
struct ArchiveState {
    /// The generation this state was installed at.
    generation: u64,
    sequences: ShardedCowMap<Sequence>,
    /// Sorted ids, computed lazily once per generation.
    ids: OnceLock<Vec<u64>>,
}

impl ArchiveState {
    fn sorted_ids(&self) -> &[u64] {
        self.ids.get_or_init(|| self.sequences.sorted_ids())
    }
}

/// The bounded recent-mutation log. Entries cover contiguous generation
/// ranges: a run of mutations to the *same* id coalesces into one entry
/// (`first..=last`) instead of consuming one slot per put, so single-id
/// churn can never evict other ids' deltas (`None` ids are wildcard
/// entries — "anything may have changed").
#[derive(Debug, Default)]
struct MutationLog {
    entries: VecDeque<LogEntry>,
}

#[derive(Debug, Clone, Copy)]
struct LogEntry {
    /// First and last generation this entry covers (inclusive).
    first: u64,
    last: u64,
    /// The mutated id, or `None` for a wildcard mutation.
    id: Option<u64>,
}

impl MutationLog {
    /// Records the mutation that produced `generation`.
    fn record(&mut self, generation: u64, id: Option<u64>) {
        if let Some(tail) = self.entries.back_mut() {
            if tail.id == id {
                // Coalesce: extend the tail's covered range rather than
                // spending a slot per repeated mutation of one id.
                tail.last = generation;
                return;
            }
        }
        if self.entries.len() == MUTATION_LOG_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry { first: generation, last: generation, id });
    }

    /// The ids mutated in the generation range `(from, to]` (deduplicated,
    /// ascending), or `None` when the delta is unknown — the range reaches
    /// outside the retained log, lies in the future, or contains a
    /// wildcard mutation.
    fn changed_between(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        if from > to {
            return None;
        }
        if from == to {
            return Some(Vec::new());
        }
        // The log must reach back to the first mutation after `from`.
        if self.entries.front().is_none_or(|e| e.first > from + 1) {
            return None;
        }
        let mut ids = Vec::new();
        for entry in &self.entries {
            if entry.last > from && entry.first <= to {
                ids.push(entry.id?);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Some(ids)
    }
}

impl ArchiveShared {
    /// Accounts one successful fetch of `points` raw samples against the
    /// simulated clock (really sleeping when a realtime scale is set).
    fn account_fetch(&self, points: u64) -> AccessCost {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let cost = self.medium.access(points * BYTES_PER_POINT);
        *self.elapsed.lock() += cost.total();
        let scale = f64::from_bits(self.realtime_scale_bits.load(Ordering::Relaxed));
        if scale > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(cost.total() * scale));
        }
        cost
    }
}

/// Source of process-unique [`ArchiveStore::instance_id`]s.
static NEXT_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl ArchiveStore {
    /// An empty archive on the given medium.
    pub fn new(medium: Medium) -> ArchiveStore {
        ArchiveStore {
            shared: Arc::new(ArchiveShared {
                medium,
                instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
                elapsed: Mutex::new(0.0),
                realtime_scale_bits: AtomicU64::new(0.0f64.to_bits()),
                fetches: AtomicU64::new(0),
                state: RwLock::new(Arc::new(ArchiveState {
                    generation: 0,
                    sequences: ShardedCowMap::new(),
                    ids: OnceLock::new(),
                })),
                log: Mutex::new(MutationLog::default()),
                durable: None,
            }),
        }
    }

    /// Opens (or creates) a durable archive in a directory: every
    /// mutation is written ahead to a WAL, compactions fold contents
    /// into immutable B-tree segments, and reopening recovers the exact
    /// pre-shutdown `(instance_id, generation)` and contents. See
    /// `docs/STORAGE.md` for the on-disk formats.
    pub fn open(
        path: impl Into<std::path::PathBuf>,
        medium: Medium,
        config: DurabilityConfig,
    ) -> Result<ArchiveStore> {
        durability::open_dir(path, medium, config)
    }

    /// As [`ArchiveStore::open`], over any [`Backend`] — tests and
    /// benchmarks use [`saq_durable::MemoryBackend`] to exercise the full
    /// durability protocol without a filesystem.
    pub fn open_backend(
        backend: Arc<dyn Backend>,
        medium: Medium,
        config: DurabilityConfig,
    ) -> Result<ArchiveStore> {
        let durable_config = DurableConfig { compact_after: config.compact_after };
        let (store, recovered) = DurableStore::open_with_merge(
            backend,
            durable_config,
            || NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            &durability::merge_append,
        )
        .map_err(saq_core::Error::from)?;
        // A recovered instance must stay process-unique: push the minting
        // counter past it so no in-memory archive can collide.
        NEXT_INSTANCE.fetch_max(recovered.instance + 1, Ordering::Relaxed);

        let mut sequences = ShardedCowMap::new();
        for (id, payload) in &recovered.entries {
            let seq = durability::decode_sequence(payload).map_err(saq_core::Error::from)?;
            sequences.insert(*id, seq);
        }
        let mut log = MutationLog::default();
        for (generation, id) in &recovered.mutations {
            log.record(*generation, *id);
        }
        let cold = recovered
            .docs
            .map(|pager| Arc::new(durability::seed_cold(pager, &recovered.mutations)));
        Ok(ArchiveStore {
            shared: Arc::new(ArchiveShared {
                medium,
                instance: recovered.instance,
                elapsed: Mutex::new(0.0),
                realtime_scale_bits: AtomicU64::new(0.0f64.to_bits()),
                fetches: AtomicU64::new(0),
                state: RwLock::new(Arc::new(ArchiveState {
                    generation: recovered.generation,
                    sequences,
                    ids: OnceLock::new(),
                })),
                log: Mutex::new(log),
                durable: Some(Arc::new(DurableHandle {
                    store: Mutex::new(store),
                    config,
                    cold: RwLock::new(cold),
                })),
            }),
        })
    }

    /// A process-unique identifier of this archive instance. Together with
    /// [`ArchiveStore::generation`] it forms a staleness stamp: caches
    /// keyed by sequence id (like the batch engine's feature cache) store
    /// the `(instance_id, generation)` pair they were filled under and
    /// self-invalidate when either part changes. Handle clones share the
    /// instance; only [`ArchiveStore::new`] mints a fresh one.
    pub fn instance_id(&self) -> u64 {
        self.shared.instance
    }

    /// A counter bumped by every content mutation ([`ArchiveStore::put`],
    /// [`ArchiveStore::remove`], and conservatively
    /// [`TieredStore::archive_mut`]). Equal generation ⇒ unchanged
    /// content, so derived per-sequence state is still valid.
    pub fn generation(&self) -> u64 {
        self.shared.state.read().generation
    }

    /// Captures the current contents as an immutable [`ArchiveSnapshot`]
    /// pinned to `(instance_id, generation)`: a couple of `Arc` clones, no
    /// copying. Mutations through any handle never affect a captured
    /// snapshot; the snapshot keeps superseded buckets alive until the
    /// last reference drops.
    pub fn snapshot(&self) -> ArchiveSnapshot {
        let state = self.shared.state.read().clone();
        // Captured under the state read lock's shadow: writers mark
        // cold documents dirty *before* publishing their state, so the
        // pair (state, cold) here is never optimistic about freshness.
        let cold = self.shared.durable.as_ref().and_then(|d| d.cold.read().clone());
        ArchiveSnapshot { state, shared: self.shared.clone(), cold }
    }

    /// Makes fetches *really* block for `scale` wall-clock seconds per
    /// simulated second (0, the default, never sleeps). Concurrent fetches
    /// block independently, so overlapping them — as the sharded batch
    /// engine does — hides archive latency the way overlapping real tape or
    /// jukebox requests would. Experiments use small scales (e.g. `1e-4`)
    /// to keep runs short while preserving the latency shape.
    pub fn set_realtime_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "realtime scale must be finite and >= 0");
        self.shared.realtime_scale_bits.store(scale.to_bits(), Ordering::Relaxed);
    }

    /// The configured wall-clock seconds per simulated second.
    pub fn realtime_scale(&self) -> f64 {
        f64::from_bits(self.shared.realtime_scale_bits.load(Ordering::Relaxed))
    }

    /// Installs a new state built from the current one by `f`, logging the
    /// mutation as `id`. The write lock serializes writers; readers are
    /// never blocked for longer than the `Arc` swap.
    ///
    /// Durable archives write the mutation ahead to the WAL first (`seq`
    /// is the payload for puts), under the durable lock — always taken
    /// *before* the state lock, the same order compaction uses. A WAL
    /// append failure leaves the in-memory state untouched.
    fn mutate(
        &mut self,
        id: Option<u64>,
        seq: Option<&Sequence>,
        f: impl FnOnce(&mut ShardedCowMap<Sequence>),
    ) -> Result<()> {
        let durable = self.shared.durable.clone();
        let mut wal = durable.as_ref().map(|d| d.store.lock());
        let mut state = self.shared.state.write();
        let generation = state.generation + 1;
        if let Some(wal) = wal.as_mut() {
            let record = WalRecord { generation, op: durability::wal_op(id, seq) };
            wal.append(&record).map_err(saq_core::Error::from)?;
        }
        if let Some(durable) = &durable {
            durable.mark(id);
        }
        let mut sequences = state.sequences.clone();
        f(&mut sequences);
        self.shared.log.lock().record(generation, id);
        *state = Arc::new(ArchiveState { generation, sequences, ids: OnceLock::new() });
        drop(state);
        let compact_now = wal.as_ref().is_some_and(|w| w.should_compact());
        drop(wal);
        if compact_now {
            self.compact()?;
        }
        Ok(())
    }

    /// Archives a raw sequence (writing is done off the query path and not
    /// accounted). Replaces silently; the generation counter and the
    /// mutation log record that this id changed, so id-keyed caches can
    /// self-invalidate — incrementally, via
    /// [`ArchiveStore::changed_since`].
    ///
    /// # Panics
    ///
    /// On a durable archive, panics if the write-ahead append fails —
    /// an acknowledged write the log doesn't hold would break the
    /// recovery contract. Use [`ArchiveStore::try_put`] to handle
    /// storage failures gracefully.
    pub fn put(&mut self, id: u64, seq: Sequence) {
        self.try_put(id, seq).expect("durable archive write failed");
    }

    /// As [`ArchiveStore::put`], surfacing storage failures instead of
    /// panicking.
    pub fn try_put(&mut self, id: u64, seq: Sequence) -> Result<()> {
        self.mutate(Some(id), Some(&seq), |sequences| {
            sequences.insert(id, seq.clone());
        })
    }

    /// Archives a batch of sequences under a single lock acquisition.
    /// On a durable archive the whole group is written ahead as one
    /// framed append — one fsync covers the batch (group commit) —
    /// before any in-memory state changes. Each record still consumes
    /// its own generation and is logged individually, so
    /// [`ArchiveStore::changed_since`] deltas stay exact.
    ///
    /// # Panics
    ///
    /// Like [`ArchiveStore::put`], panics if the write-ahead append
    /// fails; [`ArchiveStore::try_put_batch`] is the fallible form.
    pub fn put_batch(&mut self, items: Vec<(u64, Sequence)>) {
        self.try_put_batch(items).expect("durable archive write failed");
    }

    /// As [`ArchiveStore::put_batch`], surfacing storage failures. A
    /// failed group append leaves the in-memory state untouched — none
    /// of the batch is applied.
    pub fn try_put_batch(&mut self, items: Vec<(u64, Sequence)>) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        // Same locking order as `mutate` and `compact`: durable handle
        // first, then the archive state lock.
        let durable = self.shared.durable.clone();
        let mut wal = durable.as_ref().map(|d| d.store.lock());
        let mut state = self.shared.state.write();
        let base = state.generation;
        if let Some(wal) = wal.as_mut() {
            let records: Vec<WalRecord> = items
                .iter()
                .zip(1u64..)
                .map(|((id, seq), off)| WalRecord {
                    generation: base + off,
                    op: durability::wal_op(Some(*id), Some(seq)),
                })
                .collect();
            wal.append_batch(&records).map_err(saq_core::Error::from)?;
        }
        if let Some(durable) = &durable {
            for (id, _) in &items {
                durable.mark(Some(*id));
            }
        }
        let generation = base + items.len() as u64;
        let mut sequences = state.sequences.clone();
        {
            let mut log = self.shared.log.lock();
            for (off, (id, seq)) in (1u64..).zip(items) {
                log.record(base + off, Some(id));
                sequences.insert(id, seq);
            }
        }
        *state = Arc::new(ArchiveState { generation, sequences, ids: OnceLock::new() });
        drop(state);
        let compact_now = wal.as_ref().is_some_and(|w| w.should_compact());
        drop(wal);
        if compact_now {
            self.compact()?;
        }
        Ok(())
    }

    /// Removes an archived sequence (a tracked mutation, like
    /// [`ArchiveStore::put`]); returns it if it was present. Snapshots
    /// captured earlier still see it.
    ///
    /// # Panics
    ///
    /// Like [`ArchiveStore::put`], panics if the write-ahead append
    /// fails; [`ArchiveStore::try_remove`] is the fallible form.
    pub fn remove(&mut self, id: u64) -> Option<Arc<Sequence>> {
        self.try_remove(id).expect("durable archive write failed")
    }

    /// As [`ArchiveStore::remove`], surfacing storage failures.
    pub fn try_remove(&mut self, id: u64) -> Result<Option<Arc<Sequence>>> {
        let mut removed = None;
        self.mutate(Some(id), None, |sequences| {
            removed = sequences.remove(id);
        })?;
        Ok(removed)
    }

    /// Extends the stored sequence at `id` with `points` — the streaming
    /// ingestion entry point. One call is one mutation wave: a single
    /// generation bump, one exact `(generation, id)` mutation-log entry
    /// (so [`ArchiveStore::changed_since`] deltas stay precise), and on
    /// durable archives one [`saq_durable::WalOp::Append`] record whose
    /// payload holds only the delta points. Appending to an id that
    /// doesn't exist creates the sequence, mirroring what WAL replay
    /// does with an append to a missing entry.
    ///
    /// The extended sequence is validated *before* anything is logged
    /// (`points` must be non-empty, finite, strictly increasing, and
    /// start after the stored sequence ends), so a rejected append
    /// leaves both the WAL and the in-memory state untouched. Returns
    /// the total point count after the append.
    ///
    /// # Panics
    ///
    /// Like [`ArchiveStore::put`], panics if the write-ahead append
    /// fails; [`ArchiveStore::try_append_points`] is the fallible form.
    pub fn append_points(&mut self, id: u64, points: &[Point]) -> usize {
        self.try_append_points(id, points).expect("durable archive write failed")
    }

    /// As [`ArchiveStore::append_points`], surfacing storage failures
    /// and validation errors instead of panicking.
    pub fn try_append_points(&mut self, id: u64, points: &[Point]) -> Result<usize> {
        if points.is_empty() {
            return Err(saq_core::Error::EmptyInput);
        }
        let delta = Sequence::new(points.to_vec())?;
        // Same locking order as `mutate` and `compact`: durable handle
        // first, then the archive state lock.
        let durable = self.shared.durable.clone();
        let mut wal = durable.as_ref().map(|d| d.store.lock());
        let mut state = self.shared.state.write();
        // Build (and thereby validate) the extended sequence before the
        // write-ahead step; `concat` rejects a non-extending boundary.
        let extended = match state.sequences.get_arc(id) {
            Some(prior) => prior.concat(&delta)?,
            None => delta.clone(),
        };
        let total = extended.len();
        let generation = state.generation + 1;
        if let Some(wal) = wal.as_mut() {
            let record = WalRecord { generation, op: durability::wal_append_op(id, &delta) };
            wal.append(&record).map_err(saq_core::Error::from)?;
        }
        if let Some(durable) = &durable {
            durable.mark(Some(id));
        }
        let mut sequences = state.sequences.clone();
        sequences.insert(id, extended);
        self.shared.log.lock().record(generation, Some(id));
        *state = Arc::new(ArchiveState { generation, sequences, ids: OnceLock::new() });
        drop(state);
        let compact_now = wal.as_ref().is_some_and(|w| w.should_compact());
        drop(wal);
        if compact_now {
            self.compact()?;
        }
        Ok(total)
    }

    /// Marks the whole archive as potentially changed (a wildcard
    /// mutation): the generation bumps and every generation delta crossing
    /// this point reports "unknown" so caches fall back to full
    /// invalidation. Used when mutable access is handed out without
    /// tracking what it touched.
    ///
    /// # Panics
    ///
    /// Like [`ArchiveStore::put`], panics if the write-ahead append fails.
    pub fn mark_all_changed(&mut self) {
        self.mutate(None, None, |_| {}).expect("durable archive write failed");
    }

    /// Whether this archive persists its mutations.
    pub fn is_durable(&self) -> bool {
        self.shared.durable.is_some()
    }

    /// Folds the current contents into a fresh durable segment set
    /// (entries plus, when configured, precomputed index documents),
    /// commits the manifest, and truncates the WAL. A no-op on
    /// non-durable archives. Writers are blocked for the duration;
    /// readers and snapshots are not.
    pub fn compact(&mut self) -> Result<()> {
        let Some(durable) = self.shared.durable.clone() else { return Ok(()) };
        // Durable lock first (the invariant order), so no writer can
        // append between the state we capture and the WAL truncation.
        let mut store = durable.store.lock();
        let state = self.shared.state.read().clone();
        let docs_config = durable.config.index_docs.as_ref();
        let (entries, docs) = durability::compaction_payload(
            state.sorted_ids(),
            |id| state.sequences.get_arc(id),
            docs_config,
        );
        let spec = match (&docs, docs_config) {
            (Some(docs), Some(config)) => Some(saq_durable::DocsSpec {
                epsilon_bits: config.epsilon.to_bits(),
                theta_bits: config.theta.to_bits(),
                breaker_tag: config.breaker.tag(),
                docs,
            }),
            _ => None,
        };
        let pager =
            store.compact(state.generation, &entries, spec).map_err(saq_core::Error::from)?;
        *durable.cold.write() = pager.map(|p| Arc::new(ColdDocs::new(p)));
        Ok(())
    }

    /// The cold-document pager persisted by the last compaction, if this
    /// archive is durable and one exists. Prefer
    /// [`ArchiveSnapshot::cold_docs`] on query paths — it is captured
    /// coherently with the snapshot's contents.
    pub fn cold_docs(&self) -> Option<Arc<ColdDocs>> {
        self.shared.durable.as_ref().and_then(|d| d.cold.read().clone())
    }

    /// A lazily-hydrating index set over the persisted cold documents:
    /// documents page in from the durable segment on demand instead of
    /// being recomputed from raw sequences. `None` when the archive is
    /// not durable or no compaction has written documents yet.
    pub fn cold_index_set(&self) -> Option<SegmentIndexSet> {
        self.cold_docs().map(|cold| SegmentIndexSet::new(cold))
    }

    /// WAL records accumulated since the last compaction (0 for
    /// non-durable archives) — observability for compaction policy.
    pub fn wal_records(&self) -> u64 {
        self.shared.durable.as_ref().map_or(0, |d| d.store.lock().wal_records())
    }

    /// The ids mutated after `generation` (deduplicated, ascending), or
    /// `None` when the delta is unknown — the generation lies outside the
    /// retained log, is from the future, or a wildcard mutation
    /// ([`ArchiveStore::mark_all_changed`]) happened in between. `None`
    /// means "assume everything changed".
    ///
    /// This is the incremental-maintenance contract behind the batch
    /// engine's dirty-id cache invalidation: a cache stamped with an older
    /// generation re-fetches exactly these ids instead of dropping
    /// everything.
    pub fn changed_since(&self, generation: u64) -> Option<Vec<u64>> {
        self.snapshot().changed_since(generation)
    }

    /// Number of successful fetches so far (incremental-mode experiments
    /// assert re-runs touch only dirty ids through this counter). Shared
    /// across handles and snapshots.
    pub fn fetch_count(&self) -> u64 {
        self.shared.fetches.load(Ordering::Relaxed)
    }

    /// Number of archived sequences.
    pub fn len(&self) -> usize {
        self.shared.state.read().sequences.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All archived ids, sorted — the canonical enumeration order that the
    /// batch engine's shard partitioning relies on.
    pub fn ids(&self) -> Vec<u64> {
        self.snapshot().ids().to_vec()
    }

    /// Direct access to an archived sequence *without* touching the
    /// simulated medium — for tests and introspection only. Query paths
    /// (including the batch engine) must go through
    /// [`ArchiveStore::fetch`] so access costs are accounted.
    pub fn get(&self, id: u64) -> Option<Arc<Sequence>> {
        self.shared.state.read().sequences.get_arc(id)
    }

    /// Fetches a raw sequence, accruing simulated seek + transfer time (and
    /// really sleeping when a realtime scale is configured). Reads the
    /// current generation; pinned readers fetch through
    /// [`ArchiveSnapshot::fetch`] instead.
    pub fn fetch(&self, id: u64) -> Option<(Arc<Sequence>, AccessCost)> {
        let seq = self.get(id)?;
        let cost = self.shared.account_fetch(seq.len() as u64);
        Some((seq, cost))
    }

    /// Total simulated seconds accrued by fetches so far.
    pub fn elapsed_seconds(&self) -> f64 {
        *self.shared.elapsed.lock()
    }

    /// Resets the simulated clock.
    pub fn reset_clock(&self) {
        *self.shared.elapsed.lock() = 0.0;
    }
}

/// An immutable view of one archive generation, captured by
/// [`ArchiveStore::snapshot`]. Contents ([`ArchiveSnapshot::ids`],
/// [`ArchiveSnapshot::get`], [`ArchiveSnapshot::fetch`]) are pinned to the
/// captured `(instance_id, generation)` forever; accounting (the
/// simulated clock, the fetch counter) and the realtime scale stay shared
/// with the live archive, since they model the physical medium rather
/// than the contents.
///
/// Cloning a snapshot is two `Arc` clones; dropping the last clone of a
/// superseded generation frees whatever buckets later generations don't
/// share.
#[derive(Debug, Clone)]
pub struct ArchiveSnapshot {
    shared: Arc<ArchiveShared>,
    state: Arc<ArchiveState>,
    /// The cold-document pager current when this snapshot was captured
    /// (durable archives only). Its dirty tracking is shared and only
    /// grows, so it can refuse ids needlessly but never serve stale
    /// documents for this snapshot's generation.
    cold: Option<Arc<ColdDocs>>,
}

impl ArchiveSnapshot {
    /// The instance id of the archive this snapshot came from.
    pub fn instance_id(&self) -> u64 {
        self.shared.instance
    }

    /// The generation this snapshot is pinned to.
    pub fn generation(&self) -> u64 {
        self.state.generation
    }

    /// Number of sequences visible at the pinned generation.
    pub fn len(&self) -> usize {
        self.state.sequences.len()
    }

    /// Whether the snapshot holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.state.sequences.is_empty()
    }

    /// All ids at the pinned generation, sorted (computed once per
    /// generation and shared by every snapshot of it).
    pub fn ids(&self) -> &[u64] {
        self.state.sorted_ids()
    }

    /// Borrows a sequence without touching the simulated medium — the
    /// snapshot-pinned counterpart of [`ArchiveStore::get`].
    pub fn get(&self, id: u64) -> Option<&Sequence> {
        self.state.sequences.get(id)
    }

    /// Fetches a sequence at the pinned generation, accruing simulated
    /// cost on the *shared* clock (and really sleeping when a realtime
    /// scale is configured) — the snapshot-pinned counterpart of
    /// [`ArchiveStore::fetch`].
    pub fn fetch(&self, id: u64) -> Option<(&Sequence, AccessCost)> {
        let seq = self.state.sequences.get(id)?;
        let cost = self.shared.account_fetch(seq.len() as u64);
        Some((seq, cost))
    }

    /// The ids mutated after `generation` *up to this snapshot's pinned
    /// generation* (deduplicated, ascending), or `None` when the delta is
    /// unknown — see [`ArchiveStore::changed_since`]. Mutations newer than
    /// the snapshot are invisible, like the contents.
    pub fn changed_since(&self, generation: u64) -> Option<Vec<u64>> {
        self.shared.log.lock().changed_between(generation, self.state.generation)
    }

    /// The cold-document pager coherent with this snapshot's contents,
    /// when the archive is durable and has compacted documents. Query
    /// engines use it to serve index-only leaves without fetching and
    /// recomputing entries after a cold open.
    pub fn cold_docs(&self) -> Option<&Arc<ColdDocs>> {
        self.cold.as_ref()
    }

    /// A weak handle answering whether this snapshot's pinned state is
    /// still reachable — used by lifecycle tests to assert superseded
    /// generations are actually freed once their last snapshot drops.
    pub fn probe(&self) -> ArchiveSnapshotProbe {
        ArchiveSnapshotProbe { state: Arc::downgrade(&self.state) }
    }
}

/// See [`ArchiveSnapshot::probe`]. Holding a probe keeps nothing alive.
#[derive(Debug, Clone)]
pub struct ArchiveSnapshotProbe {
    state: Weak<ArchiveState>,
}

impl ArchiveSnapshotProbe {
    /// Whether the probed generation's state is still allocated (pinned by
    /// some snapshot, or still the archive's current generation).
    pub fn is_live(&self) -> bool {
        self.state.upgrade().is_some()
    }
}

/// The paper's recommended architecture: compact representations on fast
/// local storage, raw data archived remotely. Queries run locally; only a
/// drill-down to raw data pays the archival price.
#[derive(Debug)]
pub struct TieredStore {
    local: SequenceStore,
    local_medium: Medium,
    archive: ArchiveStore,
}

impl TieredStore {
    /// Builds a tiered store; representations live on `local_medium`, raw
    /// data on `archive_medium`.
    pub fn new(
        config: StoreConfig,
        local_medium: Medium,
        archive_medium: Medium,
    ) -> Result<TieredStore> {
        // The local tier never needs the raw copies.
        let local = SequenceStore::new(StoreConfig { keep_raw: false, ..config })?;
        Ok(TieredStore { local, local_medium, archive: ArchiveStore::new(archive_medium) })
    }

    /// Ingests a sequence into both tiers.
    pub fn insert(&mut self, seq: &Sequence) -> Result<u64> {
        let id = self.local.insert(seq)?;
        self.archive.put(id, seq.clone());
        Ok(id)
    }

    /// The local representation store.
    pub fn local(&self) -> &SequenceStore {
        &self.local
    }

    /// The raw archive.
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// Mutable access to the raw archive (e.g. to configure realtime
    /// latency emulation before a batch run). Conservatively records a
    /// wildcard mutation — the borrow allows arbitrary changes, so
    /// id-keyed caches must assume any content may have changed (their
    /// incremental dirty-id path reports "unknown" across this point).
    pub fn archive_mut(&mut self) -> &mut ArchiveStore {
        self.archive.mark_all_changed();
        &mut self.archive
    }

    /// Replaces the sequence stored under an existing id in *both* tiers —
    /// the tracked-mutation alternative to going through
    /// [`TieredStore::archive_mut`]: the mutation log records exactly
    /// `id`, so id-keyed caches (the batch engine's LRU) re-fetch one
    /// sequence instead of falling back to full invalidation. Fails
    /// (leaving both tiers untouched) on unknown ids or unrepresentable
    /// sequences.
    pub fn with_archive_put(&mut self, id: u64, seq: &Sequence) -> Result<()> {
        self.local.reinsert(id, seq)?;
        self.archive.put(id, seq.clone());
        Ok(())
    }

    /// Streams freshly arrived points into *both* tiers: the raw archive
    /// appends the delta (a tracked mutation — the log records exactly
    /// `id`), and the local representation tier splices its entry from
    /// the archive's extended raw copy
    /// ([`SequenceStore::append_extended`] — the local tier keeps no raw
    /// of its own). Under the online breaker only the open suffix is
    /// re-broken; the returned report says how much work that was.
    /// Validation happens in the archive step, before either tier
    /// changes.
    pub fn append_points(&mut self, id: u64, points: &[Point]) -> Result<saq_core::SpliceReport> {
        // Both tiers must know the id before either mutates: an archive
        // append would *create* an unknown id, leaving the tiers torn.
        self.local.get(id)?;
        self.archive.try_append_points(id, points)?;
        let extended = self.archive.get(id).ok_or(saq_core::Error::UnknownSequence { id })?;
        self.local.append_extended(id, (*extended).clone())
    }

    /// Answers a generalized approximate query from local representations,
    /// returning the outcome and the simulated local read cost (reading
    /// every representation's parameters once).
    pub fn query_local(&self, query: &QuerySpec) -> Result<(QueryOutcome, f64)> {
        let outcome = saq_core::query::evaluate(&self.local, query)?;
        let report = self.local.total_compression();
        let bytes = report.parameters as u64 * BYTES_PER_PARAM;
        let cost = self.local_medium.access(bytes).total();
        Ok((outcome, cost))
    }

    /// The pre-representation workflow of §1: fetch every raw sequence from
    /// the archive (one access each) so an application program can scan
    /// them. Returns the simulated cost.
    pub fn full_archive_scan_cost(&self) -> f64 {
        self.archive.reset_clock();
        let ids: Vec<u64> = self.local.ids();
        for id in ids {
            let _ = self.archive.fetch(id);
        }
        self.archive.elapsed_seconds()
    }

    /// Drill-down: fetch the raw sequences behind `ids` (e.g. the query's
    /// exact matches) for fine-resolution inspection; returns the cost.
    pub fn drill_down_cost(&self, ids: &[u64]) -> f64 {
        self.archive.reset_clock();
        for &id in ids {
            let _ = self.archive.fetch(id);
        }
        self.archive.elapsed_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn corpus() -> Vec<Sequence> {
        let mut out = Vec::new();
        for i in 0..10 {
            if i % 2 == 0 {
                out.push(goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() }));
            } else {
                out.push(peaks(PeaksSpec {
                    centers: vec![6.0, 12.0, 18.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }));
            }
        }
        out
    }

    #[test]
    fn archive_accounts_latency() {
        let mut a = ArchiveStore::new(Medium::remote_tape());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.len(), 1);
        assert_eq!(a.elapsed_seconds(), 0.0);
        let (seq, cost) = a.fetch(1).unwrap();
        assert_eq!(seq.len(), 49);
        assert!(cost.seek_seconds == 90.0);
        assert!(a.elapsed_seconds() >= 90.0);
        assert!(a.fetch(99).is_none());
        a.reset_clock();
        assert_eq!(a.elapsed_seconds(), 0.0);
    }

    #[test]
    fn tiered_local_query_beats_archive_scan() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        for s in corpus() {
            t.insert(&s).unwrap();
        }
        let (outcome, local_cost) =
            t.query_local(&QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
        assert_eq!(outcome.exact.len(), 5, "{outcome:?}");
        let scan_cost = t.full_archive_scan_cost();
        // The headline motivation: orders of magnitude apart.
        assert!(scan_cost > 1000.0 * local_cost, "scan {scan_cost} local {local_cost}");
    }

    #[test]
    fn drill_down_touches_only_matches() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        for s in corpus() {
            t.insert(&s).unwrap();
        }
        let (outcome, _) = t.query_local(&QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
        let drill = t.drill_down_cost(&outcome.exact);
        let full = t.full_archive_scan_cost();
        assert!(drill < full, "drill {drill} full {full}");
        // 5 of 10 sequences -> roughly half the cost.
        assert!((drill / full - 0.5).abs() < 0.1, "ratio {}", drill / full);
    }

    #[test]
    fn ids_sorted_and_get_is_free() {
        let mut a = ArchiveStore::new(Medium::local_disk());
        for id in [9u64, 2, 5] {
            a.put(id, goalpost(GoalpostSpec::default()));
        }
        assert_eq!(a.ids(), vec![2, 5, 9]);
        assert!(a.get(5).is_some());
        assert!(a.get(1).is_none());
        assert_eq!(a.elapsed_seconds(), 0.0, "get() must not touch the medium");
    }

    #[test]
    fn realtime_scale_sleeps_on_fetch() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.realtime_scale(), 0.0);
        // Memory access costs ~1e-7 simulated seconds; a large scale makes
        // the sleep observable without slowing the suite.
        a.set_realtime_scale(2.0e5);
        let t = std::time::Instant::now();
        a.fetch(1).unwrap();
        assert!(t.elapsed().as_secs_f64() >= 0.015, "fetch must really block");
    }

    #[test]
    #[should_panic(expected = "realtime scale")]
    fn negative_realtime_scale_rejected() {
        ArchiveStore::new(Medium::memory()).set_realtime_scale(-1.0);
    }

    #[test]
    fn generation_tracks_mutations_and_instances_differ() {
        let mut a = ArchiveStore::new(Medium::memory());
        let b = ArchiveStore::new(Medium::memory());
        assert_ne!(a.instance_id(), b.instance_id());
        assert_eq!(a.generation(), 0);
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.generation(), 1);
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.generation(), 2, "replacement counts as a mutation");
        // Reads don't bump.
        let _ = a.fetch(1);
        let _ = a.get(1);
        let _ = a.ids();
        assert_eq!(a.generation(), 2);

        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        let g = t.archive().generation();
        let _ = t.archive_mut();
        assert_eq!(t.archive().generation(), g + 1, "archive_mut is a conservative mutation");
    }

    #[test]
    fn changed_since_reports_exact_dirty_ids() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(3, goalpost(GoalpostSpec::default()));
        a.put(1, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        assert_eq!(a.changed_since(g), Some(vec![]), "no mutation since g");
        a.put(7, goalpost(GoalpostSpec::default()));
        a.put(1, goalpost(GoalpostSpec::default()));
        a.put(7, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(g), Some(vec![1, 7]), "deduplicated, ascending");
        assert_eq!(a.changed_since(0), Some(vec![1, 3, 7]), "full history retained");
        assert_eq!(a.changed_since(a.generation() + 1), None, "future generations are unknown");
    }

    #[test]
    fn wildcard_mutations_poison_the_delta() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        a.mark_all_changed();
        a.put(2, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(g), None, "a wildcard in the delta means unknown");
        assert_eq!(a.changed_since(a.generation()), Some(vec![]));

        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        let g = t.archive().generation();
        let _ = t.archive_mut();
        assert_eq!(t.archive().changed_since(g), None, "archive_mut is a wildcard");
    }

    #[test]
    fn overflowing_the_mutation_log_degrades_to_unknown() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(0, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        for i in 0..(super::MUTATION_LOG_CAP as u64 + 4) {
            a.put(i % 16, goalpost(GoalpostSpec::default()));
        }
        assert_eq!(a.changed_since(g), None, "delta fell off the bounded log");
        // Recent deltas still resolve.
        let recent = a.generation();
        a.put(99, goalpost(GoalpostSpec::default()));
        assert_eq!(a.changed_since(recent), Some(vec![99]));
    }

    #[test]
    fn repeated_same_id_puts_never_evict_other_deltas() {
        // Regression: k puts of one id used to consume k slots of the
        // bounded log, pushing unrelated ids' deltas off the front and
        // needlessly degrading changed_since to None.
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        a.put(2, goalpost(GoalpostSpec::default()));
        for _ in 0..(2 * super::MUTATION_LOG_CAP as u64) {
            a.put(7, goalpost(GoalpostSpec::default()));
        }
        assert_eq!(a.changed_since(2), Some(vec![7]), "the churned id coalesces into one entry");
        assert_eq!(a.changed_since(0), Some(vec![1, 2, 7]), "other ids' deltas survive the churn");
        assert_eq!(a.changed_since(1), Some(vec![2, 7]));
    }

    #[test]
    fn handle_clones_share_one_archive() {
        let mut a = ArchiveStore::new(Medium::memory());
        let b = a.clone();
        a.put(4, goalpost(GoalpostSpec::default()));
        assert_eq!(b.instance_id(), a.instance_id());
        assert_eq!(b.generation(), 1, "mutations are visible through every handle");
        assert_eq!(b.ids(), vec![4]);
        let _ = b.fetch(4);
        assert_eq!(a.fetch_count(), 1, "counters are shared too");
    }

    #[test]
    fn snapshot_pins_contents_under_writes() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec { seed: 1, ..GoalpostSpec::default() }));
        a.put(2, goalpost(GoalpostSpec { seed: 2, ..GoalpostSpec::default() }));
        let snap = a.snapshot();
        assert_eq!(snap.generation(), 2);
        assert_eq!(snap.instance_id(), a.instance_id());

        let replacement = peaks(PeaksSpec { centers: vec![6.0, 12.0, 18.0], ..Default::default() });
        a.put(1, replacement.clone());
        a.put(9, goalpost(GoalpostSpec::default()));
        a.remove(2);

        // The live archive moved on...
        assert_eq!(a.generation(), 5);
        assert_eq!(a.ids(), vec![1, 9]);
        assert_eq!(a.get(1).unwrap().len(), replacement.len());
        // ...but the snapshot still reads generation 2 wholesale.
        assert_eq!(snap.generation(), 2);
        assert_eq!(snap.ids(), &[1, 2]);
        assert_eq!(snap.get(1).unwrap().len(), 49, "pre-replacement sequence");
        assert!(snap.get(2).is_some(), "removed id still visible");
        assert!(snap.get(9).is_none(), "later insert invisible");
        let (seq, _cost) = snap.fetch(2).unwrap();
        assert_eq!(seq.len(), 49);
        assert_eq!(a.fetch_count(), 1, "snapshot fetches account on the shared counter");
    }

    #[test]
    fn snapshot_changed_since_is_relative_to_its_generation() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        let g1 = a.generation();
        a.put(2, goalpost(GoalpostSpec::default()));
        let snap = a.snapshot();
        a.put(3, goalpost(GoalpostSpec::default()));
        assert_eq!(snap.changed_since(g1), Some(vec![2]), "the later put(3) is invisible");
        assert_eq!(snap.changed_since(snap.generation()), Some(vec![]));
        assert_eq!(a.changed_since(g1), Some(vec![2, 3]));
        assert_eq!(snap.changed_since(a.generation()), None, "future of the snapshot is unknown");
    }

    #[test]
    fn remove_is_a_tracked_mutation() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(5, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        assert!(a.remove(5).is_some());
        assert_eq!(a.generation(), g + 1);
        assert_eq!(a.changed_since(g), Some(vec![5]));
        assert!(a.is_empty());
        assert!(a.remove(5).is_none(), "double remove finds nothing");
        assert_eq!(a.generation(), g + 2, "but still counts as a mutation");
    }

    #[test]
    fn dropping_the_last_snapshot_frees_superseded_state() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        let snap = a.snapshot();
        let probe = snap.probe();
        let snap2 = snap.clone();
        a.put(1, goalpost(GoalpostSpec { seed: 9, ..GoalpostSpec::default() }));
        assert!(probe.is_live(), "snapshots pin the superseded generation");
        drop(snap);
        assert!(probe.is_live(), "still pinned by the second snapshot");
        drop(snap2);
        assert!(!probe.is_live(), "last reference gone — generation freed");
        // The current generation is unaffected.
        assert_eq!(a.ids(), vec![1]);
    }

    #[test]
    fn fetch_count_tracks_successful_fetches() {
        let mut a = ArchiveStore::new(Medium::memory());
        a.put(1, goalpost(GoalpostSpec::default()));
        assert_eq!(a.fetch_count(), 0);
        let _ = a.fetch(1);
        let _ = a.fetch(1);
        let _ = a.fetch(99);
        assert_eq!(a.fetch_count(), 2, "misses don't count");
    }

    #[test]
    fn with_archive_put_tracks_the_exact_dirty_id() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::memory()).unwrap();
        let a = t.insert(&goalpost(GoalpostSpec::default())).unwrap();
        let b = t.insert(&goalpost(GoalpostSpec { seed: 7, ..GoalpostSpec::default() })).unwrap();
        let g = t.archive().generation();
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        t.with_archive_put(a, &three).unwrap();
        assert_eq!(t.archive().changed_since(g), Some(vec![a]), "exact dirty id, not a wildcard");
        assert_eq!(t.local().get(a).unwrap().peaks.len(), 3, "local tier re-represented too");
        assert_eq!(t.archive().get(a).unwrap().len(), three.len());
        assert!(t.with_archive_put(999, &three).is_err(), "unknown ids are rejected");
        assert_eq!(t.archive().changed_since(g), Some(vec![a]), "failed call mutated nothing");
        assert_eq!(t.local().get(b).unwrap().peaks.len(), 2, "other ids untouched");
    }

    #[test]
    fn archive_mut_exposes_the_raw_tier() {
        let mut t =
            TieredStore::new(StoreConfig::default(), Medium::memory(), Medium::remote_tape())
                .unwrap();
        t.archive_mut().set_realtime_scale(0.0);
        assert_eq!(t.archive().realtime_scale(), 0.0);
    }

    #[test]
    fn local_tier_drops_raw() {
        let mut t = TieredStore::new(
            StoreConfig::default(),
            Medium::local_disk(),
            Medium::optical_jukebox(),
        )
        .unwrap();
        let id = t.insert(&goalpost(GoalpostSpec::default())).unwrap();
        assert!(t.local().get(id).unwrap().raw.is_none());
        assert_eq!(t.archive().len(), 1);
    }

    #[test]
    fn durable_archive_round_trips_across_reopen() {
        use saq_durable::MemoryBackend;
        let backend = MemoryBackend::new();
        let arc_backend: Arc<dyn saq_durable::Backend> = Arc::new(backend.clone());
        let (instance, generation);
        {
            let mut a = ArchiveStore::open_backend(
                Arc::clone(&arc_backend),
                Medium::memory(),
                DurabilityConfig::default(),
            )
            .unwrap();
            assert!(a.is_durable());
            assert!(a.is_empty());
            for i in 0..6u64 {
                a.put(i, goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() }));
            }
            a.remove(4);
            instance = a.instance_id();
            generation = a.generation();
            assert_eq!(generation, 7);
        }
        let a =
            ArchiveStore::open_backend(arc_backend, Medium::memory(), DurabilityConfig::default())
                .unwrap();
        assert_eq!(a.instance_id(), instance, "instance survives restart");
        assert_eq!(a.generation(), generation, "generation survives restart");
        assert_eq!(a.ids(), vec![0, 1, 2, 3, 5]);
        for i in [0u64, 1, 2, 3, 5] {
            let expect = goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() });
            assert_eq!(a.get(i).unwrap().points(), expect.points(), "sequence {i} bit-exact");
        }
        // The recovered mutation log still answers incremental deltas.
        assert_eq!(a.changed_since(generation), Some(vec![]));
        assert_eq!(a.changed_since(5), Some(vec![4, 5]));
        // A fresh in-memory archive can never reuse the recovered instance.
        assert_ne!(ArchiveStore::new(Medium::memory()).instance_id(), instance);
    }

    #[test]
    fn put_batch_group_commits_with_exact_generations() {
        let backend: Arc<dyn saq_durable::Backend> = Arc::new(saq_durable::MemoryBackend::new());
        let mut a = ArchiveStore::open_backend(
            Arc::clone(&backend),
            Medium::memory(),
            DurabilityConfig::default(),
        )
        .unwrap();
        a.put(0, goalpost(GoalpostSpec::default()));
        let g = a.generation();
        let batch: Vec<(u64, Sequence)> = (1..5u64)
            .map(|i| (i, goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() })))
            .collect();
        a.put_batch(batch);
        a.put_batch(Vec::new());
        assert_eq!(a.generation(), g + 4, "one generation per batched record");
        assert_eq!(a.wal_records(), 5);
        assert_eq!(a.changed_since(g), Some(vec![1, 2, 3, 4]), "deltas stay exact");
        assert_eq!(a.ids(), vec![0, 1, 2, 3, 4]);

        // Recovery replays the group exactly as individual appends would.
        drop(a);
        let a = ArchiveStore::open_backend(backend, Medium::memory(), DurabilityConfig::default())
            .unwrap();
        assert_eq!(a.generation(), g + 4);
        assert_eq!(a.ids(), vec![0, 1, 2, 3, 4]);
        for i in 1..5u64 {
            let expect = goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() });
            assert_eq!(a.get(i).unwrap().points(), expect.points(), "sequence {i} bit-exact");
        }
        assert_eq!(a.changed_since(g), Some(vec![1, 2, 3, 4]));
    }

    fn tail(seq: &Sequence, n: usize, seed: u64) -> Vec<Point> {
        let last = *seq.points().last().unwrap();
        (1..=n)
            .map(|i| {
                let wob = ((seed.wrapping_mul(i as u64) % 7) as f64 - 3.0) / 10.0;
                Point::new(last.t + i as f64, last.v + wob)
            })
            .collect()
    }

    #[test]
    fn append_points_is_one_exactly_tracked_wave() {
        let mut a = ArchiveStore::new(Medium::memory());
        let base = goalpost(GoalpostSpec::default());
        a.put(1, base.clone());
        a.put(2, goalpost(GoalpostSpec { seed: 2, ..GoalpostSpec::default() }));
        let g = a.generation();

        let wave = tail(&base, 5, 3);
        assert_eq!(a.append_points(1, &wave), base.len() + 5);
        assert_eq!(a.generation(), g + 1, "one generation per append wave");
        assert_eq!(a.changed_since(g), Some(vec![1]), "exact delta, only the appended id");
        let mut expect = base.points().to_vec();
        expect.extend_from_slice(&wave);
        assert_eq!(a.get(1).unwrap().points(), expect.as_slice());

        // Appending to an unknown id creates it (mirrors WAL replay).
        let fresh: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.5)).collect();
        assert_eq!(a.append_points(9, &fresh), 4);
        assert_eq!(a.get(9).unwrap().points(), fresh.as_slice());

        // Rejected appends mutate nothing: not the state, not the log.
        let g = a.generation();
        assert!(a.try_append_points(1, &[]).is_err(), "empty wave");
        assert!(
            a.try_append_points(1, &[Point::new(0.0, 0.0)]).is_err(),
            "non-extending timestamp"
        );
        assert_eq!(a.generation(), g);
        assert_eq!(a.changed_since(g), Some(vec![]));
        assert_eq!(a.get(1).unwrap().points(), expect.as_slice());
    }

    #[test]
    fn durable_appends_replay_through_the_merge() {
        let backend: Arc<dyn saq_durable::Backend> = Arc::new(saq_durable::MemoryBackend::new());
        let base = goalpost(GoalpostSpec::default());
        let mut expect = base.points().to_vec();
        let generation;
        {
            let mut a = ArchiveStore::open_backend(
                Arc::clone(&backend),
                Medium::memory(),
                DurabilityConfig::default(),
            )
            .unwrap();
            a.put(1, base.clone());
            for wave in 0..7u64 {
                let seq = a.get(1).unwrap();
                let points = tail(&seq, 1 + (wave as usize % 4), wave + 11);
                a.append_points(1, &points);
                expect.extend_from_slice(&points);
            }
            // An append that *creates* an entry must also replay.
            a.append_points(5, &[Point::new(0.0, 1.0), Point::new(1.0, 2.0)]);
            generation = a.generation();
        }
        let a = ArchiveStore::open_backend(
            Arc::clone(&backend),
            Medium::memory(),
            DurabilityConfig::default(),
        )
        .unwrap();
        assert_eq!(a.generation(), generation);
        assert_eq!(a.get(1).unwrap().points(), expect.as_slice(), "merged replay is bit-exact");
        assert_eq!(a.get(5).unwrap().len(), 2);
        assert_eq!(a.changed_since(generation - 1), Some(vec![5]));

        // Compaction folds the merged entry into the segment; appends
        // after it replay on top of the segment payload.
        drop(a);
        let mut a = ArchiveStore::open_backend(
            Arc::clone(&backend),
            Medium::memory(),
            DurabilityConfig::default(),
        )
        .unwrap();
        a.compact().unwrap();
        let seq = a.get(1).unwrap();
        let more = tail(&seq, 3, 99);
        a.append_points(1, &more);
        expect.extend_from_slice(&more);
        drop(a);
        let a = ArchiveStore::open_backend(backend, Medium::memory(), DurabilityConfig::default())
            .unwrap();
        assert_eq!(a.get(1).unwrap().points(), expect.as_slice());
    }

    #[test]
    fn append_dirties_cold_docs() {
        use saq_index::cold::DocPager as _;
        let backend: Arc<dyn saq_durable::Backend> = Arc::new(saq_durable::MemoryBackend::new());
        let mut a =
            ArchiveStore::open_backend(backend, Medium::memory(), DurabilityConfig::default())
                .unwrap();
        let base = goalpost(GoalpostSpec::default());
        a.put(1, base.clone());
        a.put(2, goalpost(GoalpostSpec { seed: 2, ..GoalpostSpec::default() }));
        a.compact().unwrap();
        let cold = a.cold_docs().unwrap();
        assert!(cold.doc(1).is_some());
        a.append_points(1, &tail(&base, 2, 1));
        assert!(cold.doc(1).is_none(), "appended id refused — its doc is stale");
        assert!(cold.doc(2).is_some(), "untouched id still served");
    }

    #[test]
    fn tiered_append_splices_local_and_archives_raw() {
        use saq_core::BreakerKind;
        let config = StoreConfig::streaming();
        let mut t = TieredStore::new(config, Medium::memory(), Medium::memory()).unwrap();
        assert_eq!(t.local().config().breaker, BreakerKind::Online);
        let base = goalpost(GoalpostSpec::default());
        let id = t.insert(&base).unwrap();
        let g = t.archive().generation();

        let wave = tail(&base, 6, 17);
        let report = t.append_points(id, &wave).unwrap();
        assert_eq!(report.total_points, base.len() + 6);
        assert!(report.rebroken_points < report.total_points, "suffix splice, not a re-run");

        // The archive holds the raw extension; the local tier's spliced
        // representation is byte-identical to a from-scratch re-ingest.
        let extended = t.archive().get(id).unwrap();
        let mut expect = base.points().to_vec();
        expect.extend_from_slice(&wave);
        assert_eq!(extended.points(), expect.as_slice());
        let oracle =
            saq_core::StoredEntry::compute(&extended, &StoreConfig { keep_raw: false, ..config })
                .unwrap();
        let local = t.local().get(id).unwrap();
        assert_eq!(local.series, oracle.series);
        assert_eq!(local.symbols, oracle.symbols);
        assert!(local.raw.is_none(), "local tier still keeps no raw");
        assert_eq!(t.archive().changed_since(g), Some(vec![id]), "tracked, not wildcard");

        // Unknown ids are rejected before either tier mutates.
        assert!(t.append_points(999, &wave).is_err());
        assert!(t.archive().get(999).is_none(), "archive did not invent the id");
    }

    #[test]
    fn compaction_persists_cold_docs_and_mutations_dirty_them() {
        use saq_index::cold::DocPager as _;
        let backend: Arc<dyn saq_durable::Backend> = Arc::new(saq_durable::MemoryBackend::new());
        let mut a = ArchiveStore::open_backend(
            Arc::clone(&backend),
            Medium::memory(),
            DurabilityConfig::default(),
        )
        .unwrap();
        for i in 0..8u64 {
            a.put(i, goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() }));
        }
        assert!(a.cold_docs().is_none(), "no docs before the first compaction");
        a.compact().unwrap();
        let cold = a.cold_docs().expect("compaction persists docs");
        assert!(cold.matches_config(&StoreConfig::default()));
        assert_eq!(cold.base_generation(), 8);
        assert_eq!(cold.ids().len(), 8);
        assert!(cold.doc(3).is_some());

        // Mutating an id dirties its document; snapshots share the view.
        let snap = a.snapshot();
        a.put(3, peaks(PeaksSpec { centers: vec![9.0], ..PeaksSpec::default() }));
        assert!(cold.doc(3).is_none(), "mutated id refused");
        assert!(cold.doc(2).is_some(), "others still served");
        assert_eq!(snap.cold_docs().unwrap().dirty_count(), 1);

        // A wildcard poisons the pager outright.
        a.mark_all_changed();
        assert!(cold.doc(2).is_none());
        assert!(cold.ids().is_empty());

        // Recompacting installs a fresh, clean pager at the new base.
        a.compact().unwrap();
        let fresh = a.cold_docs().unwrap();
        assert_eq!(fresh.base_generation(), a.generation());
        assert!(fresh.doc(3).is_some());

        // Reopening recovers the pager straight from the manifest.
        drop(a);
        let a = ArchiveStore::open_backend(backend, Medium::memory(), DurabilityConfig::default())
            .unwrap();
        let recovered = a.cold_docs().unwrap();
        assert_eq!(recovered.base_generation(), a.generation());
        assert_eq!(recovered.ids().len(), 8);
        let mut set = a.cold_index_set().unwrap();
        assert!(set.hydrate_all().is_empty());
        use saq_index::SequenceIndex as _;
        assert_eq!(set.warm().doc_count(), 8);
    }

    #[test]
    fn auto_compaction_triggers_on_wal_growth() {
        let backend: Arc<dyn saq_durable::Backend> = Arc::new(saq_durable::MemoryBackend::new());
        let mut a = ArchiveStore::open_backend(
            backend,
            Medium::memory(),
            DurabilityConfig { compact_after: 5, index_docs: None },
        )
        .unwrap();
        for i in 0..5u64 {
            a.put(i, goalpost(GoalpostSpec { seed: i, ..GoalpostSpec::default() }));
        }
        assert_eq!(a.wal_records(), 0, "hitting the threshold compacts and empties the WAL");
        a.put(9, goalpost(GoalpostSpec { seed: 9, ..GoalpostSpec::default() }));
        assert_eq!(a.wal_records(), 1);
        assert!(a.cold_docs().is_none(), "index_docs: None persists entries only");
        assert_eq!(a.len(), 6);
    }
}
