//! Storage-medium cost models.

/// The cost of one archival access.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessCost {
    /// Simulated seconds spent positioning (mount, seek, request queueing).
    pub seek_seconds: f64,
    /// Simulated seconds spent transferring payload bytes.
    pub transfer_seconds: f64,
}

impl AccessCost {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.seek_seconds + self.transfer_seconds
    }
}

/// A storage medium's latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Medium {
    /// Human-readable name.
    pub name: &'static str,
    /// Fixed positioning cost per access, in seconds.
    pub seek_seconds: f64,
    /// Sustained transfer rate in bytes per second.
    pub bytes_per_second: f64,
}

impl Medium {
    /// A remote tape silo: requests queue behind an operator/robot and the
    /// geochemist of §1 ("obtaining raw seismic data can take several
    /// days" is dominated by this term at scale).
    pub fn remote_tape() -> Medium {
        Medium { name: "remote-tape", seek_seconds: 90.0, bytes_per_second: 2.0e6 }
    }

    /// An on-site optical jukebox.
    pub fn optical_jukebox() -> Medium {
        Medium { name: "optical-jukebox", seek_seconds: 8.0, bytes_per_second: 4.0e6 }
    }

    /// A local spinning disk.
    pub fn local_disk() -> Medium {
        Medium { name: "local-disk", seek_seconds: 8.0e-3, bytes_per_second: 1.5e8 }
    }

    /// Local memory (representations cached in RAM).
    pub fn memory() -> Medium {
        Medium { name: "memory", seek_seconds: 1.0e-7, bytes_per_second: 1.0e10 }
    }

    /// Cost of reading `bytes` in one access.
    pub fn access(&self, bytes: u64) -> AccessCost {
        AccessCost {
            seek_seconds: self.seek_seconds,
            transfer_seconds: bytes as f64 / self.bytes_per_second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_components_add_up() {
        let tape = Medium::remote_tape();
        let c = tape.access(2_000_000);
        assert_eq!(c.seek_seconds, 90.0);
        assert!((c.transfer_seconds - 1.0).abs() < 1e-9);
        assert!((c.total() - 91.0).abs() < 1e-9);
    }

    #[test]
    fn media_ordering_is_sane() {
        let bytes = 8_000;
        let tape = Medium::remote_tape().access(bytes).total();
        let optical = Medium::optical_jukebox().access(bytes).total();
        let disk = Medium::local_disk().access(bytes).total();
        let ram = Medium::memory().access(bytes).total();
        assert!(tape > optical && optical > disk && disk > ram);
    }

    #[test]
    fn seek_dominates_small_reads_on_tape() {
        let c = Medium::remote_tape().access(4_000);
        assert!(c.seek_seconds > 100.0 * c.transfer_seconds);
    }
}
