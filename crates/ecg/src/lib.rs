//! # saq-ecg
//!
//! The paper's cardiology application (§5.2): electrocardiogram segments,
//! R-peak analysis, and the R–R interval query workload.
//!
//! The original experiments used digitized ECG segments fetched over the
//! early WWW (`http://avnode.wustl.edu`), which are long gone. The
//! [`synth`] module substitutes a morphology-faithful synthesizer
//! (Gaussian P-QRS-T waves, configurable beat interval, noise and baseline
//! wander); what the paper's pipeline depends on — prominent R peaks,
//! ~500-sample segments, breaking at ε=10 into ~10 segments with steep
//! R flanks — is preserved (see DESIGN.md, substitution 1).
//!
//! ```
//! use saq_ecg::{synth::{synthesize, EcgSpec}, analysis};
//!
//! let ecg = synthesize(EcgSpec::default());
//! let report = analysis::analyze(&ecg, 10.0).unwrap();
//! assert_eq!(report.r_peaks.len(), 4);
//! assert!(report.rr_intervals().iter().all(|&rr| rr > 100.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod corpus;
pub mod synth;

pub use analysis::{analyze, rr_variability, AnalysisReport, PeakRow};
pub use corpus::{build_corpus, build_rr_index, EcgCorpus};
pub use synth::{synthesize, EcgSpec};
