//! R-peak analysis through the representation (§5.2 steps 1–4).
//!
//! The pipeline is the paper's: break the ECG with the linear-interpolation
//! algorithm at ε=10, represent subsequences by their interpolation lines,
//! find peaks from the slopes of the representing functions, build Table 1
//! (per-peak rising/descending functions with subsequence start/end points),
//! and derive the R–R interval sequence.

use saq_core::alphabet::DEFAULT_THETA;
use saq_core::brk::{Breaker, LinearInterpolationBreaker};
use saq_core::features::PeakTable;
use saq_core::repr::LinearSeries;
use saq_core::Result;
use saq_curves::{Curve, EndpointInterpolator, Line};
use saq_sequence::{Point, Sequence};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct PeakRow {
    /// 1-based peak number (Table 1 numbers peaks from 1).
    pub peak: usize,
    /// Rising function.
    pub rising: Line,
    /// Start point of the rising subsequence.
    pub r_start: Point,
    /// End point of the rising subsequence.
    pub r_end: Point,
    /// Descending function.
    pub descending: Line,
    /// Start point of the descending subsequence.
    pub d_start: Point,
    /// End point of the descending subsequence.
    pub d_end: Point,
}

impl PeakRow {
    /// Apex position: the endpoint (REnd vs DStart) with larger amplitude.
    pub fn apex(&self) -> Point {
        if self.r_end.v >= self.d_start.v {
            self.r_end
        } else {
            self.d_start
        }
    }
}

/// The full analysis of one ECG segment.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The piecewise-linear representation (interpolation lines, as in
    /// Fig. 9).
    pub series: LinearSeries,
    /// All detected peaks (R waves and any large T waves).
    pub all_peaks: PeakTable<Line>,
    /// Table 1, filtered to R peaks.
    pub r_peaks: Vec<PeakRow>,
}

impl AnalysisReport {
    /// "The result is a sequence of distances between peaks" — R–R
    /// intervals in samples.
    pub fn rr_intervals(&self) -> Vec<f64> {
        self.r_peaks.windows(2).map(|w| w[1].apex().t - w[0].apex().t).collect()
    }

    /// Intervals rounded to integer buckets for the inverted-file index.
    pub fn rr_buckets(&self) -> Vec<i64> {
        self.rr_intervals().iter().map(|&d| d.round() as i64).collect()
    }

    /// Renders Table 1 in the paper's column layout.
    pub fn table1(&self) -> String {
        let mut out = String::from(
            "Peak | Rising Function | RStart | REnd | Descending Function | DStart | DEnd\n",
        );
        for row in &self.r_peaks {
            out.push_str(&format!(
                "{:>4} | {:>15} | ({:.0},{:.0}) | ({:.0},{:.0}) | {:>19} | ({:.0},{:.0}) | ({:.0},{:.0})\n",
                row.peak,
                row.rising.formula(),
                row.r_start.t,
                row.r_start.v,
                row.r_end.t,
                row.r_end.v,
                row.descending.formula(),
                row.d_start.t,
                row.d_start.v,
                row.d_end.t,
                row.d_end.v,
            ));
        }
        out
    }
}

/// Analyzes an ECG: breaks at ε (the paper uses 10), represents with
/// interpolation lines, extracts peaks, and keeps as R peaks those whose
/// apex amplitude reaches half the segment maximum.
pub fn analyze(ecg: &Sequence, epsilon: f64) -> Result<AnalysisReport> {
    // Coalescing keeps the inter-beat baseline as single flat segments,
    // matching the paper's ~10-segment representations of Fig. 9.
    let ranges = LinearInterpolationBreaker::coalescing(epsilon).break_ranges(ecg);
    let series = LinearSeries::build(ecg, &ranges, &EndpointInterpolator)?;
    let all_peaks = PeakTable::extract(&series, DEFAULT_THETA);
    let threshold = 0.5 * ecg.stats().max;
    let r_peaks = all_peaks
        .peaks
        .iter()
        .filter(|p| p.amplitude() >= threshold)
        .enumerate()
        .map(|(i, p)| PeakRow {
            peak: i + 1,
            rising: p.rising,
            r_start: p.r_start,
            r_end: p.r_end,
            descending: p.descending,
            d_start: p.d_start,
            d_end: p.d_end,
        })
        .collect();
    Ok(AnalysisReport { series, all_peaks, r_peaks })
}

/// R–R variability: coefficient of variation (σ/μ) of the interval
/// sequence — the triage statistic a physician would derive from the
/// representation to flag irregular rhythms. `None` with fewer than two
/// intervals.
pub fn rr_variability(report: &AnalysisReport) -> Option<f64> {
    let rrs = report.rr_intervals();
    if rrs.len() < 2 {
        return None;
    }
    let n = rrs.len() as f64;
    let mean = rrs.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return None;
    }
    let var = rrs.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
    Some(var.sqrt() / mean)
}

/// Steepness sanity helper: R flanks must be much steeper than P/T flanks;
/// returns the minimum |slope| across R rising/descending functions.
pub fn min_r_flank_slope(report: &AnalysisReport) -> f64 {
    report
        .r_peaks
        .iter()
        .flat_map(|r| [r.rising.derivative(0.0).abs(), r.descending.derivative(0.0).abs()])
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, true_r_positions, EcgSpec};

    #[test]
    fn detects_all_four_r_peaks() {
        let spec = EcgSpec::default();
        let report = analyze(&synthesize(spec), 10.0).unwrap();
        let truth = true_r_positions(&spec);
        assert_eq!(report.r_peaks.len(), truth.len(), "{:?}", report.r_peaks);
        for (row, want) in report.r_peaks.iter().zip(&truth) {
            assert!(
                (row.apex().t - want).abs() <= 3.0,
                "peak {} at {} want {want}",
                row.peak,
                row.apex().t
            );
        }
    }

    #[test]
    fn rr_intervals_match_spec() {
        let spec = EcgSpec { rr: 149.0, ..EcgSpec::default() };
        let report = analyze(&synthesize(spec), 10.0).unwrap();
        let rrs = report.rr_intervals();
        assert!(!rrs.is_empty());
        for rr in &rrs {
            assert!((rr - 149.0).abs() <= 3.0, "rr {rr}");
        }
        for b in report.rr_buckets() {
            assert!((b - 149).abs() <= 3, "bucket {b}");
        }
    }

    #[test]
    fn compression_is_about_a_factor_of_twelve() {
        // §5.2: "500 points sequences are represented by about 10 function
        // segments... about a factor of 12 reduction in space."
        let report = analyze(&synthesize(EcgSpec::default()), 10.0).unwrap();
        let c = report.series.compression();
        assert!((8..=26).contains(&c.segments), "{} segments", c.segments);
        assert!(c.ratio() > 4.0, "ratio {}", c.ratio());
    }

    #[test]
    fn r_flanks_are_steep() {
        let report = analyze(&synthesize(EcgSpec::default()), 10.0).unwrap();
        // Table 1 shows R flank slopes of ~±15-26; ours are the same order.
        let steep = min_r_flank_slope(&report);
        assert!(steep > 5.0, "min flank slope {steep}");
    }

    #[test]
    fn noise_tolerated_at_paper_epsilon() {
        let spec = EcgSpec { noise: 3.0, rr_jitter: 3.0, ..EcgSpec::default() };
        let report = analyze(&synthesize(spec), 10.0).unwrap();
        assert_eq!(report.r_peaks.len(), 4, "{:?}", report.rr_intervals());
    }

    #[test]
    fn t_waves_do_not_become_r_peaks() {
        let report = analyze(&synthesize(EcgSpec::default()), 10.0).unwrap();
        // All R rows reach at least half max; T waves (~28% of R) are
        // excluded by the threshold even if they appear in all_peaks.
        for row in &report.r_peaks {
            assert!(row.apex().v > 60.0);
        }
        assert!(report.all_peaks.len() >= report.r_peaks.len());
    }

    #[test]
    fn table1_renders_all_columns() {
        let report = analyze(&synthesize(EcgSpec::default()), 10.0).unwrap();
        let table = report.table1();
        assert!(table.contains("Rising Function"));
        assert!(table.lines().count() >= 4);
        // Slope/intercept formulas present.
        assert!(table.contains('x'));
    }

    #[test]
    fn rr_variability_separates_regular_from_irregular() {
        // Regular rhythm: near-zero variability.
        let regular =
            analyze(&synthesize(EcgSpec { n: 1500, ..EcgSpec::default() }), 10.0).unwrap();
        let v_reg = rr_variability(&regular).unwrap();
        assert!(v_reg < 0.02, "regular CV {v_reg}");
        // Heavy jitter: clearly higher variability.
        let irregular = analyze(
            &synthesize(EcgSpec { n: 1500, rr_jitter: 25.0, seed: 77, ..EcgSpec::default() }),
            10.0,
        )
        .unwrap();
        let v_irr = rr_variability(&irregular).unwrap();
        assert!(v_irr > 3.0 * v_reg, "irregular CV {v_irr} vs {v_reg}");
        // Too few intervals -> None.
        let short = analyze(&synthesize(EcgSpec { n: 220, ..EcgSpec::default() }), 10.0).unwrap();
        assert!(rr_variability(&short).is_none() || short.rr_intervals().len() >= 2);
    }

    #[test]
    fn representation_tracks_the_signal_within_epsilon() {
        let ecg = synthesize(EcgSpec::default());
        let report = analyze(&ecg, 10.0).unwrap();
        let dev = report.series.max_deviation_from(&ecg);
        assert!(dev <= 10.0 + 1e-9, "dev {dev}");
    }
}
