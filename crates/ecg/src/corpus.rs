//! ECG corpora and the inverted-file R–R query of §5.2/Fig. 10.

use crate::analysis::{analyze, AnalysisReport};
use crate::synth::{synthesize, EcgSpec};
use saq_core::Result;
use saq_index::InvertedIndex;
use saq_sequence::Sequence;

/// A corpus of ECG segments with their analyses.
#[derive(Debug, Clone)]
pub struct EcgCorpus {
    /// `(id, raw segment, analysis)` triples; ids start at 1.
    pub entries: Vec<(u64, Sequence, AnalysisReport)>,
}

impl EcgCorpus {
    /// Number of ECGs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The analysis of a given id.
    pub fn report(&self, id: u64) -> Option<&AnalysisReport> {
        self.entries.iter().find(|(eid, _, _)| *eid == id).map(|(_, _, r)| r)
    }
}

/// Builds a corpus of `count` ECG segments whose base R–R intervals sweep
/// `rr_range` uniformly, with mild jitter and noise; broken at ε=10 like the
/// paper's experiments.
pub fn build_corpus(count: usize, rr_range: (f64, f64), seed: u64) -> Result<EcgCorpus> {
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let frac = if count > 1 { i as f64 / (count - 1) as f64 } else { 0.0 };
        let rr = rr_range.0 + frac * (rr_range.1 - rr_range.0);
        let spec = EcgSpec {
            rr,
            rr_jitter: 1.5,
            noise: 2.0,
            seed: seed.wrapping_add(i as u64),
            ..EcgSpec::default()
        };
        let ecg = synthesize(spec);
        let report = analyze(&ecg, 10.0)?;
        entries.push((i as u64 + 1, ecg, report));
    }
    Ok(EcgCorpus { entries })
}

/// Builds the Fig. 10 inverted file over the corpus: bucket key = R–R
/// interval length (samples), postings = `(ecg id, interval position)`.
pub fn build_rr_index(corpus: &EcgCorpus) -> InvertedIndex {
    let mut idx = InvertedIndex::new();
    for (id, _, report) in &corpus.entries {
        for (pos, bucket) in report.rr_buckets().into_iter().enumerate() {
            idx.add(bucket, *id, pos as u32);
        }
    }
    idx
}

/// The §5.2 query: "find all ECGs with R–R intervals of length n ± ε".
pub fn rr_query(index: &InvertedIndex, n: i64, epsilon: i64) -> Vec<u64> {
    index.matching_sequences(n, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_reproducible_and_sized() {
        let a = build_corpus(5, (120.0, 160.0), 7).unwrap();
        let b = build_corpus(5, (120.0, 160.0), 7).unwrap();
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        for ((_, x, _), (_, y, _)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn rr_query_selects_the_right_ecgs() {
        // 5 ECGs with rr = 120, 130, 140, 150, 160.
        let corpus = build_corpus(5, (120.0, 160.0), 42).unwrap();
        let index = build_rr_index(&corpus);
        // Query 130 ± 4: should return the rr=130 ECG (id 2) and nothing
        // far away like id 5.
        let hits = rr_query(&index, 130, 4);
        assert!(hits.contains(&2), "{hits:?}");
        assert!(!hits.contains(&5), "{hits:?}");
        // A query far outside the sweep matches nothing.
        assert!(rr_query(&index, 400, 10).is_empty());
    }

    #[test]
    fn paper_example_136_pm_3() {
        // Reproduce §5.2's worked example: top ECG has intervals {149,149},
        // bottom has {136,137,136}; query 136±3 returns only the bottom.
        let top = analyze(&synthesize(EcgSpec { rr: 149.0, ..EcgSpec::default() }), 10.0).unwrap();
        let bottom =
            analyze(&synthesize(EcgSpec { rr: 136.0, ..EcgSpec::default() }), 10.0).unwrap();
        let mut idx = InvertedIndex::new();
        for (pos, b) in top.rr_buckets().into_iter().enumerate() {
            idx.add(b, 1, pos as u32);
        }
        for (pos, b) in bottom.rr_buckets().into_iter().enumerate() {
            idx.add(b, 2, pos as u32);
        }
        assert_eq!(rr_query(&idx, 136, 3), vec![2]);
        assert_eq!(rr_query(&idx, 149, 3), vec![1]);
    }

    #[test]
    fn report_lookup() {
        let corpus = build_corpus(3, (130.0, 150.0), 1).unwrap();
        assert!(corpus.report(2).is_some());
        assert!(corpus.report(99).is_none());
    }
}
