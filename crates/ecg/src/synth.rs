//! ECG synthesis: Gaussian P-QRS-T morphology on a configurable beat grid.
//!
//! Amplitudes are in the same arbitrary ADC-like units as Fig. 9
//! (≈ −150..150), and the default beat interval reproduces the paper's
//! R–R distances of ~136–149 samples within 500-sample segments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saq_sequence::generators::{bump, gaussian};
use saq_sequence::{Point, Sequence};

/// Specification of a synthetic ECG segment.
#[derive(Debug, Clone, Copy)]
pub struct EcgSpec {
    /// Number of samples.
    pub n: usize,
    /// Sample index of the first R peak.
    pub first_r: f64,
    /// Base R–R interval in samples (the paper's segments show ~136–149).
    pub rr: f64,
    /// Per-beat R–R jitter (uniform ±, in samples); 0 = perfectly regular.
    pub rr_jitter: f64,
    /// R-wave amplitude.
    pub r_amp: f64,
    /// Additive Gaussian noise σ.
    pub noise: f64,
    /// Amplitude of slow baseline wander (respiration-like).
    pub wander: f64,
    /// RNG seed for jitter/noise.
    pub seed: u64,
}

impl Default for EcgSpec {
    fn default() -> Self {
        EcgSpec {
            n: 500,
            first_r: 60.0,
            rr: 136.0,
            rr_jitter: 0.0,
            r_amp: 130.0,
            noise: 0.0,
            wander: 0.0,
            seed: 0xEC60,
        }
    }
}

/// Gaussian low-amplitude waves relative to the R peak, in samples
/// `(offset, width, amplitude-fraction of r_amp)`. P and T are kept below
/// the paper's breaking tolerance ε=10 — on their real ECG plots (Fig. 9)
/// P/T are barely visible and absorbed by the flat segments.
const WAVES: [(f64, f64, f64); 3] = [
    (-34.0, 7.0, 0.06),  // P
    (-12.0, 2.5, -0.05), // Q
    (42.0, 10.0, 0.07),  // T
];

/// QRS spike geometry: a digitized R wave at this sample rate is essentially
/// piecewise linear — a steep rise, a steep fall overshooting into the S
/// trough, and a linear recovery (matching Table 1's straight rising and
/// descending functions with slopes ≈ ±22).
const R_RISE: f64 = 6.0;
const R_FALL: f64 = 7.0;
const S_FRAC: f64 = -0.22;
const S_RECOVER: f64 = 8.0;

/// Piecewise-linear QRS contribution at offset `x = t - r_position`.
fn qrs(x: f64, amp: f64) -> f64 {
    if (-R_RISE..=0.0).contains(&x) {
        amp * (1.0 + x / R_RISE)
    } else if (0.0..=R_FALL).contains(&x) {
        // From +amp down to the S trough.
        amp + (S_FRAC * amp - amp) * (x / R_FALL)
    } else if (R_FALL..=R_FALL + S_RECOVER).contains(&x) {
        S_FRAC * amp * (1.0 - (x - R_FALL) / S_RECOVER)
    } else {
        0.0
    }
}

/// Synthesizes an ECG segment.
pub fn synthesize(spec: EcgSpec) -> Sequence {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Lay out R-peak positions.
    let mut r_positions = Vec::new();
    let mut r = spec.first_r;
    while r < spec.n as f64 + spec.rr {
        r_positions.push(r);
        let jitter = if spec.rr_jitter > 0.0 {
            (rng.random::<f64>() * 2.0 - 1.0) * spec.rr_jitter
        } else {
            0.0
        };
        r += spec.rr + jitter;
    }
    // Also one beat before the window so early P/T tails are present.
    let lead_in = spec.first_r - spec.rr;
    let all_r: Vec<f64> = std::iter::once(lead_in).chain(r_positions).collect();

    let points = (0..spec.n)
        .map(|i| {
            let t = i as f64;
            let mut v = 0.0;
            for &rpos in &all_r {
                v += qrs(t - rpos, spec.r_amp);
                for (offset, width, frac) in WAVES {
                    let center = rpos + offset;
                    if (t - center).abs() < 6.0 * width {
                        v += bump(t, center, width, frac * spec.r_amp);
                    }
                }
            }
            if spec.wander > 0.0 {
                v += spec.wander * (t * std::f64::consts::TAU / 350.0).sin();
            }
            if spec.noise > 0.0 {
                v += spec.noise * gaussian(&mut rng);
            }
            Point::new(t, v)
        })
        .collect();
    Sequence::new(points).expect("synthesizer produces valid sequences")
}

/// True R-peak sample positions of a spec with no jitter — ground truth for
/// detector tests.
pub fn true_r_positions(spec: &EcgSpec) -> Vec<f64> {
    assert!(spec.rr_jitter == 0.0, "ground truth requires jitter 0");
    let mut out = Vec::new();
    let mut r = spec.first_r;
    while r < spec.n as f64 {
        out.push(r);
        r += spec.rr;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_figure9() {
        let ecg = synthesize(EcgSpec::default());
        assert_eq!(ecg.len(), 500);
        let stats = ecg.stats();
        // Fig. 9's axis: roughly -150..150.
        assert!(stats.max > 100.0 && stats.max < 160.0, "max {}", stats.max);
        assert!(stats.min < -20.0, "min {}", stats.min);
        // Four R peaks fit in 500 samples at rr=136 starting at 60.
        assert_eq!(true_r_positions(&EcgSpec::default()).len(), 4);
    }

    #[test]
    fn r_peaks_at_expected_positions() {
        let spec = EcgSpec::default();
        let ecg = synthesize(spec);
        for rpos in true_r_positions(&spec) {
            let idx = rpos as usize;
            let v = ecg[idx].v;
            assert!(v > 0.9 * spec.r_amp, "at {idx}: {v}");
            // Local maximum within ±5 samples.
            for d in 1..=5usize {
                assert!(ecg[idx].v >= ecg[idx - d].v);
                if idx + d < ecg.len() {
                    assert!(ecg[idx].v >= ecg[idx + d].v);
                }
            }
        }
    }

    #[test]
    fn p_and_t_waves_present_but_small() {
        let spec = EcgSpec::default();
        let ecg = synthesize(spec);
        // T wave ~42 samples after the first R; sub-ε so the breaker can
        // absorb it (the paper's real ECGs show barely visible P/T).
        let t_idx = (spec.first_r + 42.0) as usize;
        let t_amp = ecg[t_idx].v;
        assert!(t_amp > 5.0 && t_amp < 10.0, "T amplitude {t_amp}");
        // P wave before R, small positive.
        let p_idx = (spec.first_r - 34.0) as usize;
        assert!(ecg[p_idx].v > 4.0 && ecg[p_idx].v < 10.0, "P {}", ecg[p_idx].v);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = EcgSpec { noise: 3.0, rr_jitter: 4.0, ..EcgSpec::default() };
        assert_eq!(synthesize(spec), synthesize(spec));
        let other = EcgSpec { seed: 1, ..spec };
        assert_ne!(synthesize(spec), synthesize(other));
    }

    #[test]
    fn wander_shifts_baseline() {
        let calm = synthesize(EcgSpec::default());
        let wavy = synthesize(EcgSpec { wander: 20.0, ..EcgSpec::default() });
        // Between beats, the wavy baseline departs from zero.
        let quiet_idx = 130; // past the T wave of beat 1 (R=60), before P of beat 2
        assert!(calm[quiet_idx].v.abs() < 6.0);
        assert!((wavy[quiet_idx].v - calm[quiet_idx].v).abs() > 5.0);
    }

    #[test]
    fn custom_rr_changes_beat_count() {
        let slow = EcgSpec { rr: 200.0, ..EcgSpec::default() };
        assert_eq!(true_r_positions(&slow).len(), 3);
        let fast = EcgSpec { rr: 100.0, ..EcgSpec::default() };
        assert_eq!(true_r_positions(&fast).len(), 5);
    }
}
