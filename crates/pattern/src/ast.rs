/// Abstract syntax of the pattern language.
///
/// Operators follow standard regular-expression semantics; symbols are
/// alphabet ids assigned by [`crate::Alphabet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Epsilon,
    /// Matches a single symbol.
    Symbol(u8),
    /// Concatenation `ab`.
    Concat(Box<Ast>, Box<Ast>),
    /// Alternation `a|b`.
    Alt(Box<Ast>, Box<Ast>),
    /// Kleene star `a*`.
    Star(Box<Ast>),
    /// One-or-more `a+`.
    Plus(Box<Ast>),
    /// Zero-or-one `a?`.
    Optional(Box<Ast>),
}

impl Ast {
    /// Concatenates a list of ASTs (empty list → epsilon).
    pub fn concat_all(parts: Vec<Ast>) -> Ast {
        parts
            .into_iter()
            .reduce(|a, b| Ast::Concat(Box::new(a), Box::new(b)))
            .unwrap_or(Ast::Epsilon)
    }

    /// Whether the language of this AST contains the empty string.
    pub fn nullable(&self) -> bool {
        match self {
            Ast::Epsilon => true,
            Ast::Symbol(_) => false,
            Ast::Concat(a, b) => a.nullable() && b.nullable(),
            Ast::Alt(a, b) => a.nullable() || b.nullable(),
            Ast::Star(_) | Ast::Optional(_) => true,
            Ast::Plus(a) => a.nullable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_all_reduces() {
        let a = Ast::Symbol(0);
        let b = Ast::Symbol(1);
        let c = Ast::concat_all(vec![a.clone(), b.clone()]);
        assert_eq!(c, Ast::Concat(Box::new(a), Box::new(b)));
        assert_eq!(Ast::concat_all(vec![]), Ast::Epsilon);
    }

    #[test]
    fn nullability() {
        use Ast::*;
        assert!(Epsilon.nullable());
        assert!(!Symbol(0).nullable());
        assert!(Star(Box::new(Symbol(0))).nullable());
        assert!(Optional(Box::new(Symbol(0))).nullable());
        assert!(!Plus(Box::new(Symbol(0))).nullable());
        assert!(Plus(Box::new(Star(Box::new(Symbol(0))))).nullable());
        assert!(!Concat(Box::new(Epsilon), Box::new(Symbol(1))).nullable());
        assert!(Alt(Box::new(Epsilon), Box::new(Symbol(1))).nullable());
    }
}
