use std::fmt;

/// Errors from alphabet construction, parsing and encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The alphabet was empty or contained duplicate symbols.
    BadAlphabet(String),
    /// A character outside the alphabet appeared in input text.
    UnknownSymbol {
        /// The offending character.
        ch: char,
    },
    /// Pattern syntax error.
    Syntax {
        /// Byte offset in the pattern string.
        position: usize,
        /// Description.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadAlphabet(msg) => write!(f, "bad alphabet: {msg}"),
            Error::UnknownSymbol { ch } => write!(f, "unknown symbol `{ch}`"),
            Error::Syntax { position, message } => {
                write!(f, "pattern syntax error at {position}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::BadAlphabet("dup".into()).to_string().contains("dup"));
        assert!(Error::UnknownSymbol { ch: 'z' }.to_string().contains('z'));
        assert!(Error::Syntax { position: 3, message: "eh".into() }.to_string().contains('3'));
    }
}
