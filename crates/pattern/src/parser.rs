//! Recursive-descent parser for the pattern language.
//!
//! Grammar (whitespace between tokens is ignored):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat+
//! repeat := atom ('*' | '+' | '?')*
//! atom   := SYMBOL | '(' alt ')'
//! ```
//!
//! `SYMBOL` is any single character belonging to the [`Alphabet`]. The
//! paper's `(-1)` notation for the Down symbol is handled by
//! `saq-core::alphabet::parse_slope_pattern`, which rewrites it into a
//! single-character symbol before calling this parser.

use crate::alphabet::Alphabet;
use crate::ast::Ast;
use crate::dfa::Dfa;
use crate::error::{Error, Result};
use crate::nfa::Nfa;

/// A parsed pattern, ready to compile into a [`Dfa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regex {
    ast: Ast,
    alphabet_size: usize,
}

impl Regex {
    /// Parses `pattern` over `alphabet`.
    pub fn parse(pattern: &str, alphabet: &Alphabet) -> Result<Regex> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars: &chars, pos: 0, alphabet };
        p.skip_ws();
        if p.at_end() {
            return Ok(Regex { ast: Ast::Epsilon, alphabet_size: alphabet.len() });
        }
        let ast = p.parse_alt()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(Error::Syntax {
                position: p.pos,
                message: format!("unexpected `{}`", p.chars[p.pos]),
            });
        }
        Ok(Regex { ast, alphabet_size: alphabet.len() })
    }

    /// Builds a regex directly from an AST.
    pub fn from_ast(ast: Ast, alphabet_size: usize) -> Regex {
        Regex { ast, alphabet_size }
    }

    /// The underlying AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Compiles to a Thompson NFA.
    pub fn to_nfa(&self) -> Nfa {
        Nfa::from_ast(&self.ast)
    }

    /// Compiles to a DFA via subset construction.
    pub fn compile(&self) -> Dfa {
        Dfa::from_nfa(&self.to_nfa(), self.alphabet_size)
    }
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    alphabet: &'a Alphabet,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_alt(&mut self) -> Result<Ast> {
        let mut node = self.parse_concat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.pos += 1;
                let rhs = self.parse_concat()?;
                node = Ast::Alt(Box::new(node), Box::new(rhs));
            } else {
                return Ok(node);
            }
        }
    }

    fn parse_concat(&mut self) -> Result<Ast> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => parts.push(self.parse_repeat()?),
            }
        }
        if parts.is_empty() {
            return Err(Error::Syntax { position: self.pos, message: "empty branch".into() });
        }
        Ok(Ast::concat_all(parts))
    }

    fn parse_repeat(&mut self) -> Result<Ast> {
        let mut node = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    node = Ast::Star(Box::new(node));
                }
                Some('+') => {
                    self.pos += 1;
                    node = Ast::Plus(Box::new(node));
                }
                Some('?') => {
                    self.pos += 1;
                    node = Ast::Optional(Box::new(node));
                }
                _ => return Ok(node),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<Ast> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(Error::Syntax {
                        position: self.pos,
                        message: "expected `)`".into(),
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(c) => match self.alphabet.id_of(c) {
                Some(id) => {
                    self.pos += 1;
                    Ok(Ast::Symbol(id))
                }
                None => Err(Error::Syntax {
                    position: self.pos,
                    message: format!("`{c}` is not in the alphabet"),
                }),
            },
            None => Err(Error::Syntax { position: self.pos, message: "unexpected end".into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(&['u', 'd', 'f']).unwrap()
    }

    #[test]
    fn parses_symbols_and_concat() {
        let r = Regex::parse("ud", &ab()).unwrap();
        assert_eq!(*r.ast(), Ast::Concat(Box::new(Ast::Symbol(0)), Box::new(Ast::Symbol(1))));
    }

    #[test]
    fn whitespace_ignored() {
        let a = Regex::parse("u d f", &ab()).unwrap();
        let b = Regex::parse("udf", &ab()).unwrap();
        assert_eq!(a.ast(), b.ast());
    }

    #[test]
    fn repetition_binds_tighter_than_concat() {
        let r = Regex::parse("ud*", &ab()).unwrap();
        assert_eq!(
            *r.ast(),
            Ast::Concat(Box::new(Ast::Symbol(0)), Box::new(Ast::Star(Box::new(Ast::Symbol(1)))))
        );
    }

    #[test]
    fn alternation_lowest_precedence() {
        let r = Regex::parse("u|df", &ab()).unwrap();
        match r.ast() {
            Ast::Alt(l, _) => assert_eq!(**l, Ast::Symbol(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn groups_and_stacked_operators() {
        let r = Regex::parse("(ud)+?", &ab()).unwrap();
        match r.ast() {
            Ast::Optional(inner) => match &**inner {
                Ast::Plus(_) => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        let r = Regex::parse("   ", &ab()).unwrap();
        assert_eq!(*r.ast(), Ast::Epsilon);
    }

    #[test]
    fn error_positions() {
        assert!(matches!(Regex::parse("u(d", &ab()), Err(Error::Syntax { .. })));
        assert!(matches!(Regex::parse("uz", &ab()), Err(Error::Syntax { position: 1, .. })));
        assert!(matches!(Regex::parse("|u", &ab()), Err(Error::Syntax { .. })));
        assert!(matches!(Regex::parse("u)", &ab()), Err(Error::Syntax { .. })));
    }

    #[test]
    fn goalpost_pattern_parses() {
        let r = Regex::parse("f* u+ d+ f* u+ d+ f*", &ab());
        assert!(r.is_ok());
    }
}
