use crate::error::{Error, Result};

/// A finite alphabet of single-`char` symbols, each assigned a dense `u8` id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    chars: Vec<char>,
}

impl Alphabet {
    /// Builds an alphabet; symbols must be distinct, non-empty, and at most
    /// 255 of them.
    pub fn new(chars: &[char]) -> Result<Alphabet> {
        if chars.is_empty() {
            return Err(Error::BadAlphabet("alphabet is empty".into()));
        }
        if chars.len() > 255 {
            return Err(Error::BadAlphabet("alphabet too large".into()));
        }
        for (i, c) in chars.iter().enumerate() {
            if chars[..i].contains(c) {
                return Err(Error::BadAlphabet(format!("duplicate symbol `{c}`")));
            }
        }
        Ok(Alphabet { chars: chars.to_vec() })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the alphabet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Id of a character, if it belongs to the alphabet.
    pub fn id_of(&self, ch: char) -> Option<u8> {
        self.chars.iter().position(|&c| c == ch).map(|i| i as u8)
    }

    /// Character of an id, if in range.
    pub fn char_of(&self, id: u8) -> Option<char> {
        self.chars.get(id as usize).copied()
    }

    /// Encodes a string of symbol characters into ids.
    pub fn encode(&self, text: &str) -> Result<Vec<u8>> {
        text.chars().map(|ch| self.id_of(ch).ok_or(Error::UnknownSymbol { ch })).collect()
    }

    /// Decodes ids back into a string (ids must be valid).
    pub fn decode(&self, ids: &[u8]) -> Result<String> {
        ids.iter().map(|&id| self.char_of(id).ok_or(Error::UnknownSymbol { ch: '?' })).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ab = Alphabet::new(&['a', 'b', 'c']).unwrap();
        let ids = ab.encode("cab").unwrap();
        assert_eq!(ids, vec![2, 0, 1]);
        assert_eq!(ab.decode(&ids).unwrap(), "cab");
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(Alphabet::new(&[]).is_err());
        assert!(Alphabet::new(&['x', 'x']).is_err());
    }

    #[test]
    fn unknown_symbol_reported() {
        let ab = Alphabet::new(&['a']).unwrap();
        assert_eq!(ab.encode("az").unwrap_err(), Error::UnknownSymbol { ch: 'z' });
        assert!(ab.decode(&[9]).is_err());
    }

    #[test]
    fn id_lookup() {
        let ab = Alphabet::new(&['u', 'd', 'f']).unwrap();
        assert_eq!(ab.id_of('d'), Some(1));
        assert_eq!(ab.id_of('q'), None);
        assert_eq!(ab.char_of(2), Some('f'));
        assert_eq!(ab.char_of(9), None);
    }
}
