//! Deterministic automaton via subset construction, plus scanning helpers.
//!
//! The index of §4.4 answers "positions of the first point of all stored
//! sequences that match the pattern" — [`Dfa::find_matches`] provides that
//! scan over a symbol string.

use crate::nfa::Nfa;
use std::collections::HashMap;

/// A match occurrence inside a symbol string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Start offset (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl Match {
    /// Length of the matched run.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A dense-table DFA over alphabet ids `0..alphabet_size`.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `transitions[state * alphabet_size + symbol]`, `usize::MAX` = dead.
    transitions: Vec<usize>,
    accepting: Vec<bool>,
    alphabet_size: usize,
    start: usize,
}

const DEAD: usize = usize::MAX;

impl Dfa {
    /// Subset construction from a Thompson NFA.
    pub fn from_nfa(nfa: &Nfa, alphabet_size: usize) -> Dfa {
        let start_set = nfa.epsilon_closure(&[nfa.start]);
        let mut ids: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut transitions: Vec<usize> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        ids.insert(start_set.clone(), 0);
        sets.push(start_set);
        let mut next_unprocessed = 0;

        while next_unprocessed < sets.len() {
            let current = sets[next_unprocessed].clone();
            next_unprocessed += 1;
            accepting.push(current.contains(&nfa.accept));
            let base = transitions.len();
            transitions.resize(base + alphabet_size, DEAD);
            for sym in 0..alphabet_size {
                let mut moved: Vec<usize> = Vec::new();
                for &s in &current {
                    for &(edge_sym, t) in &nfa.states[s].on_symbol {
                        if edge_sym as usize == sym {
                            moved.push(t);
                        }
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let closure = nfa.epsilon_closure(&moved);
                let id = *ids.entry(closure.clone()).or_insert_with(|| {
                    sets.push(closure);
                    sets.len() - 1
                });
                transitions[base + sym] = id;
            }
        }

        Dfa { transitions, accepting, alphabet_size, start: 0 }
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    #[inline]
    fn step(&self, state: usize, sym: u8) -> usize {
        debug_assert!((sym as usize) < self.alphabet_size, "symbol outside alphabet");
        self.transitions[state * self.alphabet_size + sym as usize]
    }

    /// Does the DFA accept exactly `input`?
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut state = self.start;
        for &sym in input {
            state = self.step(state, sym);
            if state == DEAD {
                return false;
            }
        }
        self.accepting[state]
    }

    /// Longest match starting at `start`, if any (possibly empty when the
    /// pattern is nullable).
    pub fn longest_match_at(&self, input: &[u8], start: usize) -> Option<Match> {
        let mut state = self.start;
        let mut best_end: Option<usize> = if self.accepting[state] { Some(start) } else { None };
        let mut pos = start;
        while pos < input.len() {
            state = self.step(state, input[pos]);
            if state == DEAD {
                break;
            }
            pos += 1;
            if self.accepting[state] {
                best_end = Some(pos);
            }
        }
        best_end.map(|end| Match { start, end })
    }

    /// All leftmost-longest, non-overlapping, non-empty matches.
    pub fn find_matches(&self, input: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < input.len() {
            match self.longest_match_at(input, pos) {
                Some(m) if !m.is_empty() => {
                    out.push(m);
                    pos = m.end;
                }
                _ => pos += 1,
            }
        }
        out
    }

    /// Start offsets of *all* (possibly overlapping) non-empty matches — the
    /// "positions of the first point" view the paper's index uses.
    pub fn match_starts(&self, input: &[u8]) -> Vec<usize> {
        (0..input.len())
            .filter(|&i| self.longest_match_at(input, i).is_some_and(|m| !m.is_empty()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::Regex;

    fn dfa(pattern: &str) -> Dfa {
        let ab = Alphabet::new(&['u', 'd', 'f']).unwrap();
        Regex::parse(pattern, &ab).unwrap().compile()
    }

    fn enc(text: &str) -> Vec<u8> {
        Alphabet::new(&['u', 'd', 'f']).unwrap().encode(text).unwrap()
    }

    #[test]
    fn agrees_with_nfa_on_goalpost() {
        let ab = Alphabet::new(&['u', 'd', 'f']).unwrap();
        let re = Regex::parse("f* u+ d+ f* u+ d+ f*", &ab).unwrap();
        let nfa = re.to_nfa();
        let dfa = re.compile();
        for text in ["uddud", "uudd", "fuudddffuddff", "", "ud", "ududud", "fff"] {
            let ids = ab.encode(text).unwrap();
            assert_eq!(nfa.is_match(&ids), dfa.is_match(&ids), "text {text}");
        }
    }

    #[test]
    fn two_peak_semantics() {
        let d = dfa("f* u+ d+ f* u+ d+ f*");
        assert!(d.is_match(&enc("uuddfudd")));
        assert!(d.is_match(&enc("udud")));
        assert!(!d.is_match(&enc("ud")), "one peak");
        assert!(!d.is_match(&enc("ududud")), "three peaks");
        assert!(!d.is_match(&enc("")), "no peaks");
    }

    #[test]
    fn longest_match_prefers_length() {
        let d = dfa("u+");
        let input = enc("uuudu");
        let m = d.longest_match_at(&input, 0).unwrap();
        assert_eq!((m.start, m.end), (0, 3));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn longest_match_none_when_dead() {
        let d = dfa("u");
        assert_eq!(d.longest_match_at(&enc("d"), 0), None);
    }

    #[test]
    fn nullable_pattern_gives_empty_match() {
        let d = dfa("u*");
        let m = d.longest_match_at(&enc("d"), 0).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn find_matches_non_overlapping() {
        let d = dfa("ud");
        let ms = d.find_matches(&enc("udfudud"));
        assert_eq!(
            ms,
            vec![
                Match { start: 0, end: 2 },
                Match { start: 3, end: 5 },
                Match { start: 5, end: 7 }
            ]
        );
    }

    #[test]
    fn match_starts_allows_overlap() {
        let d = dfa("u d? u?");
        let starts = d.match_starts(&enc("uud"));
        assert_eq!(starts, vec![0, 1]);
    }

    #[test]
    fn peak_scan_on_slope_string() {
        // A "peak" is u+ d+ — scan an ECG-like slope string.
        let d = dfa("u+ d+");
        let ms = d.find_matches(&enc("ffuudfffuddff"));
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0], Match { start: 2, end: 5 });
        assert_eq!(ms[1], Match { start: 8, end: 11 });
    }

    #[test]
    fn dfa_is_small_for_simple_patterns() {
        assert!(dfa("u+d+").state_count() <= 8);
    }
}
