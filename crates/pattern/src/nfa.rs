//! Thompson construction of a nondeterministic finite automaton.

use crate::ast::Ast;

/// A state's outgoing edges.
#[derive(Debug, Clone, Default)]
pub(crate) struct State {
    /// `(symbol id, target state)` transitions.
    pub(crate) on_symbol: Vec<(u8, usize)>,
    /// ε-transitions.
    pub(crate) epsilon: Vec<usize>,
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    pub(crate) states: Vec<State>,
    pub(crate) start: usize,
    pub(crate) accept: usize,
}

impl Nfa {
    /// Builds the NFA for an AST via Thompson's construction.
    pub fn from_ast(ast: &Ast) -> Nfa {
        let mut builder = Builder { states: Vec::new() };
        let (start, accept) = builder.build(ast);
        Nfa { states: builder.states, start, accept }
    }

    /// Number of states (for tests/benchmarks).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// ε-closure of a set of states, returned sorted and deduplicated.
    pub(crate) fn epsilon_closure(&self, seed: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<usize> = Vec::with_capacity(seed.len());
        for &s in seed {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.states[s].epsilon {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Direct NFA simulation: does the automaton accept exactly `input`?
    /// Slower than compiling to a DFA but allocation-light for one-shot use.
    pub fn is_match(&self, input: &[u8]) -> bool {
        let mut current = self.epsilon_closure(&[self.start]);
        for &sym in input {
            let mut next = Vec::new();
            for &s in &current {
                for &(edge_sym, t) in &self.states[s].on_symbol {
                    if edge_sym == sym {
                        next.push(t);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.epsilon_closure(&next);
        }
        current.contains(&self.accept)
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn build(&mut self, ast: &Ast) -> (usize, usize) {
        match ast {
            Ast::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].epsilon.push(a);
                (s, a)
            }
            Ast::Symbol(sym) => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].on_symbol.push((*sym, a));
                (s, a)
            }
            Ast::Concat(l, r) => {
                let (ls, la) = self.build(l);
                let (rs, ra) = self.build(r);
                self.states[la].epsilon.push(rs);
                (ls, ra)
            }
            Ast::Alt(l, r) => {
                let s = self.new_state();
                let a = self.new_state();
                let (ls, la) = self.build(l);
                let (rs, ra) = self.build(r);
                self.states[s].epsilon.push(ls);
                self.states[s].epsilon.push(rs);
                self.states[la].epsilon.push(a);
                self.states[ra].epsilon.push(a);
                (s, a)
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.states[s].epsilon.push(is);
                self.states[s].epsilon.push(a);
                self.states[ia].epsilon.push(is);
                self.states[ia].epsilon.push(a);
                (s, a)
            }
            Ast::Plus(inner) => {
                let (is, ia) = self.build(inner);
                let a = self.new_state();
                self.states[ia].epsilon.push(is);
                self.states[ia].epsilon.push(a);
                (is, a)
            }
            Ast::Optional(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.states[s].epsilon.push(is);
                self.states[s].epsilon.push(a);
                self.states[ia].epsilon.push(a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::parser::Regex;

    fn nfa(pattern: &str) -> Nfa {
        let ab = Alphabet::new(&['a', 'b', 'c']).unwrap();
        Regex::parse(pattern, &ab).unwrap().to_nfa()
    }

    fn enc(text: &str) -> Vec<u8> {
        Alphabet::new(&['a', 'b', 'c']).unwrap().encode(text).unwrap()
    }

    #[test]
    fn literal_match() {
        let n = nfa("abc");
        assert!(n.is_match(&enc("abc")));
        assert!(!n.is_match(&enc("ab")));
        assert!(!n.is_match(&enc("abcc")));
    }

    #[test]
    fn star_accepts_empty() {
        let n = nfa("a*");
        assert!(n.is_match(&enc("")));
        assert!(n.is_match(&enc("aaaa")));
        assert!(!n.is_match(&enc("ab")));
    }

    #[test]
    fn plus_requires_one() {
        let n = nfa("a+b");
        assert!(!n.is_match(&enc("b")));
        assert!(n.is_match(&enc("ab")));
        assert!(n.is_match(&enc("aaab")));
    }

    #[test]
    fn optional_both_ways() {
        let n = nfa("ab?c");
        assert!(n.is_match(&enc("ac")));
        assert!(n.is_match(&enc("abc")));
        assert!(!n.is_match(&enc("abbc")));
    }

    #[test]
    fn alternation() {
        let n = nfa("a|bc");
        assert!(n.is_match(&enc("a")));
        assert!(n.is_match(&enc("bc")));
        assert!(!n.is_match(&enc("ab")));
    }

    #[test]
    fn nested_groups() {
        let n = nfa("(a|b)*c");
        assert!(n.is_match(&enc("c")));
        assert!(n.is_match(&enc("ababbac")));
        assert!(!n.is_match(&enc("abab")));
    }

    #[test]
    fn epsilon_closure_is_sorted_unique() {
        let n = nfa("(a|b)*");
        let closure = n.epsilon_closure(&[n.start]);
        let mut sorted = closure.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(closure, sorted);
        assert!(closure.contains(&n.accept));
    }

    #[test]
    fn state_count_grows_with_pattern() {
        assert!(nfa("a").state_count() < nfa("(a|b)+(c|a)*").state_count());
    }
}
