//! # saq-pattern
//!
//! A small regular-expression engine over *symbolic alphabets* — the query
//! side of §4.4. The paper poses the goal-post fever query as the regular
//! expression `0* 1+ (-1)+ 0* 1+ (-1)+ 0*` over the slope-sign alphabet
//! `{+1, 0, -1}`; this crate supplies the pattern language and matching
//! machinery (Thompson NFA → subset-construction DFA) that `saq-core` and
//! `saq-index` build on.
//!
//! The engine is deliberately generic over any alphabet of up to 255
//! single-`char` symbols; `saq-core::alphabet` instantiates it for slope
//! signs.
//!
//! ```
//! use saq_pattern::{Alphabet, Regex};
//!
//! let ab = Alphabet::new(&['u', 'd', 'f']).unwrap();
//! let re = Regex::parse("f* u+ d+ f* u+ d+ f*", &ab).unwrap();
//! let dfa = re.compile();
//! let two_peaks: Vec<u8> = ab.encode("uuddfudd").unwrap();
//! assert!(dfa.is_match(&two_peaks));
//! let one_peak: Vec<u8> = ab.encode("uudd").unwrap();
//! assert!(!dfa.is_match(&one_peak));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alphabet;
mod ast;
mod dfa;
mod error;
mod nfa;
mod parser;

pub use alphabet::Alphabet;
pub use ast::Ast;
pub use dfa::{Dfa, Match};
pub use error::{Error, Result};
pub use nfa::Nfa;
pub use parser::Regex;
