use serde::{Deserialize, Serialize};

/// A single sample of a sequence: a timestamp `t` and a value `v`.
///
/// The paper treats sequences as ordered pairs `(x_i, y_i)`; `t` plays the
/// role of `x` (time, depth, position along a trace, ...) and `v` the role of
/// `y` (temperature, voltage, stock price, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Sample position on the ordering axis.
    pub t: f64,
    /// Sampled value.
    pub v: f64,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub fn new(t: f64, v: f64) -> Self {
        Point { t, v }
    }

    /// Both coordinates are finite (neither `NaN` nor infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.t.is_finite() && self.v.is_finite()
    }

    /// Euclidean distance to another point in the `(t, v)` plane.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dt = self.t - other.t;
        let dv = self.v - other.v;
        (dt * dt + dv * dv).sqrt()
    }

    /// Vertical (value-axis) distance to another point, ignoring time.
    #[inline]
    pub fn vertical_distance(&self, other: &Point) -> f64 {
        (self.v - other.v).abs()
    }
}

impl From<(f64, f64)> for Point {
    fn from((t, v): (f64, f64)) -> Self {
        Point::new(t, v)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.t, p.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        let p = Point::new(1.0, 2.0);
        let q: Point = (1.0, 2.0).into();
        assert_eq!(p, q);
        let tup: (f64, f64) = p.into();
        assert_eq!(tup, (1.0, 2.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.vertical_distance(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn vertical_distance_symmetric() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(9.0, 3.0);
        assert_eq!(a.vertical_distance(&b), b.vertical_distance(&a));
    }
}
