//! # saq-sequence
//!
//! The sequence data model underlying the SAQ (Sequence Approximate Queries)
//! workspace: timestamped real-valued series, descriptive statistics,
//! resampling, CSV I/O, and the synthetic workload generators used by the
//! experiments of Shatkay & Zdonik (ICDE 1996).
//!
//! The paper manipulates *digitized sequences*: ordered samples
//! `(x_0, y_0), ..., (x_n, y_n)` with `x` usually (but not necessarily)
//! uniformly spaced time. [`Sequence`] stores explicit `(t, v)` points so
//! both regular and irregular sampling are supported.
//!
//! ## Quick start
//!
//! ```
//! use saq_sequence::{Sequence, generators};
//!
//! // A 24-hour goal-post fever temperature log, sampled hourly.
//! let log = generators::goalpost(generators::GoalpostSpec::default());
//! assert_eq!(log.len(), 49);
//! let stats = log.stats();
//! assert!(stats.max > stats.min);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod generators;
pub mod io;
mod point;
mod resample;
mod sequence;
pub mod stats;

pub use error::{Error, Result};
pub use point::Point;
pub use resample::{resample_uniform, shift_to_origin, value_at};
pub use sequence::{Sequence, SequenceBuilder};
pub use stats::SummaryStats;
