//! Minimal CSV I/O for sequences.
//!
//! Domain experts in the paper's motivating scenario exchange raw dumps;
//! two-column `t,v` CSV is the lingua franca used by the examples and the
//! experiment binaries to persist generated corpora.

use crate::error::{Error, Result};
use crate::point::Point;
use crate::sequence::Sequence;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a sequence as `t,v` lines (no header).
pub fn write_csv<W: Write>(seq: &Sequence, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    for p in seq.points() {
        writeln!(w, "{},{}", p.t, p.v)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a sequence from `t,v` lines. Blank lines and lines starting with
/// `#` are ignored.
pub fn read_csv<R: Read>(input: R) -> Result<Sequence> {
    let reader = BufReader::new(input);
    let mut points = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(2, ',');
        let t_str = parts.next().unwrap_or("");
        let v_str = parts
            .next()
            .ok_or_else(|| Error::Parse { line: lineno + 1, message: "expected `t,v`".into() })?;
        let t: f64 = t_str.trim().parse().map_err(|e| Error::Parse {
            line: lineno + 1,
            message: format!("bad t `{t_str}`: {e}"),
        })?;
        let v: f64 = v_str.trim().parse().map_err(|e| Error::Parse {
            line: lineno + 1,
            message: format!("bad v `{v_str}`: {e}"),
        })?;
        points.push(Point::new(t, v));
    }
    Sequence::new(points)
}

/// Writes a sequence to a file path.
pub fn save<P: AsRef<Path>>(seq: &Sequence, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(seq, file)
}

/// Reads a sequence from a file path.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Sequence> {
    let file = std::fs::File::open(path)?;
    read_csv(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_memory() {
        let s = Sequence::from_samples(&[1.5, -2.25, 3.0]).unwrap();
        let mut buf = Vec::new();
        write_csv(&s, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0,1.0\n1, 2.0 \n";
        let s = read_csv(text.as_bytes()).unwrap();
        assert_eq!(s.values(), vec![1.0, 2.0]);
    }

    #[test]
    fn missing_column_is_parse_error() {
        let err = read_csv("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_number_reports_line() {
        let err = read_csv("0,1\n1,zebra\n".as_bytes()).unwrap_err();
        match err {
            Error::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("zebra"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_monotonic_file_rejected() {
        let err = read_csv("1,1\n0,2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::NonMonotonicTime { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("saq_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seq.csv");
        let s = Sequence::from_samples(&[9.0, 8.0, 7.0]).unwrap();
        save(&s, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
    }
}
