use crate::error::{Error, Result};
use crate::point::Point;
use crate::stats::SummaryStats;
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// An ordered sequence of timestamped samples.
///
/// Invariants (enforced on construction):
/// * timestamps are strictly increasing,
/// * every coordinate is finite.
///
/// `Sequence` is the raw-data side of the paper's world: what gets archived
/// on slow media and what the breaking algorithms of `saq-core` consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequence {
    points: Vec<Point>,
}

impl Sequence {
    /// Builds a sequence from points, validating the invariants.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(Error::NonFinite { index: i });
            }
            if i > 0 && points[i - 1].t >= p.t {
                return Err(Error::NonMonotonicTime { index: i });
            }
        }
        Ok(Sequence { points })
    }

    /// Builds a uniformly sampled sequence from raw values: point `i` gets
    /// timestamp `t0 + i * dt`.
    ///
    /// # Panics
    /// Panics if `dt <= 0`, which is a programming error rather than data
    /// dependent.
    pub fn from_values(t0: f64, dt: f64, values: &[f64]) -> Result<Self> {
        assert!(dt > 0.0, "sampling interval must be positive");
        let points =
            values.iter().enumerate().map(|(i, &v)| Point::new(t0 + i as f64 * dt, v)).collect();
        Sequence::new(points)
    }

    /// Builds a sequence sampled at integer times `0, 1, 2, ...`.
    pub fn from_samples(values: &[f64]) -> Result<Self> {
        Sequence::from_values(0.0, 1.0, values)
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sequence holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow the underlying points.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The raw values (ignoring timestamps), as a fresh vector.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.v).collect()
    }

    /// The timestamps, as a fresh vector.
    pub fn times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.t).collect()
    }

    /// First point, if any.
    #[inline]
    pub fn first(&self) -> Option<&Point> {
        self.points.first()
    }

    /// Last point, if any.
    #[inline]
    pub fn last(&self) -> Option<&Point> {
        self.points.last()
    }

    /// Point at index `i`, if present.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Point> {
        self.points.get(i)
    }

    /// Time span `(start, end)`.
    pub fn span(&self) -> Result<(f64, f64)> {
        match (self.first(), self.last()) {
            (Some(a), Some(b)) => Ok((a.t, b.t)),
            _ => Err(Error::Empty),
        }
    }

    /// Duration covered (`end - start`), zero for singletons.
    pub fn duration(&self) -> Result<f64> {
        self.span().map(|(a, b)| b - a)
    }

    /// Iterate over points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Maximum pointwise (L∞) distance of the values of two equally long
    /// sequences; `None` when the lengths differ. This is the one
    /// definition of the value-band distance (the paper's Fig. 1) shared
    /// by the baseline comparators and the query algebra's `ValueBand`
    /// leaf, so the two can never drift apart.
    pub fn linf_distance(&self, other: &Sequence) -> Option<f64> {
        if self.len() != other.len() {
            return None;
        }
        // Chunked multi-accumulator max: four independent lanes with no
        // cross-iteration dependency, so the loop autovectorizes. `max`
        // is associative and commutative over finite values (the
        // construction invariant), so the result is bit-identical to the
        // sequential fold.
        const LANES: usize = 4;
        let mut acc = [0.0f64; LANES];
        let (a, b) = (&self.points, &other.points);
        let mut chunks_a = a.chunks_exact(LANES);
        let mut chunks_b = b.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            for lane in 0..LANES {
                acc[lane] = acc[lane].max((ca[lane].v - cb[lane].v).abs());
            }
        }
        let mut best = acc.into_iter().fold(0.0, f64::max);
        for (p, q) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            best = best.max((p.v - q.v).abs());
        }
        Some(best)
    }

    /// A sub-sequence view over point indices `[lo, hi)` copied into a new
    /// sequence. Index slicing (not time slicing); see [`Sequence::window_by_time`].
    pub fn slice(&self, lo: usize, hi: usize) -> Result<Sequence> {
        if lo >= hi || hi > self.points.len() {
            return Err(Error::TooShort {
                required: hi.saturating_sub(lo).max(1),
                actual: self.points.len(),
            });
        }
        // Invariants hold on any contiguous sub-range.
        Ok(Sequence { points: self.points[lo..hi].to_vec() })
    }

    /// Points whose timestamps fall in `[t_lo, t_hi]`.
    pub fn window_by_time(&self, t_lo: f64, t_hi: f64) -> Sequence {
        let points = self.points.iter().filter(|p| p.t >= t_lo && p.t <= t_hi).copied().collect();
        Sequence { points }
    }

    /// Applies `f` to every value, keeping timestamps.
    ///
    /// Returns an error if `f` produces a non-finite value.
    pub fn map_values<F: FnMut(f64) -> f64>(&self, mut f: F) -> Result<Sequence> {
        let points: Vec<Point> = self.points.iter().map(|p| Point::new(p.t, f(p.v))).collect();
        Sequence::new(points)
    }

    /// Applies `f` to every timestamp, keeping values. The mapping must be
    /// strictly increasing; this is re-validated.
    pub fn map_times<F: FnMut(f64) -> f64>(&self, mut f: F) -> Result<Sequence> {
        let points: Vec<Point> = self.points.iter().map(|p| Point::new(f(p.t), p.v)).collect();
        Sequence::new(points)
    }

    /// Descriptive statistics over the values.
    pub fn stats(&self) -> SummaryStats {
        SummaryStats::of(&self.points)
    }

    /// Index of the point with the maximal value (first such index).
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in self.points.iter().enumerate() {
            if best.is_none_or(|b| p.v > self.points[b].v) {
                best = Some(i);
            }
        }
        best
    }

    /// Index of the point with the minimal value (first such index).
    pub fn argmin(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in self.points.iter().enumerate() {
            if best.is_none_or(|b| p.v < self.points[b].v) {
                best = Some(i);
            }
        }
        best
    }

    /// Inserts a point, keeping timestamps strictly increasing.
    ///
    /// Used by the robustness experiments of §5.1: adding one
    /// behaviour-preserving element must shift breakpoints by at most one.
    pub fn insert(&self, p: Point) -> Result<Sequence> {
        if !p.is_finite() {
            return Err(Error::NonFinite { index: 0 });
        }
        let mut points = self.points.clone();
        let pos = points.partition_point(|q| q.t < p.t);
        if pos < points.len() && points[pos].t == p.t {
            return Err(Error::NonMonotonicTime { index: pos });
        }
        points.insert(pos, p);
        Ok(Sequence { points })
    }

    /// Removes the point at `index`.
    pub fn remove(&self, index: usize) -> Result<Sequence> {
        if index >= self.points.len() {
            return Err(Error::TooShort { required: index + 1, actual: self.points.len() });
        }
        let mut points = self.points.clone();
        points.remove(index);
        Ok(Sequence { points })
    }

    /// Concatenates `other` after `self`; `other` must start strictly after
    /// `self` ends.
    pub fn concat(&self, other: &Sequence) -> Result<Sequence> {
        let mut points = self.points.clone();
        points.extend_from_slice(&other.points);
        Sequence::new(points)
    }
}

impl Index<usize> for Sequence {
    type Output = Point;
    fn index(&self, i: usize) -> &Point {
        &self.points[i]
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// Incremental builder for sequences, useful for generators and streaming
/// sources (the on-line breaking algorithms consume points one at a time).
#[derive(Debug, Default, Clone)]
pub struct SequenceBuilder {
    points: Vec<Point>,
}

impl SequenceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SequenceBuilder::default()
    }

    /// Creates a builder with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        SequenceBuilder { points: Vec::with_capacity(n) }
    }

    /// Appends a point; it must be finite and strictly after the current tail.
    pub fn push(&mut self, t: f64, v: f64) -> Result<&mut Self> {
        let p = Point::new(t, v);
        if !p.is_finite() {
            return Err(Error::NonFinite { index: self.points.len() });
        }
        if let Some(last) = self.points.last() {
            if last.t >= t {
                return Err(Error::NonMonotonicTime { index: self.points.len() });
            }
        }
        self.points.push(p);
        Ok(self)
    }

    /// Number of points accumulated so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Finalizes into a [`Sequence`]. Infallible because `push` validated.
    pub fn build(self) -> Sequence {
        Sequence { points: self.points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn from_values_assigns_uniform_times() {
        let s = Sequence::from_values(10.0, 0.5, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.times(), vec![10.0, 10.5, 11.0]);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_non_monotonic_times() {
        let pts = vec![Point::new(0.0, 1.0), Point::new(0.0, 2.0)];
        assert!(matches!(Sequence::new(pts), Err(Error::NonMonotonicTime { index: 1 })));
    }

    #[test]
    fn rejects_non_finite() {
        let pts = vec![Point::new(0.0, f64::NAN)];
        assert!(matches!(Sequence::new(pts), Err(Error::NonFinite { index: 0 })));
    }

    #[test]
    fn span_and_duration() {
        let s = seq(&[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(s.span().unwrap(), (0.0, 3.0));
        assert_eq!(s.duration().unwrap(), 3.0);
        assert!(Sequence::new(vec![]).unwrap().span().is_err());
    }

    #[test]
    fn slice_copies_range() {
        let s = seq(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(1, 4).unwrap();
        assert_eq!(sub.values(), vec![1.0, 2.0, 3.0]);
        assert_eq!(sub.times(), vec![1.0, 2.0, 3.0]);
        assert!(s.slice(3, 3).is_err());
        assert!(s.slice(3, 99).is_err());
    }

    #[test]
    fn window_by_time_filters_inclusively() {
        let s = seq(&[0.0, 1.0, 2.0, 3.0]);
        let w = s.window_by_time(1.0, 2.0);
        assert_eq!(w.values(), vec![1.0, 2.0]);
    }

    #[test]
    fn argmax_argmin() {
        let s = seq(&[1.0, 9.0, -3.0, 9.0]);
        assert_eq!(s.argmax(), Some(1));
        assert_eq!(s.argmin(), Some(2));
        assert_eq!(Sequence::new(vec![]).unwrap().argmax(), None);
    }

    #[test]
    fn insert_keeps_order() {
        let s = seq(&[0.0, 2.0]); // times 0,1
        let s2 = s.insert(Point::new(0.5, 1.0)).unwrap();
        assert_eq!(s2.times(), vec![0.0, 0.5, 1.0]);
        assert!(s.insert(Point::new(1.0, 5.0)).is_err()); // duplicate time
    }

    #[test]
    fn remove_point() {
        let s = seq(&[0.0, 1.0, 2.0]);
        let s2 = s.remove(1).unwrap();
        assert_eq!(s2.values(), vec![0.0, 2.0]);
        assert!(s.remove(9).is_err());
    }

    #[test]
    fn concat_requires_ordering() {
        let a = seq(&[1.0, 2.0]);
        let b = Sequence::from_values(10.0, 1.0, &[3.0]).unwrap();
        assert_eq!(a.concat(&b).unwrap().len(), 3);
        assert!(b.concat(&a).is_err());
    }

    #[test]
    fn map_values_and_times() {
        let s = seq(&[1.0, 2.0]);
        let doubled = s.map_values(|v| v * 2.0).unwrap();
        assert_eq!(doubled.values(), vec![2.0, 4.0]);
        let shifted = s.map_times(|t| t + 100.0).unwrap();
        assert_eq!(shifted.times(), vec![100.0, 101.0]);
        // A decreasing time map is rejected.
        assert!(s.map_times(|t| -t).is_err());
    }

    #[test]
    fn builder_validates_and_builds() {
        let mut b = SequenceBuilder::with_capacity(3);
        b.push(0.0, 1.0).unwrap();
        b.push(1.0, 2.0).unwrap();
        assert!(b.push(1.0, 3.0).is_err());
        assert!(b.push(2.0, f64::NAN).is_err());
        b.push(2.0, 3.0).unwrap();
        let s = b.build();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn indexing_and_iteration() {
        let s = seq(&[4.0, 5.0]);
        assert_eq!(s[1].v, 5.0);
        let total: f64 = (&s).into_iter().map(|p| p.v).sum();
        assert_eq!(total, 9.0);
    }

    #[test]
    fn clone_equality() {
        let s = seq(&[1.0, 2.0, 3.0]);
        let t = s.clone();
        assert_eq!(s, t);
        let u = s.map_values(|v| v + 1.0).unwrap();
        assert_ne!(s, u);
    }
}
