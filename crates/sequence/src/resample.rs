//! Resampling and alignment helpers.
//!
//! The paper notes (§4.2, footnote) that each subsequence must be shifted and
//! regarded as if starting at time 0 for representing functions to be
//! comparable — [`shift_to_origin`] does exactly that. [`value_at`] provides
//! the linear interpolation of unsampled points that function representation
//! promises (§3, characteristic 6).

use crate::error::{Error, Result};
use crate::point::Point;
use crate::sequence::Sequence;

/// Linearly interpolated value of `seq` at time `t`.
///
/// Returns an error for an empty sequence or a `t` outside the span.
pub fn value_at(seq: &Sequence, t: f64) -> Result<f64> {
    let pts = seq.points();
    if pts.is_empty() {
        return Err(Error::Empty);
    }
    let (start, end) = (pts[0].t, pts[pts.len() - 1].t);
    if t < start || t > end {
        return Err(Error::OutOfRange { t, start, end });
    }
    // partition_point: first index with pts[i].t >= t
    let i = pts.partition_point(|p| p.t < t);
    if i < pts.len() && pts[i].t == t {
        return Ok(pts[i].v);
    }
    // t lies strictly between pts[i-1] and pts[i]
    let a = pts[i - 1];
    let b = pts[i];
    let w = (t - a.t) / (b.t - a.t);
    Ok(a.v + w * (b.v - a.v))
}

/// Resamples `seq` onto `n` uniformly spaced points across its span using
/// linear interpolation. Requires `n >= 2` and a non-degenerate span.
pub fn resample_uniform(seq: &Sequence, n: usize) -> Result<Sequence> {
    if n < 2 {
        return Err(Error::TooShort { required: 2, actual: n });
    }
    let (start, end) = seq.span()?;
    if end <= start {
        return Err(Error::TooShort { required: 2, actual: seq.len() });
    }
    let dt = (end - start) / (n - 1) as f64;
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        // Clamp the final point to the exact span end to dodge FP drift.
        let t = if i == n - 1 { end } else { start + i as f64 * dt };
        points.push(Point::new(t, value_at(seq, t)?));
    }
    Sequence::new(points)
}

/// Shifts timestamps so the sequence starts at `t = 0`.
pub fn shift_to_origin(seq: &Sequence) -> Result<Sequence> {
    let (start, _) = seq.span()?;
    seq.map_times(|t| t - start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Sequence {
        // v = 2t over t in 0..=4
        Sequence::from_samples(&[0.0, 2.0, 4.0, 6.0, 8.0]).unwrap()
    }

    #[test]
    fn value_at_exact_sample() {
        let s = ramp();
        assert_eq!(value_at(&s, 2.0).unwrap(), 4.0);
        assert_eq!(value_at(&s, 0.0).unwrap(), 0.0);
        assert_eq!(value_at(&s, 4.0).unwrap(), 8.0);
    }

    #[test]
    fn value_at_interpolates() {
        let s = ramp();
        assert!((value_at(&s, 1.5).unwrap() - 3.0).abs() < 1e-12);
        assert!((value_at(&s, 3.25).unwrap() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn value_at_out_of_range() {
        let s = ramp();
        assert!(matches!(value_at(&s, -0.1), Err(Error::OutOfRange { .. })));
        assert!(matches!(value_at(&s, 4.1), Err(Error::OutOfRange { .. })));
        let empty = Sequence::new(vec![]).unwrap();
        assert!(matches!(value_at(&empty, 0.0), Err(Error::Empty)));
    }

    #[test]
    fn resample_preserves_linear_data_exactly() {
        let s = ramp();
        let r = resample_uniform(&s, 9).unwrap();
        assert_eq!(r.len(), 9);
        for p in r.points() {
            assert!((p.v - 2.0 * p.t).abs() < 1e-9, "point {p:?} off the line");
        }
        // Endpoints exact.
        assert_eq!(r.first().unwrap().t, 0.0);
        assert_eq!(r.last().unwrap().t, 4.0);
    }

    #[test]
    fn resample_requires_two_points() {
        let s = ramp();
        assert!(resample_uniform(&s, 1).is_err());
        let single = Sequence::from_samples(&[1.0]).unwrap();
        assert!(resample_uniform(&single, 4).is_err());
    }

    #[test]
    fn shift_to_origin_zeroes_start() {
        let s = Sequence::from_values(100.0, 2.0, &[1.0, 2.0, 3.0]).unwrap();
        let o = shift_to_origin(&s).unwrap();
        assert_eq!(o.times(), vec![0.0, 2.0, 4.0]);
        assert_eq!(o.values(), s.values());
    }
}
