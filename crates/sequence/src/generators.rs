//! Synthetic workload generators.
//!
//! The paper's running examples are (a) 24-hour temperature logs exhibiting
//! the *goal-post fever* pattern — exactly two peaks (§2.1, Figs. 2–7) — and
//! (b) digitized electrocardiograms (§5.2, Fig. 9). The generators here
//! produce the temperature-log side plus generic building blocks (trends,
//! sinusoids, random walks, peak trains); ECG synthesis lives in `saq-ecg`.
//!
//! All stochastic generators take an explicit seed so experiments are
//! reproducible.

use crate::point::Point;
use crate::sequence::Sequence;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal sample via the Box–Muller transform.
///
/// `rand_distr` is deliberately not a dependency; two uniforms suffice.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A single Gaussian bump `amp * exp(-(t-center)^2 / (2*width^2))`.
#[inline]
pub fn bump(t: f64, center: f64, width: f64, amp: f64) -> f64 {
    let z = (t - center) / width;
    amp * (-0.5 * z * z).exp()
}

/// Specification of a goal-post fever temperature log (Figs. 2–3).
#[derive(Debug, Clone, Copy)]
pub struct GoalpostSpec {
    /// Total duration in hours.
    pub duration: f64,
    /// Sampling interval in hours.
    pub dt: f64,
    /// Baseline body temperature (°F).
    pub baseline: f64,
    /// Center of the first fever peak (hours).
    pub peak1: f64,
    /// Center of the second fever peak (hours).
    pub peak2: f64,
    /// Peak width parameter (hours).
    pub width: f64,
    /// Peak amplitude above baseline (°F).
    pub amplitude: f64,
    /// Standard deviation of additive Gaussian noise (°F); 0 disables noise.
    pub noise: f64,
    /// RNG seed used when `noise > 0`.
    pub seed: u64,
}

impl Default for GoalpostSpec {
    fn default() -> Self {
        GoalpostSpec {
            duration: 24.0,
            dt: 0.5,
            baseline: 98.0,
            peak1: 8.0,
            peak2: 18.0,
            width: 1.6,
            amplitude: 8.0,
            noise: 0.0,
            seed: 0x5AD_CAFE,
        }
    }
}

/// Generates a two-peaked goal-post fever log.
pub fn goalpost(spec: GoalpostSpec) -> Sequence {
    peaks(PeaksSpec {
        duration: spec.duration,
        dt: spec.dt,
        baseline: spec.baseline,
        centers: vec![spec.peak1, spec.peak2],
        width: spec.width,
        amplitude: spec.amplitude,
        noise: spec.noise,
        seed: spec.seed,
    })
}

/// Specification of a general `k`-peak pattern.
#[derive(Debug, Clone)]
pub struct PeaksSpec {
    /// Total duration.
    pub duration: f64,
    /// Sampling interval.
    pub dt: f64,
    /// Baseline level.
    pub baseline: f64,
    /// Peak centers (must lie within `[0, duration]`).
    pub centers: Vec<f64>,
    /// Shared peak width.
    pub width: f64,
    /// Shared peak amplitude.
    pub amplitude: f64,
    /// Additive Gaussian noise σ.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PeaksSpec {
    fn default() -> Self {
        PeaksSpec {
            duration: 24.0,
            dt: 0.5,
            baseline: 98.0,
            centers: vec![8.0, 18.0],
            width: 1.6,
            amplitude: 8.0,
            noise: 0.0,
            seed: 0x5AD_CAFE,
        }
    }
}

/// Generates a sequence with Gaussian peaks at the given centers.
pub fn peaks(spec: PeaksSpec) -> Sequence {
    let n = (spec.duration / spec.dt).round() as usize + 1;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * spec.dt;
        let mut v = spec.baseline;
        for &c in &spec.centers {
            v += bump(t, c, spec.width, spec.amplitude);
        }
        if spec.noise > 0.0 {
            v += spec.noise * gaussian(&mut rng);
        }
        points.push(Point::new(t, v));
    }
    Sequence::new(points).expect("generator produces valid sequence")
}

/// A pure sinusoid `offset + amp * sin(2π freq t + phase)` sampled at `dt`.
pub fn sinusoid(n: usize, dt: f64, amp: f64, freq: f64, phase: f64, offset: f64) -> Sequence {
    let points = (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            Point::new(t, offset + amp * (std::f64::consts::TAU * freq * t + phase).sin())
        })
        .collect();
    Sequence::new(points).expect("generator produces valid sequence")
}

/// A linear trend `intercept + slope * t` with optional Gaussian noise.
pub fn trend(n: usize, dt: f64, slope: f64, intercept: f64, noise: f64, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            let t = i as f64 * dt;
            let mut v = intercept + slope * t;
            if noise > 0.0 {
                v += noise * gaussian(&mut rng);
            }
            Point::new(t, v)
        })
        .collect();
    Sequence::new(points).expect("generator produces valid sequence")
}

/// A Gaussian random walk with per-step σ `step`.
pub fn random_walk(n: usize, start: f64, step: f64, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = start;
    let points = (0..n)
        .map(|i| {
            let p = Point::new(i as f64, v);
            v += step * gaussian(&mut rng);
            p
        })
        .collect();
    Sequence::new(points).expect("generator produces valid sequence")
}

/// Piecewise-linear sequence through the given `(t, v)` knots, sampled at
/// unit steps between the first and last knot. Knots must have strictly
/// increasing times.
///
/// This mirrors the paper's Fig. 6 style data: straight runs joined at
/// extrema, ideal for validating that breaking recovers the knots.
pub fn piecewise_linear(knots: &[(f64, f64)]) -> Sequence {
    assert!(knots.len() >= 2, "need at least two knots");
    let mut points = Vec::new();
    let t_start = knots[0].0;
    let t_end = knots[knots.len() - 1].0;
    let mut t = t_start;
    while t <= t_end + 1e-9 {
        // Find the surrounding knots.
        let j = knots.partition_point(|&(kt, _)| kt < t).min(knots.len() - 1);
        let (t1, v1, t0, v0);
        if knots[j].0 <= t && j + 1 < knots.len() {
            t0 = knots[j].0;
            v0 = knots[j].1;
            t1 = knots[j + 1].0;
            v1 = knots[j + 1].1;
        } else {
            t0 = knots[j - 1].0;
            v0 = knots[j - 1].1;
            t1 = knots[j].0;
            v1 = knots[j].1;
        }
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        points.push(Point::new(t, v0 + w * (v1 - v0)));
        t += 1.0;
    }
    Sequence::new(points).expect("generator produces valid sequence")
}

/// A stock-price-like series: random walk plus occasional jumps, and a mild
/// upward drift — used by the `stock_trends` example motivated in §1
/// ("rises and drops of stock values").
pub fn stock_series(n: usize, start: f64, volatility: f64, drift: f64, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = start;
    let points = (0..n)
        .map(|i| {
            let p = Point::new(i as f64, v);
            v += drift + volatility * gaussian(&mut rng);
            // Occasional news shock.
            if rng.random::<f64>() < 0.02 {
                v += 4.0 * volatility * gaussian(&mut rng);
            }
            v = v.max(0.01);
            p
        })
        .collect();
    Sequence::new(points).expect("generator produces valid sequence")
}

/// Seismic-style burst: quiet background noise with a sudden vigorous
/// oscillatory event (§1: "sudden vigorous seismic activity").
pub fn seismic_burst(
    n: usize,
    event_start: usize,
    event_len: usize,
    background_noise: f64,
    event_amp: f64,
    seed: u64,
) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|i| {
            let t = i as f64;
            let mut v = background_noise * gaussian(&mut rng);
            if i >= event_start && i < event_start + event_len {
                let phase = (i - event_start) as f64;
                // Decaying oscillation.
                let envelope = (-phase / (event_len as f64 / 3.0)).exp();
                v += event_amp * envelope * (phase * 0.9).sin();
            }
            Point::new(t, v)
        })
        .collect();
    Sequence::new(points).expect("generator produces valid sequence")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goalpost_has_expected_shape() {
        let s = goalpost(GoalpostSpec::default());
        assert_eq!(s.len(), 49);
        let stats = s.stats();
        // Peaks reach roughly baseline + amplitude.
        assert!(stats.max > 104.0, "max {}", stats.max);
        assert!(stats.min >= 97.9, "min {}", stats.min);
        // Peak near t=8 and t=18.
        let m = s.argmax().unwrap();
        let t_peak = s[m].t;
        assert!((t_peak - 8.0).abs() < 1.0 || (t_peak - 18.0).abs() < 1.0);
    }

    #[test]
    fn goalpost_noise_is_reproducible() {
        let spec = GoalpostSpec { noise: 0.3, ..GoalpostSpec::default() };
        let a = goalpost(spec);
        let b = goalpost(spec);
        assert_eq!(a, b);
        let c = goalpost(GoalpostSpec { seed: 99, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn peaks_count_matches_centers() {
        let spec = PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() };
        let s = peaks(spec);
        // Count strict local maxima above baseline + amplitude/2.
        let vals = s.values();
        let mut count = 0;
        for i in 1..vals.len() - 1 {
            if vals[i] > vals[i - 1] && vals[i] > vals[i + 1] && vals[i] > 98.0 + 4.0 {
                count += 1;
            }
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn sinusoid_period() {
        // freq 0.1 Hz, dt 1 => period 10 samples
        let s = sinusoid(41, 1.0, 2.0, 0.1, 0.0, 0.0);
        assert!((s[0].v - s[10].v).abs() < 1e-9);
        assert!((s[0].v - 0.0).abs() < 1e-9);
        let stats = s.stats();
        assert!(stats.max <= 2.0 + 1e-9 && stats.min >= -2.0 - 1e-9);
    }

    #[test]
    fn trend_is_linear_when_noiseless() {
        let s = trend(10, 1.0, 2.0, 5.0, 0.0, 0);
        for p in s.points() {
            assert!((p.v - (5.0 + 2.0 * p.t)).abs() < 1e-12);
        }
    }

    #[test]
    fn random_walk_is_reproducible_and_long_enough() {
        let a = random_walk(100, 0.0, 1.0, 7);
        let b = random_walk(100, 0.0, 1.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a[0].v, 0.0);
    }

    #[test]
    fn piecewise_linear_hits_knots() {
        let s = piecewise_linear(&[(0.0, 0.0), (5.0, 10.0), (10.0, 0.0)]);
        assert_eq!(s.len(), 11);
        assert!((s[5].v - 10.0).abs() < 1e-9);
        assert!((s[2].v - 4.0).abs() < 1e-9);
        assert!((s[10].v - 0.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn stock_series_stays_positive() {
        let s = stock_series(500, 100.0, 1.0, 0.05, 3);
        assert!(s.values().iter().all(|&v| v > 0.0));
        assert_eq!(s.len(), 500);
    }

    #[test]
    fn seismic_burst_has_quiet_and_loud_regions() {
        let s = seismic_burst(400, 200, 80, 0.05, 10.0, 11);
        let quiet: f64 = s.values()[..150].iter().map(|v| v.abs()).fold(0.0, f64::max);
        let loud: f64 = s.values()[200..280].iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(loud > 10.0 * quiet, "loud {loud} quiet {quiet}");
    }

    #[test]
    fn bump_peaks_at_center() {
        assert!((bump(5.0, 5.0, 1.0, 3.0) - 3.0).abs() < 1e-12);
        assert!(bump(8.0, 5.0, 1.0, 3.0) < 0.1);
    }
}
