use std::fmt;

/// Errors produced by sequence construction, manipulation and I/O.
#[derive(Debug)]
pub enum Error {
    /// A sequence operation required at least `required` points but the
    /// sequence only held `actual`.
    TooShort {
        /// Minimum number of points the operation needs.
        required: usize,
        /// Number of points actually present.
        actual: usize,
    },
    /// Timestamps were not strictly increasing at the given index.
    NonMonotonicTime {
        /// Index of the offending point.
        index: usize,
    },
    /// A point carried a non-finite (`NaN` or infinite) value or timestamp.
    NonFinite {
        /// Index of the offending point.
        index: usize,
    },
    /// A requested time lay outside the sequence's time span.
    OutOfRange {
        /// The requested time.
        t: f64,
        /// Start of the valid span.
        start: f64,
        /// End of the valid span.
        end: f64,
    },
    /// An empty sequence was supplied where data was required.
    Empty,
    /// CSV parsing failed.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooShort { required, actual } => {
                write!(f, "sequence too short: operation requires {required} points, got {actual}")
            }
            Error::NonMonotonicTime { index } => {
                write!(f, "timestamps must be strictly increasing (violated at index {index})")
            }
            Error::NonFinite { index } => {
                write!(f, "non-finite value or timestamp at index {index}")
            }
            Error::OutOfRange { t, start, end } => {
                write!(f, "time {t} outside sequence span [{start}, {end}]")
            }
            Error::Empty => write!(f, "empty sequence"),
            Error::Parse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_too_short() {
        let e = Error::TooShort { required: 2, actual: 1 };
        assert!(e.to_string().contains("requires 2"));
    }

    #[test]
    fn display_out_of_range() {
        let e = Error::OutOfRange { t: 5.0, start: 0.0, end: 1.0 };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('['));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        assert!(std::error::Error::source(&Error::Empty).is_none());
    }
}
