//! Descriptive statistics over sequences.
//!
//! The paper's preprocessing (§7) normalizes sequences to mean 0 and
//! variance 1; the moments computed here feed `saq-preprocess::normalize`.

use crate::point::Point;

/// Summary statistics of the values of a sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Population variance (0 for fewer than 2 samples).
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value (`+inf` for empty input).
    pub min: f64,
    /// Maximum value (`-inf` for empty input).
    pub max: f64,
}

impl SummaryStats {
    /// Computes statistics over the values of `points`.
    pub fn of(points: &[Point]) -> SummaryStats {
        let n = points.len();
        if n == 0 {
            return SummaryStats {
                n: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for p in points {
            sum += p.v;
            min = min.min(p.v);
            max = max.max(p.v);
        }
        let mean = sum / n as f64;
        let mut ss = 0.0;
        for p in points {
            let d = p.v - mean;
            ss += d * d;
        }
        let variance = if n > 1 { ss / n as f64 } else { 0.0 };
        SummaryStats { n, mean, variance, std_dev: variance.sqrt(), min, max }
    }

    /// Value range (`max - min`); 0 for empty input by convention.
    pub fn range(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Population covariance of `(t, v)` pairs — the building block of
/// least-squares regression in `saq-curves`.
pub fn covariance_tv(points: &[Point]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let mt = points.iter().map(|p| p.t).sum::<f64>() / n as f64;
    let mv = points.iter().map(|p| p.v).sum::<f64>() / n as f64;
    points.iter().map(|p| (p.t - mt) * (p.v - mv)).sum::<f64>() / n as f64
}

/// Lag-`k` autocorrelation of the values (biased estimator).
///
/// Useful for characterizing the synthetic workloads (an ECG has strong
/// periodic autocorrelation at the beat interval).
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    let n = values.len();
    if n == 0 || lag >= n {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let denom: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|i| (values[i] - mean) * (values[i + lag] - mean)).sum();
    num / denom
}

/// Root-mean-square difference between two equally long value slices.
///
/// # Panics
/// Panics if the slices differ in length (caller bug).
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equally long slices");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Maximum absolute pointwise difference (L∞) between two value slices —
/// the paper's error-tolerance metric ε.
///
/// # Panics
/// Panics if the slices differ in length (caller bug).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff requires equally long slices");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vals: &[f64]) -> Vec<Point> {
        vals.iter().enumerate().map(|(i, &v)| Point::new(i as f64, v)).collect()
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = SummaryStats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn singleton_stats() {
        let s = SummaryStats::of(&pts(&[7.0]));
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn known_moments() {
        // values 1..5: mean 3, population variance 2
        let s = SummaryStats::of(&pts(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.variance - 2.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.range(), 4.0);
    }

    #[test]
    fn covariance_of_perfect_line() {
        // v = 2t  => cov(t,v) = 2 * var(t)
        let p = pts(&[0.0, 2.0, 4.0, 6.0]);
        let var_t =
            SummaryStats::of(&p.iter().map(|q| Point::new(q.t, q.t)).collect::<Vec<_>>()).variance;
        assert!((covariance_tv(&p) - 2.0 * var_t).abs() < 1e-12);
    }

    #[test]
    fn covariance_degenerate() {
        assert_eq!(covariance_tv(&pts(&[1.0])), 0.0);
        assert_eq!(covariance_tv(&[]), 0.0);
    }

    #[test]
    fn autocorrelation_of_period_two() {
        let v = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&v, 2) > 0.5);
        assert!(autocorrelation(&v, 1) < -0.5);
        assert_eq!(autocorrelation(&v, 99), 0.0);
    }

    #[test]
    fn autocorrelation_constant_is_zero() {
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
    }

    #[test]
    fn rmse_and_linf() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [1.0, -1.0, 1.0, -1.0];
        assert!((rmse(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(max_abs_diff(&a, &b), 1.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
