//! Sinusoids `offset + amp·sin(2π·freq·t + phase)`.
//!
//! §4.2 lists sinusoids (ordered by amplitude, frequency, phase) as another
//! family suited to lexicographic indexing. Fitting uses a coarse frequency
//! grid followed by golden-section refinement; for each candidate frequency
//! the remaining parameters are a *linear* least-squares problem in the
//! `sin`/`cos`/constant basis.

use crate::curve::{Curve, CurveFitter};
use crate::error::{Error, Result};
use crate::linalg::least_squares;
use crate::ordering::FunctionDescriptor;
use saq_sequence::Point;
use serde::{Deserialize, Serialize};

/// A sinusoid `offset + amp·sin(2π·freq·t + phase)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sinusoid {
    /// Amplitude (non-negative by construction of the fitter).
    pub amp: f64,
    /// Frequency in cycles per time unit.
    pub freq: f64,
    /// Phase in radians, normalized to `[0, 2π)`.
    pub phase: f64,
    /// Vertical offset.
    pub offset: f64,
}

impl Sinusoid {
    /// Creates a sinusoid, normalizing the phase.
    pub fn new(amp: f64, freq: f64, phase: f64, offset: f64) -> Sinusoid {
        let tau = std::f64::consts::TAU;
        let mut ph = phase % tau;
        if ph < 0.0 {
            ph += tau;
        }
        Sinusoid { amp, freq, phase: ph, offset }
    }
}

impl Curve for Sinusoid {
    fn eval(&self, t: f64) -> f64 {
        self.offset + self.amp * (std::f64::consts::TAU * self.freq * t + self.phase).sin()
    }

    fn derivative(&self, t: f64) -> f64 {
        let w = std::f64::consts::TAU * self.freq;
        self.amp * w * (w * t + self.phase).cos()
    }

    fn descriptor(&self) -> FunctionDescriptor {
        FunctionDescriptor::Sinusoid { amp: self.amp, freq: self.freq, phase: self.phase }
    }

    fn parameter_count(&self) -> usize {
        4
    }
}

/// Sum of squared residuals for the best linear (amp/phase/offset) fit at a
/// fixed frequency, returning the fitted sinusoid too.
fn fit_at_frequency(points: &[Point], freq: f64) -> Result<(Sinusoid, f64)> {
    let w = std::f64::consts::TAU * freq;
    let design: Vec<Vec<f64>> =
        points.iter().map(|p| vec![(w * p.t).sin(), (w * p.t).cos(), 1.0]).collect();
    let y: Vec<f64> = points.iter().map(|p| p.v).collect();
    let sol = least_squares(&design, &y)?;
    let (a, b, c) = (sol[0], sol[1], sol[2]);
    // a sin + b cos = amp sin(. + phase), amp = hypot, phase = atan2(b, a)
    let amp = a.hypot(b);
    let phase = b.atan2(a);
    let s = Sinusoid::new(amp, freq, phase, c);
    let sse: f64 = points.iter().map(|p| (s.eval(p.t) - p.v).powi(2)).sum();
    Ok((s, sse))
}

/// Fits a sinusoid by scanning `grid` candidate frequencies over
/// `(0, max_freq]` and refining the best via golden-section search.
pub fn fit_sinusoid(points: &[Point], max_freq: f64, grid: usize) -> Result<Sinusoid> {
    if points.len() < 4 {
        return Err(Error::TooFewPoints { required: 4, actual: points.len() });
    }
    if grid < 2 || max_freq <= 0.0 {
        return Err(Error::NumericalFailure("bad frequency search range"));
    }
    let mut best: Option<(Sinusoid, f64)> = None;
    for i in 1..=grid {
        let f = max_freq * i as f64 / grid as f64;
        if let Ok((s, sse)) = fit_at_frequency(points, f) {
            if best.as_ref().is_none_or(|(_, b)| sse < *b) {
                best = Some((s, sse));
            }
        }
    }
    let (coarse, _) = best.ok_or(Error::SingularSystem)?;
    // Golden-section refinement around the coarse winner.
    let step = max_freq / grid as f64;
    let mut lo = (coarse.freq - step).max(step * 1e-3);
    let mut hi = coarse.freq + step;
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let sse_at = |f: f64| fit_at_frequency(points, f).map(|(_, sse)| sse).unwrap_or(f64::INFINITY);
    for _ in 0..40 {
        let m1 = hi - phi * (hi - lo);
        let m2 = lo + phi * (hi - lo);
        if sse_at(m1) < sse_at(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let f_best = 0.5 * (lo + hi);
    fit_at_frequency(points, f_best).map(|(s, _)| s)
}

/// [`CurveFitter`] adapter for sinusoid fitting.
#[derive(Debug, Clone, Copy)]
pub struct SinusoidFitter {
    /// Highest candidate frequency.
    pub max_freq: f64,
    /// Grid resolution of the coarse scan.
    pub grid: usize,
}

impl Default for SinusoidFitter {
    fn default() -> Self {
        SinusoidFitter { max_freq: 0.5, grid: 64 }
    }
}

impl CurveFitter for SinusoidFitter {
    type Curve = Sinusoid;

    fn fit(&self, points: &[Point]) -> Result<Sinusoid> {
        fit_sinusoid(points, self.max_freq, self.grid)
    }

    fn min_points(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(s: &Sinusoid, n: usize, dt: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                Point::new(t, s.eval(t))
            })
            .collect()
    }

    #[test]
    fn eval_matches_definition() {
        let s = Sinusoid::new(2.0, 0.25, 0.0, 1.0);
        // At t=1: sin(pi/2)=1 -> 1 + 2
        assert!((s.eval(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_normalized() {
        let s = Sinusoid::new(1.0, 1.0, -1.0, 0.0);
        assert!(s.phase >= 0.0 && s.phase < std::f64::consts::TAU);
        let t = Sinusoid::new(1.0, 1.0, 7.0, 0.0);
        assert!(t.phase < std::f64::consts::TAU);
    }

    #[test]
    fn recovers_known_sinusoid() {
        let truth = Sinusoid::new(3.0, 0.1, 0.7, 5.0);
        let pts = sample(&truth, 100, 1.0);
        let fit = fit_sinusoid(&pts, 0.5, 128).unwrap();
        assert!((fit.freq - 0.1).abs() < 1e-3, "freq {}", fit.freq);
        assert!((fit.amp - 3.0).abs() < 0.05, "amp {}", fit.amp);
        assert!((fit.offset - 5.0).abs() < 0.05, "offset {}", fit.offset);
        // Reconstruction accuracy is the real criterion.
        for p in &pts {
            assert!((fit.eval(p.t) - p.v).abs() < 0.05);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let s = Sinusoid::new(2.0, 0.3, 0.5, 0.0);
        let h = 1e-6;
        for &t in &[0.0, 0.7, 2.3] {
            let fd = (s.eval(t + h) - s.eval(t - h)) / (2.0 * h);
            assert!((s.derivative(t) - fd).abs() < 1e-5);
        }
    }

    #[test]
    fn too_few_points_rejected() {
        let pts = sample(&Sinusoid::new(1.0, 0.1, 0.0, 0.0), 3, 1.0);
        assert!(matches!(
            fit_sinusoid(&pts, 0.5, 16),
            Err(Error::TooFewPoints { required: 4, .. })
        ));
    }

    #[test]
    fn fitter_adapter_defaults() {
        let f = SinusoidFitter::default();
        assert_eq!(f.min_points(), 4);
        let truth = Sinusoid::new(1.0, 0.05, 0.0, 0.0);
        let pts = sample(&truth, 80, 1.0);
        let fit = f.fit(&pts).unwrap();
        assert!((fit.freq - 0.05).abs() < 2e-3);
    }

    #[test]
    fn bad_search_range_rejected() {
        let pts = sample(&Sinusoid::new(1.0, 0.1, 0.0, 0.0), 10, 1.0);
        assert!(fit_sinusoid(&pts, 0.0, 16).is_err());
        assert!(fit_sinusoid(&pts, 0.5, 1).is_err());
    }
}
