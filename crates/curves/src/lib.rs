//! # saq-curves
//!
//! Families of well-behaved real-valued functions and the fitting machinery
//! the breaking algorithms of `saq-core` are parameterized by.
//!
//! §4.2 of the paper requires each function family to support:
//! * evaluation (interpolation of unsampled points),
//! * a deviation metric against the raw subsequence (error tolerance ε),
//! * lexicographic ordering/indexing within the family,
//! * behaviour capture through derivatives (slopes, extrema).
//!
//! Provided families:
//! * [`Line`] — linear interpolation through endpoints and least-squares
//!   regression lines (the representation used for all of the paper's
//!   reported experiments),
//! * [`Polynomial`] — arbitrary-degree least-squares fits,
//! * [`CubicBezier`] — Schneider's automatically fitted Bézier curves
//!   (Graphics Gems), the paper's third instantiation,
//! * [`Sinusoid`] — amplitude/frequency/phase fits, listed by the paper as
//!   another orderable family.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bezier;
mod curve;
pub mod deviation;
mod error;
pub mod linalg;
pub mod linear;
pub mod ordering;
pub mod polynomial;
pub mod sinusoid;

pub use bezier::{BezierFitter, CubicBezier};
pub use curve::{Curve, CurveFitter};
pub use deviation::{max_deviation, rmse_deviation, sse_deviation, Deviation};
pub use error::{Error, Result};
pub use linear::{EndpointInterpolator, Line, RegressionFitter};
pub use ordering::FunctionDescriptor;
pub use polynomial::{Polynomial, PolynomialFitter};
pub use sinusoid::{Sinusoid, SinusoidFitter};
