//! Cubic Bézier curves with Schneider's automatic fitting algorithm
//! (Graphics Gems, "An Algorithm for Automatically Fitting Digitized
//! Curves") — the curve family the paper's offline breaking template
//! generalizes (§5.1).
//!
//! The fitting pipeline is the published one: chord-length
//! parameterization → least-squares placement of the two inner control
//! points along the end tangents → Newton–Raphson reparameterization, with
//! the Wu/Barsky heuristic as fallback for degenerate systems.
//!
//! A Bézier curve is parametric in `u ∈ [0,1]`; to expose the paper's
//! function-of-time view ([`Curve`]), `eval(t)` inverts the (monotone in
//! practice) `x(u)` component numerically.

use crate::curve::{Curve, CurveFitter};
use crate::error::{Error, Result};
use crate::ordering::FunctionDescriptor;
use saq_sequence::Point;
use serde::{Deserialize, Serialize};

/// A 2-D control point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ctrl {
    /// Abscissa (time axis).
    pub x: f64,
    /// Ordinate (value axis).
    pub y: f64,
}

impl Ctrl {
    fn new(x: f64, y: f64) -> Ctrl {
        Ctrl { x, y }
    }
    fn add(self, o: Ctrl) -> Ctrl {
        Ctrl::new(self.x + o.x, self.y + o.y)
    }
    fn sub(self, o: Ctrl) -> Ctrl {
        Ctrl::new(self.x - o.x, self.y - o.y)
    }
    fn scale(self, s: f64) -> Ctrl {
        Ctrl::new(self.x * s, self.y * s)
    }
    fn dot(self, o: Ctrl) -> f64 {
        self.x * o.x + self.y * o.y
    }
    fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }
    fn normalized(self) -> Ctrl {
        let n = self.norm();
        if n == 0.0 {
            Ctrl::new(0.0, 0.0)
        } else {
            self.scale(1.0 / n)
        }
    }
}

/// A cubic Bézier segment defined by four control points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CubicBezier {
    /// Control points `P0..P3`; `P0`/`P3` interpolate the run endpoints.
    pub ctrl: [Ctrl; 4],
}

/// Bernstein basis values for cubic curves.
#[inline]
fn bernstein(u: f64) -> [f64; 4] {
    let v = 1.0 - u;
    [v * v * v, 3.0 * u * v * v, 3.0 * u * u * v, u * u * u]
}

impl CubicBezier {
    /// Point on the curve at parameter `u ∈ [0,1]`.
    pub fn point_at(&self, u: f64) -> (f64, f64) {
        let b = bernstein(u);
        let mut x = 0.0;
        let mut y = 0.0;
        for (bi, c) in b.iter().zip(&self.ctrl) {
            x += bi * c.x;
            y += bi * c.y;
        }
        (x, y)
    }

    /// First derivative w.r.t. `u`.
    pub fn velocity_at(&self, u: f64) -> (f64, f64) {
        let v = 1.0 - u;
        let b = [3.0 * v * v, 6.0 * u * v, 3.0 * u * u];
        let d = [
            self.ctrl[1].sub(self.ctrl[0]),
            self.ctrl[2].sub(self.ctrl[1]),
            self.ctrl[3].sub(self.ctrl[2]),
        ];
        let mut x = 0.0;
        let mut y = 0.0;
        for i in 0..3 {
            x += b[i] * d[i].x;
            y += b[i] * d[i].y;
        }
        (x, y)
    }

    /// Solves `x(u) = t` for `u ∈ [0,1]` by bisection. `x(u)` is monotone for
    /// the fits produced here (control abscissae ordered along time); for
    /// safety the result is the first crossing.
    pub fn param_for_time(&self, t: f64) -> f64 {
        let (x0, x1) = (self.ctrl[0].x, self.ctrl[3].x);
        if t <= x0 {
            return 0.0;
        }
        if t >= x1 {
            return 1.0;
        }
        let mut lo = 0.0;
        let mut hi = 1.0;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.point_at(mid).0 < t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Maximum Euclidean distance from `points` to the curve at the given
    /// parameter assignment, together with the worst index — Schneider's
    /// error measure.
    pub fn max_error(&self, points: &[Point], params: &[f64]) -> (usize, f64) {
        let mut worst = (0, 0.0);
        for (i, (p, &u)) in points.iter().zip(params).enumerate() {
            let (x, y) = self.point_at(u);
            let d = ((x - p.t).powi(2) + (y - p.v).powi(2)).sqrt();
            if d > worst.1 {
                worst = (i, d);
            }
        }
        worst
    }
}

impl Curve for CubicBezier {
    fn eval(&self, t: f64) -> f64 {
        self.point_at(self.param_for_time(t)).1
    }

    fn derivative(&self, t: f64) -> f64 {
        let u = self.param_for_time(t);
        let (dx, dy) = self.velocity_at(u);
        if dx.abs() < 1e-12 {
            // Vertical tangent: report a large signed slope.
            return dy.signum() * 1e12;
        }
        dy / dx
    }

    fn descriptor(&self) -> FunctionDescriptor {
        FunctionDescriptor::Bezier(self.ctrl.iter().flat_map(|c| [c.x, c.y]).collect::<Vec<f64>>())
    }

    fn parameter_count(&self) -> usize {
        8
    }
}

/// Chord-length parameterization of a run of points, normalized to `[0,1]`.
pub fn chord_length_params(points: &[Point]) -> Vec<f64> {
    let n = points.len();
    let mut u = vec![0.0; n];
    for i in 1..n {
        let dx = points[i].t - points[i - 1].t;
        let dy = points[i].v - points[i - 1].v;
        u[i] = u[i - 1] + (dx * dx + dy * dy).sqrt();
    }
    let total = u[n - 1];
    if total > 0.0 {
        for ui in u.iter_mut() {
            *ui /= total;
        }
    }
    u
}

/// Unit tangent at the start of the run (direction of the first chord).
fn left_tangent(points: &[Point]) -> Ctrl {
    Ctrl::new(points[1].t - points[0].t, points[1].v - points[0].v).normalized()
}

/// Unit tangent at the end of the run (pointing backwards, Schneider's
/// convention).
fn right_tangent(points: &[Point]) -> Ctrl {
    let n = points.len();
    Ctrl::new(points[n - 2].t - points[n - 1].t, points[n - 2].v - points[n - 1].v).normalized()
}

/// One least-squares fit with fixed parameterization (Schneider's
/// `GenerateBezier`).
fn generate_bezier(points: &[Point], params: &[f64], t_hat1: Ctrl, t_hat2: Ctrl) -> CubicBezier {
    let n = points.len();
    let first = Ctrl::new(points[0].t, points[0].v);
    let last = Ctrl::new(points[n - 1].t, points[n - 1].v);

    // A[i][0] = t_hat1 * 3u(1-u)^2 ; A[i][1] = t_hat2 * 3u^2(1-u)
    let mut c = [[0.0f64; 2]; 2];
    let mut xr = [0.0f64; 2];
    for (p, &u) in points.iter().zip(params) {
        let b = bernstein(u);
        let a0 = t_hat1.scale(b[1]);
        let a1 = t_hat2.scale(b[2]);
        c[0][0] += a0.dot(a0);
        c[0][1] += a0.dot(a1);
        c[1][1] += a1.dot(a1);
        let tmp = Ctrl::new(p.t, p.v).sub(first.scale(b[0] + b[1])).sub(last.scale(b[2] + b[3]));
        xr[0] += a0.dot(tmp);
        xr[1] += a1.dot(tmp);
    }
    c[1][0] = c[0][1];

    let det_c = c[0][0] * c[1][1] - c[1][0] * c[0][1];
    let (mut alpha_l, mut alpha_r);
    if det_c.abs() > 1e-12 {
        alpha_l = (xr[0] * c[1][1] - xr[1] * c[0][1]) / det_c;
        alpha_r = (c[0][0] * xr[1] - c[1][0] * xr[0]) / det_c;
    } else {
        alpha_l = 0.0;
        alpha_r = 0.0;
    }

    // Wu/Barsky heuristic when alphas are degenerate.
    let seg_len = last.sub(first).norm();
    let epsilon = 1e-6 * seg_len;
    if alpha_l < epsilon || alpha_r < epsilon {
        let dist = seg_len / 3.0;
        alpha_l = dist;
        alpha_r = dist;
    }

    CubicBezier {
        ctrl: [first, first.add(t_hat1.scale(alpha_l)), last.add(t_hat2.scale(alpha_r)), last],
    }
}

/// One Newton–Raphson step improving each parameter (Schneider's
/// `Reparameterize`).
fn reparameterize(points: &[Point], params: &[f64], curve: &CubicBezier) -> Vec<f64> {
    points.iter().zip(params).map(|(p, &u)| newton_raphson_root_find(curve, p, u)).collect()
}

fn newton_raphson_root_find(curve: &CubicBezier, p: &Point, u: f64) -> f64 {
    let (qx, qy) = curve.point_at(u);
    let (q1x, q1y) = curve.velocity_at(u);
    // Second derivative.
    let d = [
        curve.ctrl[1].sub(curve.ctrl[0]),
        curve.ctrl[2].sub(curve.ctrl[1]),
        curve.ctrl[3].sub(curve.ctrl[2]),
    ];
    let dd = [d[1].sub(d[0]).scale(2.0), d[2].sub(d[1]).scale(2.0)];
    let v = 1.0 - u;
    let q2x = 3.0 * (v * dd[0].x + u * dd[1].x);
    let q2y = 3.0 * (v * dd[0].y + u * dd[1].y);

    let num = (qx - p.t) * q1x + (qy - p.v) * q1y;
    let den = q1x * q1x + q1y * q1y + (qx - p.t) * q2x + (qy - p.v) * q2y;
    if den.abs() < 1e-12 {
        return u;
    }
    (u - num / den).clamp(0.0, 1.0)
}

/// Fits a single cubic Bézier segment to a run of points, iterating
/// Newton–Raphson reparameterization `iterations` times.
pub fn fit_cubic(points: &[Point], iterations: usize) -> Result<CubicBezier> {
    fit_cubic_with_error(points, iterations).map(|(c, _)| c)
}

/// Like [`fit_cubic`] but also returns Schneider's max point-to-curve error
/// of the returned curve under its own parameter assignment. Monotone
/// non-increasing in `iterations` (the best iterate is kept).
pub fn fit_cubic_with_error(points: &[Point], iterations: usize) -> Result<(CubicBezier, f64)> {
    let n = points.len();
    if n < 2 {
        return Err(Error::TooFewPoints { required: 2, actual: n });
    }
    if n == 2 {
        // Straight segment via the Wu/Barsky placement.
        let first = Ctrl::new(points[0].t, points[0].v);
        let last = Ctrl::new(points[1].t, points[1].v);
        let dist = last.sub(first).norm() / 3.0;
        let dir = last.sub(first).normalized();
        return Ok((
            CubicBezier {
                ctrl: [first, first.add(dir.scale(dist)), last.sub(dir.scale(dist)), last],
            },
            0.0,
        ));
    }
    let t1 = left_tangent(points);
    let t2 = right_tangent(points);
    let mut params = chord_length_params(points);
    let mut curve = generate_bezier(points, &params, t1, t2);
    let mut best = curve;
    let mut best_err = curve.max_error(points, &params).1;
    for _ in 0..iterations {
        params = reparameterize(points, &params, &curve);
        curve = generate_bezier(points, &params, t1, t2);
        let err = curve.max_error(points, &params).1;
        if err < best_err {
            best_err = err;
            best = curve;
        }
    }
    if best.ctrl.iter().any(|c| !c.x.is_finite() || !c.y.is_finite()) {
        return Err(Error::NumericalFailure("non-finite Bezier control point"));
    }
    Ok((best, best_err))
}

/// [`CurveFitter`] adapter for Bézier fitting.
#[derive(Debug, Clone, Copy)]
pub struct BezierFitter {
    /// Newton–Raphson reparameterization passes (Schneider uses 4).
    pub iterations: usize,
}

impl Default for BezierFitter {
    fn default() -> Self {
        BezierFitter { iterations: 4 }
    }
}

impl CurveFitter for BezierFitter {
    type Curve = CubicBezier;

    fn fit(&self, points: &[Point]) -> Result<CubicBezier> {
        fit_cubic(points, self.iterations)
    }

    fn min_points(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_from<F: Fn(f64) -> f64>(n: usize, f: F) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, f(i as f64))).collect()
    }

    #[test]
    fn bernstein_partition_of_unity() {
        for &u in &[0.0, 0.3, 0.5, 0.99, 1.0] {
            let b = bernstein(u);
            assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn endpoints_interpolated() {
        let c = fit_cubic(&pts_from(10, |t| t * t), 4).unwrap();
        let (x0, y0) = c.point_at(0.0);
        let (x1, y1) = c.point_at(1.0);
        assert!((x0 - 0.0).abs() < 1e-9 && (y0 - 0.0).abs() < 1e-9);
        assert!((x1 - 9.0).abs() < 1e-9 && (y1 - 81.0).abs() < 1e-9);
    }

    #[test]
    fn straight_line_fits_exactly() {
        let pts = pts_from(12, |t| 2.0 * t + 1.0);
        let c = fit_cubic(&pts, 4).unwrap();
        let params = chord_length_params(&pts);
        let (_, err) = c.max_error(&pts, &params);
        assert!(err < 1e-6, "err {err}");
        // eval as function of time also matches
        for p in &pts {
            assert!((c.eval(p.t) - p.v).abs() < 1e-5);
        }
    }

    #[test]
    fn smooth_hump_fits_tightly() {
        // A single smooth hump is well approximated by one cubic.
        let pts: Vec<Point> = (0..21)
            .map(|i| {
                let t = i as f64 / 20.0;
                Point::new(t * 10.0, (std::f64::consts::PI * t).sin())
            })
            .collect();
        let (_, err) = fit_cubic_with_error(&pts, 6).unwrap();
        // One cubic constrained to the end tangents cannot nail a full
        // half-sine hump; ~0.16 of a unit-height hump is Schneider's result.
        assert!(err < 0.2, "err {err}");
    }

    #[test]
    fn newton_iterations_do_not_regress() {
        let pts: Vec<Point> =
            (0..15).map(|i| Point::new(i as f64, (i as f64 * 0.4).sin() * 3.0)).collect();
        let (_, e0) = fit_cubic_with_error(&pts, 0).unwrap();
        let (_, e4) = fit_cubic_with_error(&pts, 4).unwrap();
        // fit keeps the best iterate, so error is monotone non-increasing.
        assert!(e4 <= e0 + 1e-9, "e0 {e0} e4 {e4}");
    }

    #[test]
    fn two_point_fit_is_straight() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)];
        let c = fit_cubic(&pts, 4).unwrap();
        for &u in &[0.25, 0.5, 0.75] {
            let (x, y) = c.point_at(u);
            assert!((x - y).abs() < 1e-9, "off diagonal at u={u}");
        }
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(fit_cubic(&[Point::new(0.0, 0.0)], 4).is_err());
    }

    #[test]
    fn chord_params_monotone_normalized() {
        let pts = pts_from(7, |t| t.sin());
        let u = chord_length_params(&pts);
        assert_eq!(u[0], 0.0);
        assert!((u[6] - 1.0).abs() < 1e-12);
        assert!(u.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn param_for_time_inverts_x() {
        let c = fit_cubic(&pts_from(10, |t| t * 0.5), 4).unwrap();
        for &t in &[0.0, 2.5, 7.0, 9.0] {
            let u = c.param_for_time(t);
            assert!((c.point_at(u).0 - t).abs() < 1e-6, "t={t}");
        }
        assert_eq!(c.param_for_time(-5.0), 0.0);
        assert_eq!(c.param_for_time(99.0), 1.0);
    }

    #[test]
    fn derivative_of_line_is_slope() {
        let c = fit_cubic(&pts_from(10, |t| 2.0 * t + 1.0), 4).unwrap();
        let d = c.derivative(4.5);
        assert!((d - 2.0).abs() < 1e-3, "d {d}");
    }

    #[test]
    fn descriptor_has_eight_params() {
        let c = fit_cubic(&pts_from(5, |t| t), 2).unwrap();
        assert_eq!(c.parameter_count(), 8);
        match c.descriptor() {
            FunctionDescriptor::Bezier(v) => assert_eq!(v.len(), 8),
            other => panic!("unexpected {other:?}"),
        }
    }
}
