//! Deviation metrics between a fitted curve and the raw subsequence.
//!
//! The breaking template (Fig. 8) needs exactly one query: *the point of
//! maximum deviation* and whether it exceeds the tolerance ε. The paper's
//! deviation is vertical distance at the sample's abscissa; RMSE and SSE are
//! provided for the DP breaker's cost function and for reporting.

use crate::curve::Curve;
use saq_sequence::Point;

/// The worst-deviating sample of a run, relative to a fitted curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deviation {
    /// Index (within the examined slice) of the worst point.
    pub index: usize,
    /// Absolute vertical deviation at that point.
    pub value: f64,
}

/// Finds the sample with maximum absolute vertical deviation from `curve`.
///
/// Returns `None` for an empty slice.
pub fn max_deviation<C: Curve + ?Sized>(curve: &C, points: &[Point]) -> Option<Deviation> {
    if points.is_empty() {
        return None;
    }
    // Two passes over the contiguous slice: a chunked multi-accumulator
    // max (associative over the finite deviations a sequence can
    // produce, so bit-identical to a sequential fold), then a scan for
    // the first index attaining it — the same first-among-ties rule as
    // the fused one-pass loop.
    const LANES: usize = 4;
    let mut acc = [f64::NEG_INFINITY; LANES];
    let mut chunks = points.chunks_exact(LANES);
    for chunk in &mut chunks {
        for lane in 0..LANES {
            acc[lane] = acc[lane].max((curve.eval(chunk[lane].t) - chunk[lane].v).abs());
        }
    }
    let mut worst = acc.into_iter().fold(f64::NEG_INFINITY, f64::max);
    for p in chunks.remainder() {
        worst = worst.max((curve.eval(p.t) - p.v).abs());
    }
    let index = points.iter().position(|p| (curve.eval(p.t) - p.v).abs() >= worst).unwrap_or(0);
    let p = points[index];
    Some(Deviation { index, value: (curve.eval(p.t) - p.v).abs() })
}

/// Sum of squared vertical deviations.
pub fn sse_deviation<C: Curve + ?Sized>(curve: &C, points: &[Point]) -> f64 {
    points
        .iter()
        .map(|p| {
            let d = curve.eval(p.t) - p.v;
            d * d
        })
        .sum()
}

/// Root-mean-square vertical deviation; 0 for an empty slice.
pub fn rmse_deviation<C: Curve + ?Sized>(curve: &C, points: &[Point]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    (sse_deviation(curve, points) / points.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Line;

    fn pts(vals: &[f64]) -> Vec<Point> {
        vals.iter().enumerate().map(|(i, &v)| Point::new(i as f64, v)).collect()
    }

    #[test]
    fn max_deviation_picks_worst() {
        let line = Line::new(0.0, 0.0); // y = 0
        let p = pts(&[0.1, -0.5, 0.3]);
        let d = max_deviation(&line, &p).unwrap();
        assert_eq!(d.index, 1);
        assert!((d.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_deviation_empty_is_none() {
        let line = Line::new(1.0, 2.0);
        assert_eq!(max_deviation(&line, &[]), None);
    }

    #[test]
    fn max_deviation_first_among_ties() {
        let line = Line::new(0.0, 0.0);
        let p = pts(&[1.0, -1.0, 1.0]);
        assert_eq!(max_deviation(&line, &p).unwrap().index, 0);
    }

    #[test]
    fn sse_and_rmse() {
        let line = Line::new(0.0, 0.0);
        let p = pts(&[3.0, 4.0]);
        assert!((sse_deviation(&line, &p) - 25.0).abs() < 1e-12);
        assert!((rmse_deviation(&line, &p) - (12.5_f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse_deviation(&line, &[]), 0.0);
    }

    #[test]
    fn zero_deviation_on_exact_fit() {
        let line = Line::new(2.0, 1.0); // y = 2t + 1
        let p: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 2.0 * i as f64 + 1.0)).collect();
        let d = max_deviation(&line, &p).unwrap();
        assert!(d.value < 1e-12);
    }
}
