//! Polynomials of arbitrary degree with least-squares fitting.
//!
//! §4.2 lists polynomials as the canonical orderable family: ordered "by
//! degrees and coefficients, where degrees are more significant". Evaluation
//! uses Horner's rule; fitting solves the normal equations of the monomial
//! basis (adequate for the short, origin-shifted runs the breaker produces).

use crate::curve::{Curve, CurveFitter};
use crate::error::{Error, Result};
use crate::linalg::least_squares;
use crate::ordering::FunctionDescriptor;
use saq_sequence::Point;
use serde::{Deserialize, Serialize};

/// A polynomial stored by ascending-power coefficients:
/// `coeffs[0] + coeffs[1] t + coeffs[2] t² + ...`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Builds from ascending-power coefficients; trailing zero coefficients
    /// are trimmed so `degree` is meaningful. An all-zero polynomial keeps a
    /// single zero coefficient.
    pub fn new(mut coeffs: Vec<f64>) -> Polynomial {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// The constant polynomial.
    pub fn constant(c: f64) -> Polynomial {
        Polynomial { coeffs: vec![c] }
    }

    /// Degree (0 for constants).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Ascending-power coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Formal derivative.
    pub fn differentiate(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::constant(0.0);
        }
        let coeffs = self.coeffs.iter().enumerate().skip(1).map(|(i, &c)| i as f64 * c).collect();
        Polynomial::new(coeffs)
    }

    /// Least-squares fit of the given degree.
    pub fn fit(points: &[Point], degree: usize) -> Result<Polynomial> {
        if degree > 12 {
            // Monomial normal equations are hopeless beyond this.
            return Err(Error::BadDegree { degree });
        }
        let needed = degree + 1;
        if points.len() < needed {
            return Err(Error::TooFewPoints { required: needed, actual: points.len() });
        }
        // Shift to the run's start for conditioning (the paper shifts each
        // subsequence to start at time 0 anyway).
        let t0 = points[0].t;
        let design: Vec<Vec<f64>> = points
            .iter()
            .map(|p| {
                let x = p.t - t0;
                let mut row = Vec::with_capacity(needed);
                let mut pw = 1.0;
                for _ in 0..needed {
                    row.push(pw);
                    pw *= x;
                }
                row
            })
            .collect();
        let y: Vec<f64> = points.iter().map(|p| p.v).collect();
        let shifted = least_squares(&design, &y)?;
        // Un-shift: p(t) = q(t - t0); expand via synthetic Taylor shift.
        Ok(Polynomial::new(unshift(&shifted, t0)))
    }

    /// Approximate real roots of the polynomial inside `[lo, hi]`, found by
    /// sampling + bisection. Used to locate extrema (roots of the
    /// derivative).
    pub fn roots_in(&self, lo: f64, hi: f64, samples: usize) -> Vec<f64> {
        let mut roots = Vec::new();
        if samples < 2 || hi <= lo {
            return roots;
        }
        let step = (hi - lo) / (samples - 1) as f64;
        let mut prev_t = lo;
        let mut prev_v = self.eval_at(lo);
        for i in 1..samples {
            let t = lo + i as f64 * step;
            let v = self.eval_at(t);
            if prev_v == 0.0 {
                roots.push(prev_t);
            } else if prev_v * v < 0.0 {
                roots.push(bisect(|x| self.eval_at(x), prev_t, t));
            }
            prev_t = t;
            prev_v = v;
        }
        if prev_v == 0.0 {
            roots.push(prev_t);
        }
        roots
    }

    #[inline]
    fn eval_at(&self, t: f64) -> f64 {
        // Horner's rule.
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * t + c;
        }
        acc
    }
}

/// Expands `q(t - t0)` into coefficients of `t`.
fn unshift(shifted: &[f64], t0: f64) -> Vec<f64> {
    // Repeated synthetic evaluation: out(t) = sum shifted[k] (t - t0)^k.
    // Build by multiplying out (t - t0)^k incrementally.
    let n = shifted.len();
    let mut out = vec![0.0; n];
    // pow holds coefficients of (t - t0)^k, starting with k = 0 -> [1].
    let mut pow = vec![0.0; n];
    pow[0] = 1.0;
    #[allow(clippy::needless_range_loop)] // k drives both shifted[k] and the pow update
    for k in 0..n {
        for (o, &p) in out.iter_mut().zip(pow.iter()) {
            *o += shifted[k] * p;
        }
        if k + 1 < n {
            // pow *= (t - t0)
            let mut next = vec![0.0; n];
            for i in 0..n - 1 {
                next[i + 1] += pow[i];
                next[i] += -t0 * pow[i];
            }
            // The degree-n term cannot appear for k < n.
            pow = next;
        }
    }
    out
}

fn bisect<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    let mut flo = f(lo);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 {
            return mid;
        }
        if flo * fm < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    0.5 * (lo + hi)
}

impl Curve for Polynomial {
    fn eval(&self, t: f64) -> f64 {
        self.eval_at(t)
    }

    fn derivative(&self, t: f64) -> f64 {
        self.differentiate().eval_at(t)
    }

    fn descriptor(&self) -> FunctionDescriptor {
        // Descending significance: degree first via length, then high->low
        // coefficients (§4.2's "x^2 < x^2 + x" style ordering).
        let mut desc: Vec<f64> = self.coeffs.clone();
        desc.reverse();
        FunctionDescriptor::Polynomial(desc)
    }

    fn parameter_count(&self) -> usize {
        self.coeffs.len()
    }
}

/// [`CurveFitter`] adapter fitting a fixed-degree polynomial.
#[derive(Debug, Clone, Copy)]
pub struct PolynomialFitter {
    /// Degree of every fitted polynomial.
    pub degree: usize,
}

impl PolynomialFitter {
    /// Creates a fitter for the given degree.
    pub fn new(degree: usize) -> PolynomialFitter {
        PolynomialFitter { degree }
    }
}

impl CurveFitter for PolynomialFitter {
    type Curve = Polynomial;

    fn fit(&self, points: &[Point]) -> Result<Polynomial> {
        Polynomial::fit(points, self.degree)
    }

    fn min_points(&self) -> usize {
        self.degree + 1
    }

    fn fit_singleton(&self, point: Point) -> Result<Polynomial> {
        Ok(Polynomial::constant(point.v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts_from<F: Fn(f64) -> f64>(n: usize, f: F) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, f(i as f64))).collect()
    }

    #[test]
    fn horner_eval() {
        // 1 + 2t + 3t^2 at t=2 -> 17
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        assert!((p.eval(2.0) - 17.0).abs() < 1e-12);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 0);
        let z = Polynomial::new(vec![]);
        assert_eq!(z.coefficients(), &[0.0]);
    }

    #[test]
    fn derivative_rules() {
        // d/dt (1 + 2t + 3t^2) = 2 + 6t
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let d = p.differentiate();
        assert_eq!(d.coefficients(), &[2.0, 6.0]);
        assert_eq!(Polynomial::constant(5.0).differentiate().coefficients(), &[0.0]);
    }

    #[test]
    fn fit_recovers_exact_quadratic() {
        let p = pts_from(8, |t| 2.0 - t + 0.5 * t * t);
        let fit = Polynomial::fit(&p, 2).unwrap();
        for (got, want) in fit.coefficients().iter().zip([2.0, -1.0, 0.5]) {
            assert!((got - want).abs() < 1e-8, "{:?}", fit.coefficients());
        }
    }

    #[test]
    fn fit_recovers_cubic_with_offset_times() {
        let points: Vec<Point> = (0..10)
            .map(|i| {
                let t = 100.0 + i as f64;
                Point::new(t, 1.0 + 0.1 * t - 0.01 * t * t + 0.001 * t * t * t)
            })
            .collect();
        let fit = Polynomial::fit(&points, 3).unwrap();
        for p in &points {
            assert!((fit.eval(p.t) - p.v).abs() < 1e-6);
        }
    }

    #[test]
    fn fit_degree_guard() {
        let p = pts_from(3, |t| t);
        assert!(matches!(Polynomial::fit(&p, 3), Err(Error::TooFewPoints { .. })));
        assert!(matches!(Polynomial::fit(&p, 13), Err(Error::BadDegree { degree: 13 })));
    }

    #[test]
    fn roots_of_derivative_locate_extremum() {
        // v = (t-3)^2 has derivative root at t=3.
        let p = Polynomial::new(vec![9.0, -6.0, 1.0]);
        let d = p.differentiate();
        let roots = d.roots_in(0.0, 6.0, 20);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn roots_handles_endpoints_and_empty() {
        let p = Polynomial::new(vec![0.0, 1.0]); // root at 0
        let roots = p.roots_in(0.0, 1.0, 5);
        assert!(!roots.is_empty());
        assert!((roots[0] - 0.0).abs() < 1e-9);
        assert!(p.roots_in(1.0, 0.0, 5).is_empty());
    }

    #[test]
    fn fitter_adapter() {
        let f = PolynomialFitter::new(2);
        assert_eq!(f.min_points(), 3);
        let p = pts_from(5, |t| t * t);
        let c = f.fit(&p).unwrap();
        assert!((c.eval(4.0) - 16.0).abs() < 1e-8);
    }

    #[test]
    fn descriptor_is_degree_major() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        match p.descriptor() {
            FunctionDescriptor::Polynomial(d) => assert_eq!(d, vec![3.0, 2.0, 1.0]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
