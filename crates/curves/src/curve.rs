use crate::error::{Error, Result};
use crate::ordering::FunctionDescriptor;
use saq_sequence::Point;

/// A fitted real-valued function of time.
///
/// This is the "well-behaved, continuous and differentiable function" of
/// §4.2: it can be evaluated anywhere on its span (interpolating unsampled
/// points) and exposes its derivative, from which the behavioural features
/// (slopes, extrema) used by generalized approximate queries are read.
pub trait Curve {
    /// Value at time `t`.
    fn eval(&self, t: f64) -> f64;

    /// First derivative at time `t`.
    fn derivative(&self, t: f64) -> f64;

    /// A descriptor used for lexicographic ordering/indexing within the
    /// family (§4.2, item 2).
    fn descriptor(&self) -> FunctionDescriptor;

    /// Number of stored parameters — the unit of the paper's compression
    /// accounting (≈4 parameters per segment in §5.2).
    fn parameter_count(&self) -> usize;
}

/// A strategy for fitting a [`Curve`] to a run of points.
///
/// The offline breaking template (Fig. 8) is generic over this trait: "Let c
/// be a type of curve" — instantiations are endpoint interpolation,
/// least-squares regression, and Bézier fitting.
pub trait CurveFitter {
    /// The curve family produced.
    type Curve: Curve;

    /// Fits a curve to `points` (which are ordered by time).
    fn fit(&self, points: &[Point]) -> Result<Self::Curve>;

    /// Minimum number of points this fitter accepts.
    fn min_points(&self) -> usize;

    /// Fits a degenerate curve through a single point — used by breakers
    /// when an abrupt change isolates one sample. Families without a natural
    /// constant member may return an error (the default).
    fn fit_singleton(&self, _point: Point) -> Result<Self::Curve> {
        Err(Error::TooFewPoints { required: self.min_points(), actual: 1 })
    }
}
