use std::fmt;

/// Errors from curve fitting and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Fitting needed at least `required` points, got `actual`.
    TooFewPoints {
        /// Minimum points the fitter needs.
        required: usize,
        /// Points actually supplied.
        actual: usize,
    },
    /// The normal-equation system was singular (e.g. duplicate abscissae or a
    /// degree too high for the data).
    SingularSystem,
    /// A fitted parameter came out non-finite.
    NumericalFailure(&'static str),
    /// A requested polynomial degree is unsupported.
    BadDegree {
        /// The requested degree.
        degree: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TooFewPoints { required, actual } => {
                write!(f, "fitting requires at least {required} points, got {actual}")
            }
            Error::SingularSystem => write!(f, "singular system in least-squares fit"),
            Error::NumericalFailure(what) => write!(f, "numerical failure: {what}"),
            Error::BadDegree { degree } => write!(f, "unsupported polynomial degree {degree}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::TooFewPoints { required: 4, actual: 2 }.to_string().contains('4'));
        assert!(Error::SingularSystem.to_string().contains("singular"));
        assert!(Error::BadDegree { degree: 99 }.to_string().contains("99"));
        assert!(Error::NumericalFailure("nan slope").to_string().contains("nan slope"));
    }
}
