//! Linear functions: the representation behind every experiment the paper
//! reports (Figs. 6, 7, 9, Table 1).
//!
//! Two fitters are provided:
//! * [`EndpointInterpolator`] — the line through the first and last point of
//!   the run. The paper's preferred breaker uses it because it needs no
//!   processing of interior points and *effectively breaks sequences at
//!   extremum points* (§5.1).
//! * [`RegressionFitter`] — the least-squares regression line, used to
//!   *represent* each subsequence once breakpoints are chosen (Fig. 6 shows
//!   regression lines such as `.94x+97.66`).

use crate::curve::{Curve, CurveFitter};
use crate::error::{Error, Result};
use crate::ordering::FunctionDescriptor;
use saq_sequence::Point;
use serde::{Deserialize, Serialize};

/// A line `v = slope * t + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// Slope.
    pub slope: f64,
    /// Intercept (value at `t = 0`).
    pub intercept: f64,
}

impl Line {
    /// Creates a line from slope and intercept.
    pub fn new(slope: f64, intercept: f64) -> Line {
        Line { slope, intercept }
    }

    /// The line through two points. `a.t` must differ from `b.t`.
    pub fn through(a: Point, b: Point) -> Result<Line> {
        let dt = b.t - a.t;
        if dt == 0.0 {
            return Err(Error::NumericalFailure("coincident abscissae"));
        }
        let slope = (b.v - a.v) / dt;
        Ok(Line { slope, intercept: a.v - slope * a.t })
    }

    /// Least-squares regression line through `points` (≥ 2, with at least
    /// two distinct abscissae).
    pub fn regression(points: &[Point]) -> Result<Line> {
        let n = points.len();
        if n < 2 {
            return Err(Error::TooFewPoints { required: 2, actual: n });
        }
        let nf = n as f64;
        // Both reduction passes run as chunked multi-accumulator sums
        // with no cross-iteration dependency, so they autovectorize;
        // each lane's partial combines once at the end.
        const LANES: usize = 4;
        let mut sums = [[0.0f64; LANES]; 2];
        let mut chunks = points.chunks_exact(LANES);
        for chunk in &mut chunks {
            for lane in 0..LANES {
                sums[0][lane] += chunk[lane].t;
                sums[1][lane] += chunk[lane].v;
            }
        }
        let (mut st, mut sv) = (sums[0].iter().sum::<f64>(), sums[1].iter().sum::<f64>());
        for p in chunks.remainder() {
            st += p.t;
            sv += p.v;
        }
        let (mt, mv) = (st / nf, sv / nf);

        let mut moments = [[0.0f64; LANES]; 2];
        let mut chunks = points.chunks_exact(LANES);
        for chunk in &mut chunks {
            for lane in 0..LANES {
                let dt = chunk[lane].t - mt;
                moments[0][lane] += dt * dt;
                moments[1][lane] += dt * (chunk[lane].v - mv);
            }
        }
        let (mut stt, mut stv) = (moments[0].iter().sum::<f64>(), moments[1].iter().sum::<f64>());
        for p in chunks.remainder() {
            let dt = p.t - mt;
            stt += dt * dt;
            stv += dt * (p.v - mv);
        }
        if stt == 0.0 {
            return Err(Error::SingularSystem);
        }
        let slope = stv / stt;
        Ok(Line { slope, intercept: mv - slope * mt })
    }

    /// The paper's human-readable rendering, e.g. `0.94x+97.66`.
    pub fn formula(&self) -> String {
        if self.intercept >= 0.0 {
            format!("{:.3}x+{:.3}", self.slope, self.intercept)
        } else {
            format!("{:.3}x{:.3}", self.slope, self.intercept)
        }
    }
}

impl Curve for Line {
    fn eval(&self, t: f64) -> f64 {
        self.slope * t + self.intercept
    }

    fn derivative(&self, _t: f64) -> f64 {
        self.slope
    }

    fn descriptor(&self) -> FunctionDescriptor {
        FunctionDescriptor::Polynomial(vec![self.slope, self.intercept])
    }

    fn parameter_count(&self) -> usize {
        2
    }
}

/// Fits the line through the endpoints of the run (Fig. 8 instantiated with
/// interpolation lines — the algorithm of §5.1/§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EndpointInterpolator;

impl CurveFitter for EndpointInterpolator {
    type Curve = Line;

    fn fit(&self, points: &[Point]) -> Result<Line> {
        match points {
            [] | [_] => Err(Error::TooFewPoints { required: 2, actual: points.len() }),
            _ => Line::through(points[0], points[points.len() - 1]),
        }
    }

    fn min_points(&self) -> usize {
        2
    }

    fn fit_singleton(&self, point: Point) -> Result<Line> {
        Ok(Line::new(0.0, point.v))
    }
}

/// Fits the least-squares regression line of the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegressionFitter;

impl CurveFitter for RegressionFitter {
    type Curve = Line;

    fn fit(&self, points: &[Point]) -> Result<Line> {
        Line::regression(points)
    }

    fn min_points(&self) -> usize {
        2
    }

    fn fit_singleton(&self, point: Point) -> Result<Line> {
        Ok(Line::new(0.0, point.v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::max_deviation;

    fn pts(vals: &[f64]) -> Vec<Point> {
        vals.iter().enumerate().map(|(i, &v)| Point::new(i as f64, v)).collect()
    }

    #[test]
    fn through_two_points() {
        let l = Line::through(Point::new(1.0, 3.0), Point::new(3.0, 7.0)).unwrap();
        assert!((l.slope - 2.0).abs() < 1e-12);
        assert!((l.intercept - 1.0).abs() < 1e-12);
        assert!((l.eval(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn through_rejects_vertical() {
        let e = Line::through(Point::new(1.0, 0.0), Point::new(1.0, 5.0)).unwrap_err();
        assert!(matches!(e, Error::NumericalFailure(_)));
    }

    #[test]
    fn regression_exact_line() {
        let p = pts(&[1.0, 3.0, 5.0, 7.0]);
        let l = Line::regression(&p).unwrap();
        assert!((l.slope - 2.0).abs() < 1e-12);
        assert!((l.intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_balances_noise() {
        // Symmetric noise around y=x leaves slope 1 intercept ~0.
        let p = vec![
            Point::new(0.0, 0.5),
            Point::new(1.0, 0.5),
            Point::new(2.0, 2.5),
            Point::new(3.0, 2.5),
        ];
        let l = Line::regression(&p).unwrap();
        assert!((l.slope - 0.8).abs() < 1e-12, "slope {}", l.slope);
    }

    #[test]
    fn regression_needs_two_distinct_ts() {
        assert!(Line::regression(&pts(&[1.0])).is_err());
        let same_t = vec![Point::new(0.0, 1.0), Point::new(0.0, 2.0)];
        assert!(matches!(Line::regression(&same_t), Err(Error::SingularSystem)));
    }

    #[test]
    fn regression_minimizes_vs_endpoint_line() {
        // A noisy run: regression SSE must be <= interpolation SSE.
        let p = pts(&[0.0, 2.5, 1.5, 4.0, 3.0, 6.0]);
        let reg = Line::regression(&p).unwrap();
        let interp = EndpointInterpolator.fit(&p).unwrap();
        let sse = |l: &Line| -> f64 { p.iter().map(|q| (l.eval(q.t) - q.v).powi(2)).sum() };
        assert!(sse(&reg) <= sse(&interp) + 1e-9);
    }

    #[test]
    fn endpoint_fitter_is_exact_at_ends() {
        let p = pts(&[5.0, 9.0, 2.0, 8.0]);
        let l = EndpointInterpolator.fit(&p).unwrap();
        assert!((l.eval(0.0) - 5.0).abs() < 1e-12);
        assert!((l.eval(3.0) - 8.0).abs() < 1e-12);
        assert!(EndpointInterpolator.fit(&p[..1]).is_err());
    }

    #[test]
    fn interpolation_max_deviation_is_interior_extremum() {
        // Tent shape: the apex deviates most from the endpoint line.
        let p = pts(&[0.0, 5.0, 10.0, 5.0, 0.0]);
        let l = EndpointInterpolator.fit(&p).unwrap();
        let d = max_deviation(&l, &p).unwrap();
        assert_eq!(d.index, 2);
        assert!((d.value - 10.0).abs() < 1e-12);
    }

    #[test]
    fn curve_trait_line() {
        let l = Line::new(2.0, 1.0);
        assert_eq!(l.derivative(123.0), 2.0);
        assert_eq!(l.parameter_count(), 2);
        match l.descriptor() {
            FunctionDescriptor::Polynomial(c) => assert_eq!(c, vec![2.0, 1.0]),
            other => panic!("unexpected descriptor {other:?}"),
        }
    }

    #[test]
    fn formula_rendering() {
        assert_eq!(Line::new(0.94, 97.66).formula(), "0.940x+97.660");
        assert_eq!(Line::new(-1.1, -2.0).formula(), "-1.100x-2.000");
    }
}
