//! Lexicographic ordering of function descriptors.
//!
//! §4.2, item 2: "Simple lexicographic ordering/indexing exists within a
//! single family of functions" — polynomials by degree then coefficients
//! (degree more significant: `x² < x² + x`), sinusoids by amplitude,
//! frequency, phase. The ordering makes fitted functions usable as B-tree
//! keys in `saq-index`.

use std::cmp::Ordering;

/// A comparable, family-tagged summary of a fitted function.
///
/// Descriptors from *different* families order by family tag first
/// (Polynomial < Sinusoid < Bezier); within a family the paper's
/// lexicographic rules apply.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionDescriptor {
    /// Coefficients in descending significance: highest-degree first.
    /// A longer vector (higher degree) orders after a shorter one.
    Polynomial(Vec<f64>),
    /// Sinusoid ordered by amplitude, then frequency, then phase.
    Sinusoid {
        /// Amplitude.
        amp: f64,
        /// Frequency.
        freq: f64,
        /// Phase.
        phase: f64,
    },
    /// Bézier ordered by flattened control coordinates.
    Bezier(Vec<f64>),
}

impl FunctionDescriptor {
    fn family_rank(&self) -> u8 {
        match self {
            FunctionDescriptor::Polynomial(_) => 0,
            FunctionDescriptor::Sinusoid { .. } => 1,
            FunctionDescriptor::Bezier(_) => 2,
        }
    }

    /// Total ordering; `NaN`-free inputs assumed (fitters reject non-finite
    /// parameters), falling back to `Equal` on incomparable pairs.
    pub fn compare(&self, other: &FunctionDescriptor) -> Ordering {
        use FunctionDescriptor::*;
        match self.family_rank().cmp(&other.family_rank()) {
            Ordering::Equal => {}
            o => return o,
        }
        match (self, other) {
            (Polynomial(a), Polynomial(b)) => {
                // Degree (vector length) dominates.
                match a.len().cmp(&b.len()) {
                    Ordering::Equal => cmp_slices(a, b),
                    o => o,
                }
            }
            (
                Sinusoid { amp: a1, freq: f1, phase: p1 },
                Sinusoid { amp: a2, freq: f2, phase: p2 },
            ) => cmp_f64(*a1, *a2).then(cmp_f64(*f1, *f2)).then(cmp_f64(*p1, *p2)),
            (Bezier(a), Bezier(b)) => cmp_slices(a, b),
            _ => unreachable!("family ranks already matched"),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn cmp_slices(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match cmp_f64(*x, *y) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_dominates_coefficients() {
        // x^2 (coeffs desc [1,0,0]) > 100x + 100 (coeffs desc [100,100])
        let quad = FunctionDescriptor::Polynomial(vec![1.0, 0.0, 0.0]);
        let line = FunctionDescriptor::Polynomial(vec![100.0, 100.0]);
        assert_eq!(quad.compare(&line), Ordering::Greater);
        assert_eq!(line.compare(&quad), Ordering::Less);
    }

    #[test]
    fn same_degree_orders_by_leading_coefficient() {
        let a = FunctionDescriptor::Polynomial(vec![1.0, 5.0]);
        let b = FunctionDescriptor::Polynomial(vec![2.0, 0.0]);
        assert_eq!(a.compare(&b), Ordering::Less);
    }

    #[test]
    fn paper_example_x2_lt_x2_plus_x() {
        // x^2 -> [1, 0, 0]; x^2 + x -> [1, 1, 0]
        let x2 = FunctionDescriptor::Polynomial(vec![1.0, 0.0, 0.0]);
        let x2x = FunctionDescriptor::Polynomial(vec![1.0, 1.0, 0.0]);
        assert_eq!(x2.compare(&x2x), Ordering::Less);
    }

    #[test]
    fn sinusoid_ordering_priority() {
        let a = FunctionDescriptor::Sinusoid { amp: 1.0, freq: 9.0, phase: 9.0 };
        let b = FunctionDescriptor::Sinusoid { amp: 2.0, freq: 0.0, phase: 0.0 };
        assert_eq!(a.compare(&b), Ordering::Less);
        let c = FunctionDescriptor::Sinusoid { amp: 1.0, freq: 1.0, phase: 0.0 };
        let d = FunctionDescriptor::Sinusoid { amp: 1.0, freq: 1.0, phase: 0.5 };
        assert_eq!(c.compare(&d), Ordering::Less);
        assert_eq!(c.compare(&c), Ordering::Equal);
    }

    #[test]
    fn cross_family_rank() {
        let p = FunctionDescriptor::Polynomial(vec![9.0]);
        let s = FunctionDescriptor::Sinusoid { amp: 0.0, freq: 0.0, phase: 0.0 };
        let b = FunctionDescriptor::Bezier(vec![0.0]);
        assert_eq!(p.compare(&s), Ordering::Less);
        assert_eq!(s.compare(&b), Ordering::Less);
        assert_eq!(b.compare(&p), Ordering::Greater);
    }

    #[test]
    fn prefix_slices_order_by_length() {
        let short = FunctionDescriptor::Bezier(vec![1.0, 2.0]);
        let long = FunctionDescriptor::Bezier(vec![1.0, 2.0, 3.0]);
        assert_eq!(short.compare(&long), Ordering::Less);
    }
}
