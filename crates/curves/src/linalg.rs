//! Small dense linear algebra: just enough to solve the normal equations of
//! least-squares fits. Row-major square systems, Gaussian elimination with
//! partial pivoting.

use crate::error::{Error, Result};

/// A small row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major nested slice. All rows must share a length.
    ///
    /// # Panics
    /// Panics on ragged input (caller bug).
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }
}

/// Solves the square system `A x = b` by Gaussian elimination with partial
/// pivoting. `a` is consumed as scratch space conceptually (copied inside).
///
/// Returns [`Error::SingularSystem`] when a pivot is (near-)zero.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/below diagonal.
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in col + 1..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(Error::SingularSystem);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        // Eliminate below.
        let diag = m.get(col, col);
        for r in col + 1..n {
            let factor = m.get(r, col) / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = rhs[r];
        #[allow(clippy::needless_range_loop)] // triangular access pattern
        for c in r + 1..n {
            acc -= m.get(r, c) * x[c];
        }
        x[r] = acc / m.get(r, r);
        if !x[r].is_finite() {
            return Err(Error::NumericalFailure("non-finite solution component"));
        }
    }
    Ok(x)
}

/// Solves the linear least-squares problem `min ||V x - y||` through the
/// normal equations `VᵀV x = Vᵀy`, where `V` is a tall design matrix given
/// row by row via `design` (row `i` = basis functions evaluated at sample
/// `i`).
pub fn least_squares(design: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>> {
    let m = design.len();
    if m == 0 {
        return Err(Error::TooFewPoints { required: 1, actual: 0 });
    }
    let k = design[0].len();
    if m < k {
        return Err(Error::TooFewPoints { required: k, actual: m });
    }
    assert_eq!(y.len(), m, "rhs length must match design rows");
    let mut ata = Matrix::zeros(k, k);
    let mut aty = vec![0.0; k];
    for (row, &yi) in design.iter().zip(y) {
        assert_eq!(row.len(), k, "ragged design matrix");
        for i in 0..k {
            aty[i] += row[i] * yi;
            for j in i..k {
                ata.add(i, j, row[i] * row[j]);
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..k {
        for j in 0..i {
            let v = ata.get(j, i);
            ata.set(i, j, v);
        }
    }
    solve(&ata, &aty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_3x3_known() {
        // x=1, y=2, z=3
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]);
        let b = [7.0, 13.0, 1.0];
        let x = solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]).unwrap_err(), Error::SingularSystem);
    }

    #[test]
    fn least_squares_exact_line() {
        // y = 2x + 1 sampled exactly: basis [1, x]
        let design: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..5).map(|i| 2.0 * i as f64 + 1.0).collect();
        let x = least_squares(&design, &y).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 3x with symmetric noise ±0.1 alternating: slope stays ~3.
        let design: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> =
            (0..10).map(|i| 3.0 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let x = least_squares(&design, &y).unwrap();
        assert!((x[1] - 3.0).abs() < 0.02, "slope {}", x[1]);
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        let design = vec![vec![1.0, 0.0, 0.0]];
        assert!(matches!(
            least_squares(&design, &[1.0]),
            Err(Error::TooFewPoints { required: 3, actual: 1 })
        ));
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        m.add(1, 2, 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}
