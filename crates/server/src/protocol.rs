//! SAQP/1 — the `saqd` wire protocol.
//!
//! A deliberately small, hand-framed, text-over-TCP protocol: every
//! message is one *frame* (a 4-byte big-endian length followed by that
//! many bytes of UTF-8), and every frame carries an HTTP-shaped payload —
//! a verb line, `key: value` headers, a blank line, and a free-form body:
//!
//! ```text
//! QUERY SAQP/1
//! stats: true
//!
//! peaks = 2 and steepness all >= 0.4 slack 0.2
//! ```
//!
//! Responses mirror the shape with `OK`/`ERR` status lines. An `ERR`
//! payload carries the stable [`Error::code`] in a `code:` header and the
//! error's full `Display` rendering as the body, so multi-line SAQL caret
//! diagnostics survive the trip losslessly and the client can rebuild an
//! [`saq_core::Error::Remote`] with nothing flattened away.
//!
//! The body of a `QUERY` is always SAQL text: clients holding a built
//! [`saq_core::algebra::QueryExpr`] serialize it through `to_saql()` (the printer and parser
//! are inverses, property-tested in `tests/prop_saql.rs`), so one wire
//! shape serves both request bodies.

use saq_core::algebra::ExecStats;
use saq_core::query::{ApproximateMatch, QueryOutcome};
use saq_core::subscribe::Delta;
use saq_core::{Error, QueryRequest, QueryResponse, Result, SnapshotRef};
use saq_sequence::Point;
use std::io::{Read, Write};

/// The protocol name + revision, asserted on every verb and status line.
pub const PROTOCOL: &str = "SAQP/1";

/// Hard cap on one frame's payload: a megabyte of SAQL or results. Frames
/// above it are refused before allocation — a garbage length prefix must
/// not buy a garbage-sized buffer.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(Error::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
            bytes.len()
        )));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF mid-frame is a [`Error::Protocol`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len[n..]).map_err(|_| truncated())?,
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(Error::Protocol(format!(
            "peer announced a {len}-byte frame; the cap is {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|_| truncated())?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| Error::Protocol("frame payload is not UTF-8".into()))
}

fn truncated() -> Error {
    Error::Protocol("connection closed mid-frame".into())
}

/// The request verbs a `saqd` session understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Run the SAQL query in the body.
    Query,
    /// Liveness probe; answers with the current snapshot.
    Ping,
    /// Server counters (connections, queries, waves, errors).
    Stats,
    /// Pin this session to a snapshot: subsequent queries refuse to run
    /// against any other generation.
    Pin,
    /// Drop this session's pin.
    Unpin,
    /// Register the SAQL query in the body as a standing subscription;
    /// the reply carries its id in a `subscription:` header, and
    /// membership changes arrive as unsolicited [`Verb::Delta`] frames.
    Subscribe,
    /// Drop the subscription named by the `subscription:` header.
    Unsubscribe,
    /// Append points (one `t v` pair per body line) to the archived
    /// sequence named by the `id:` header, creating it if absent.
    Append,
    /// Server→client push: one subscription's membership change after a
    /// mutation wave (`subscription:`, `entered:`, `left:`, `snapshot:`
    /// headers). Clients never send this verb.
    Delta,
    /// Ask the server to stop accepting connections and drain.
    Shutdown,
}

impl Verb {
    fn as_str(self) -> &'static str {
        match self {
            Verb::Query => "QUERY",
            Verb::Ping => "PING",
            Verb::Stats => "STATS",
            Verb::Pin => "PIN",
            Verb::Unpin => "UNPIN",
            Verb::Subscribe => "SUBSCRIBE",
            Verb::Unsubscribe => "UNSUBSCRIBE",
            Verb::Append => "APPEND",
            Verb::Delta => "DELTA",
            Verb::Shutdown => "SHUTDOWN",
        }
    }

    fn parse(s: &str) -> Result<Verb> {
        Ok(match s {
            "QUERY" => Verb::Query,
            "PING" => Verb::Ping,
            "STATS" => Verb::Stats,
            "PIN" => Verb::Pin,
            "UNPIN" => Verb::Unpin,
            "SUBSCRIBE" => Verb::Subscribe,
            "UNSUBSCRIBE" => Verb::Unsubscribe,
            "APPEND" => Verb::Append,
            "DELTA" => Verb::Delta,
            "SHUTDOWN" => Verb::Shutdown,
            other => return Err(Error::Protocol(format!("unknown verb `{other}`"))),
        })
    }
}

/// One parsed request payload: verb, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// What the client asks of the server.
    pub verb: Verb,
    /// `key: value` lines between the verb line and the body.
    pub headers: Vec<(String, String)>,
    /// Free-form body; SAQL text for [`Verb::Query`].
    pub body: String,
}

impl WireRequest {
    /// A bodyless, headerless request for `verb`.
    pub fn new(verb: Verb) -> WireRequest {
        WireRequest { verb, headers: Vec::new(), body: String::new() }
    }

    /// The first value for `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        header_of(&self.headers, key)
    }

    /// Renders the payload (the exact bytes framed onto the wire).
    pub fn render(&self) -> String {
        render(&format!("{} {PROTOCOL}", self.verb.as_str()), &self.headers, &self.body)
    }

    /// Parses a payload produced by [`WireRequest::render`].
    pub fn parse(payload: &str) -> Result<WireRequest> {
        let (status, headers, body) = split(payload)?;
        let verb = match status.strip_suffix(&format!(" {PROTOCOL}")) {
            Some(verb) => Verb::parse(verb)?,
            None => return Err(Error::Protocol(format!("malformed verb line `{status}`"))),
        };
        Ok(WireRequest { verb, headers, body: body.to_string() })
    }

    /// Lowers an engine-level [`QueryRequest`] onto the wire. Built
    /// expressions are serialized through `to_saql()`; the pin and the
    /// stats/explain wants become headers.
    pub fn from_request(req: &QueryRequest) -> Result<WireRequest> {
        let body = match &req.query {
            saq_core::QueryBody::Saql(text) => text.clone(),
            saq_core::QueryBody::Expr(expr) => expr.to_saql()?,
        };
        let mut wire = WireRequest { verb: Verb::Query, headers: Vec::new(), body };
        if let Some(pin) = req.pin {
            wire.headers.push(("pin".into(), pin.to_string()));
        }
        if req.want_stats {
            wire.headers.push(("stats".into(), "true".into()));
        }
        if req.want_explain {
            wire.headers.push(("explain".into(), "true".into()));
        }
        Ok(wire)
    }

    /// Raises a [`Verb::Query`] payload back into a [`QueryRequest`]. An
    /// explicit `pin:` header wins over the session-level `session_pin`
    /// (set by a prior `PIN` verb).
    pub fn to_request(&self, session_pin: Option<SnapshotRef>) -> Result<QueryRequest> {
        let mut req = QueryRequest::saql(self.body.clone());
        req.pin = match self.header("pin") {
            Some(text) => Some(text.parse()?),
            None => session_pin,
        };
        req.want_stats = self.header("stats") == Some("true");
        req.want_explain = self.header("explain") == Some("true");
        Ok(req)
    }
}

/// One parsed response payload: `OK` or `ERR`, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// `true` for `OK`, `false` for `ERR`.
    pub ok: bool,
    /// `key: value` lines between the status line and the body.
    pub headers: Vec<(String, String)>,
    /// Free-form body: the explain rendering for queries, the full error
    /// `Display` text for `ERR`.
    pub body: String,
}

impl WireResponse {
    /// A bodyless, headerless `OK`.
    pub fn ok() -> WireResponse {
        WireResponse { ok: true, headers: Vec::new(), body: String::new() }
    }

    /// Serializes an error: its stable code in the `code:` header, its
    /// complete `Display` rendering (carets and all) as the body.
    pub fn err(code: u16, message: &str) -> WireResponse {
        WireResponse {
            ok: false,
            headers: vec![("code".into(), code.to_string())],
            body: message.to_string(),
        }
    }

    /// The first value for `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        header_of(&self.headers, key)
    }

    /// Adds a header (builder-style).
    pub fn with(mut self, key: &str, value: impl ToString) -> WireResponse {
        self.headers.push((key.into(), value.to_string()));
        self
    }

    /// Renders the payload (the exact bytes framed onto the wire).
    pub fn render(&self) -> String {
        let status = if self.ok { "OK" } else { "ERR" };
        render(&format!("{status} {PROTOCOL}"), &self.headers, &self.body)
    }

    /// Parses a payload produced by [`WireResponse::render`].
    pub fn parse(payload: &str) -> Result<WireResponse> {
        let (status, headers, body) = split(payload)?;
        let ok = match status.strip_suffix(&format!(" {PROTOCOL}")) {
            Some("OK") => true,
            Some("ERR") => false,
            _ => return Err(Error::Protocol(format!("malformed status line `{status}`"))),
        };
        Ok(WireResponse { ok, headers, body: body.to_string() })
    }

    /// Lowers a [`QueryResponse`] onto the wire, stamping the size of the
    /// coalesced wave that served it.
    pub fn from_response(resp: &QueryResponse, wave: u64) -> WireResponse {
        let approx: Vec<String> =
            resp.outcome.approximate.iter().map(|m| format!("{}:{}", m.id, m.deviation)).collect();
        let mut wire = WireResponse::ok()
            .with("wave", wave)
            .with("exact", join_ids(&resp.outcome.exact))
            .with("approx", approx.join(" "));
        if let Some(snapshot) = resp.snapshot {
            wire = wire.with("snapshot", snapshot);
        }
        if let Some(stats) = &resp.stats {
            let mut rendered = format!(
                "universe={} scanned={} index={} scan={}",
                stats.universe, stats.entries_scanned, stats.index_leaves, stats.scan_leaves
            );
            // Per-leaf observed cardinalities ride along as a comma list
            // (`-` marks a leaf short-circuiting skipped entirely).
            if !stats.observed.is_empty() {
                let observed: Vec<String> = stats
                    .observed
                    .iter()
                    .map(|o| o.map_or_else(|| "-".into(), |n| n.to_string()))
                    .collect();
                rendered.push_str(&format!(" observed={}", observed.join(",")));
            }
            wire = wire.with("stats", rendered);
        }
        if let Some(explain) = &resp.explain {
            wire.body = explain.clone();
        }
        wire
    }

    /// Raises an `OK` payload back into a [`QueryResponse`]; an `ERR`
    /// payload becomes the [`Error`] it carries (via [`Self::to_error`]).
    pub fn to_response(&self) -> Result<QueryResponse> {
        if !self.ok {
            return Err(self.to_error());
        }
        let exact = parse_ids(self.header("exact").unwrap_or_default())?;
        let approximate = self
            .header("approx")
            .unwrap_or_default()
            .split_whitespace()
            .map(|part| {
                let (id, deviation) = part
                    .split_once(':')
                    .ok_or_else(|| Error::Protocol(format!("malformed approx match `{part}`")))?;
                Ok(ApproximateMatch {
                    id: id
                        .parse()
                        .map_err(|_| Error::Protocol(format!("malformed approx id `{id}`")))?,
                    deviation: deviation.parse().map_err(|_| {
                        Error::Protocol(format!("malformed deviation `{deviation}`"))
                    })?,
                })
            })
            .collect::<Result<_>>()?;
        Ok(QueryResponse {
            outcome: QueryOutcome { exact, approximate },
            stats: self.header("stats").map(parse_stats).transpose()?,
            explain: (!self.body.is_empty()).then(|| self.body.clone()),
            snapshot: self.header("snapshot").map(str::parse).transpose()?,
        })
    }

    /// The error an `ERR` payload carries, rebuilt as [`Error::Remote`]
    /// with the original code and untouched message.
    pub fn to_error(&self) -> Error {
        let code = self.header("code").and_then(|c| c.parse().ok()).unwrap_or(9);
        Error::Remote { code, message: self.body.clone() }
    }

    /// The coalesced-wave size stamped on a query response (0 if absent).
    pub fn wave(&self) -> u64 {
        self.header("wave").and_then(|w| w.parse().ok()).unwrap_or(0)
    }
}

/// One pushed membership change: the payload of a [`Verb::Delta`] frame.
/// The server emits one per subscription whose result set changed in a
/// mutation wave; `snapshot` names the generation the membership is of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFrame {
    /// The subscription whose membership changed (wire id).
    pub subscription: u64,
    /// Ids that entered and left the result set, both ascending.
    pub delta: Delta,
    /// The snapshot the new membership was evaluated at.
    pub snapshot: Option<SnapshotRef>,
}

impl DeltaFrame {
    /// Lowers onto the wire as a `DELTA` frame payload.
    pub fn to_wire(&self) -> WireRequest {
        let mut wire = WireRequest::new(Verb::Delta);
        wire.headers.push(("subscription".into(), self.subscription.to_string()));
        wire.headers.push(("entered".into(), join_ids(&self.delta.entered)));
        wire.headers.push(("left".into(), join_ids(&self.delta.left)));
        if let Some(snapshot) = self.snapshot {
            wire.headers.push(("snapshot".into(), snapshot.to_string()));
        }
        wire
    }

    /// Raises a parsed `DELTA` frame back into the membership change.
    pub fn from_wire(wire: &WireRequest) -> Result<DeltaFrame> {
        if wire.verb != Verb::Delta {
            return Err(Error::Protocol(format!("{} frame is not a DELTA", wire.verb.as_str())));
        }
        let subscription = wire
            .header("subscription")
            .ok_or_else(|| Error::Protocol("DELTA frame is missing its subscription".into()))?
            .parse()
            .map_err(|_| Error::Protocol("malformed subscription id".into()))?;
        Ok(DeltaFrame {
            subscription,
            delta: Delta {
                entered: parse_ids(wire.header("entered").unwrap_or_default())?,
                left: parse_ids(wire.header("left").unwrap_or_default())?,
            },
            snapshot: wire.header("snapshot").map(str::parse).transpose()?,
        })
    }
}

/// Renders points as an `APPEND` body: one `t v` pair per line. `{}` on
/// `f64` is the shortest representation that parses back to the same
/// bits, so the body round-trips losslessly.
pub fn render_points(points: &[Point]) -> String {
    points.iter().map(|p| format!("{} {}\n", p.t, p.v)).collect()
}

/// Parses an `APPEND` body produced by [`render_points`].
pub fn parse_points(body: &str) -> Result<Vec<Point>> {
    body.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let (t, v) = line
                .trim()
                .split_once(' ')
                .ok_or_else(|| Error::Protocol(format!("malformed point line `{line}`")))?;
            let parse = |s: &str| {
                s.parse::<f64>()
                    .map_err(|_| Error::Protocol(format!("malformed point coordinate `{s}`")))
            };
            Ok(Point::new(parse(t)?, parse(v)?))
        })
        .collect()
}

fn header_of<'a>(headers: &'a [(String, String)], key: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn render(status: &str, headers: &[(String, String)], body: &str) -> String {
    let mut out = String::with_capacity(status.len() + body.len() + 64);
    out.push_str(status);
    out.push('\n');
    for (key, value) in headers {
        out.push_str(key);
        out.push_str(": ");
        out.push_str(value);
        out.push('\n');
    }
    out.push('\n');
    out.push_str(body);
    out
}

/// A parsed payload: status line, headers in arrival order, body.
type SplitPayload<'a> = (&'a str, Vec<(String, String)>, &'a str);

fn split(payload: &str) -> Result<SplitPayload<'_>> {
    let (head, body) = payload
        .split_once("\n\n")
        .ok_or_else(|| Error::Protocol("payload is missing the blank header/body line".into()))?;
    let mut lines = head.lines();
    let status =
        lines.next().ok_or_else(|| Error::Protocol("payload is missing a status line".into()))?;
    let headers = lines
        .map(|line| {
            line.split_once(": ")
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| Error::Protocol(format!("malformed header `{line}`")))
        })
        .collect::<Result<_>>()?;
    Ok((status, headers, body))
}

fn join_ids(ids: &[u64]) -> String {
    ids.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
}

fn parse_ids(text: &str) -> Result<Vec<u64>> {
    text.split_whitespace()
        .map(|id| id.parse().map_err(|_| Error::Protocol(format!("malformed id `{id}`"))))
        .collect()
}

fn parse_stats(text: &str) -> Result<ExecStats> {
    let mut stats = ExecStats::default();
    for part in text.split_whitespace() {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| Error::Protocol(format!("malformed stats field `{part}`")))?;
        if key == "observed" {
            stats.observed = value
                .split(',')
                .map(|o| match o {
                    "-" => Ok(None),
                    n => n.parse().map(Some).map_err(|_| {
                        Error::Protocol(format!("malformed observed cardinality `{n}`"))
                    }),
                })
                .collect::<Result<_>>()?;
            continue;
        }
        let value = value
            .parse()
            .map_err(|_| Error::Protocol(format!("malformed stats field `{part}`")))?;
        match key {
            "universe" => stats.universe = value,
            "scanned" => stats.entries_scanned = value,
            "index" => stats.index_leaves = value,
            "scan" => stats.scan_leaves = value,
            other => return Err(Error::Protocol(format!("unknown stats field `{other}`"))),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_core::algebra::QueryExpr;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversized_and_truncated_frames_are_refused() {
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert_eq!(read_frame(&mut r).unwrap_err().code(), 9);
        let mut r: &[u8] = &[0, 0, 0, 9, b'h', b'i'];
        assert_eq!(read_frame(&mut r).unwrap_err().code(), 9);
        let mut sink = Vec::new();
        let huge = "x".repeat(MAX_FRAME + 1);
        assert_eq!(write_frame(&mut sink, &huge).unwrap_err().code(), 9);
    }

    #[test]
    fn requests_round_trip_with_pins_and_wants() {
        let req = QueryRequest::saql("peaks = 2 and interval = 10 tol 3")
            .pinned(SnapshotRef::new(3, 7))
            .with_stats()
            .with_explain();
        let wire = WireRequest::from_request(&req).unwrap();
        let parsed = WireRequest::parse(&wire.render()).unwrap();
        assert_eq!(parsed, wire);
        assert_eq!(parsed.to_request(None).unwrap(), req);
    }

    #[test]
    fn expr_bodies_serialize_through_saql() {
        let expr = QueryExpr::peak_count(2, 1).and(QueryExpr::min_steepness(0.5, 0.25)).top_k(3);
        let req = QueryRequest::expr(expr.clone());
        let wire = WireRequest::from_request(&req).unwrap();
        let back = wire.to_request(None).unwrap();
        assert_eq!(*back.resolve().unwrap(), expr, "printer and parser are inverses");
    }

    #[test]
    fn session_pin_applies_only_without_an_explicit_one() {
        let session = Some(SnapshotRef::new(1, 4));
        let wire = WireRequest::from_request(&QueryRequest::saql("peaks = 1")).unwrap();
        assert_eq!(wire.to_request(session).unwrap().pin, session);
        let explicit = WireRequest::from_request(
            &QueryRequest::saql("peaks = 1").pinned(SnapshotRef::new(1, 9)),
        )
        .unwrap();
        assert_eq!(explicit.to_request(session).unwrap().pin, Some(SnapshotRef::new(1, 9)));
    }

    #[test]
    fn responses_round_trip() {
        let resp = QueryResponse {
            outcome: QueryOutcome {
                exact: vec![1, 5, 9],
                approximate: vec![ApproximateMatch { id: 4, deviation: 0.5 }],
            },
            stats: Some(ExecStats {
                universe: 24,
                entries_scanned: 7,
                index_leaves: 2,
                scan_leaves: 1,
                observed: vec![Some(4), None, Some(0)],
            }),
            explain: Some("And (exec order #0, #1)\n  #0 PeakCount via index ~4\n".into()),
            snapshot: Some(SnapshotRef::new(8, 2)),
        };
        let wire = WireResponse::from_response(&resp, 5);
        let parsed = WireResponse::parse(&wire.render()).unwrap();
        assert_eq!(parsed.wave(), 5);
        assert_eq!(parsed.to_response().unwrap(), resp);
    }

    #[test]
    fn delta_frames_round_trip() {
        let frame = DeltaFrame {
            subscription: 12,
            delta: Delta { entered: vec![3, 9], left: vec![7] },
            snapshot: Some(SnapshotRef::new(2, 41)),
        };
        let wire = frame.to_wire();
        let parsed = WireRequest::parse(&wire.render()).unwrap();
        assert_eq!(parsed.verb, Verb::Delta);
        assert_eq!(DeltaFrame::from_wire(&parsed).unwrap(), frame);
        // Empty sides render and parse as empty lists, not errors.
        let quiet = DeltaFrame { subscription: 0, delta: Delta::default(), snapshot: None };
        assert_eq!(DeltaFrame::from_wire(&quiet.to_wire()).unwrap(), quiet);
        assert!(DeltaFrame::from_wire(&WireRequest::new(Verb::Ping)).is_err());
    }

    #[test]
    fn append_bodies_round_trip_bit_exactly() {
        let points = vec![
            Point::new(0.0, 1.5),
            Point::new(0.1, -2.25),
            Point::new(1e9 + 0.125, std::f64::consts::PI),
        ];
        let body = render_points(&points);
        assert_eq!(parse_points(&body).unwrap(), points);
        assert!(parse_points("1.0").is_err(), "a lone coordinate is malformed");
        assert!(parse_points("a b").is_err());
        assert_eq!(parse_points("\n  \n").unwrap(), vec![], "blank lines are skipped");
    }

    #[test]
    fn errors_cross_the_wire_with_code_and_carets_intact() {
        let err = saq_core::lang::saql::parse("peaks == 2").unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains('^'), "caret diagnostic expected:\n{rendered}");
        let wire = WireResponse::err(err.code(), &rendered);
        let back = WireResponse::parse(&wire.render()).unwrap().to_error();
        assert_eq!(back.code(), 7, "remote errors relay the original code");
        assert_eq!(back.to_string(), format!("server error [7]: {rendered}"));
        assert!(back.to_string().contains('^'), "carets survive the round trip");
    }
}
