//! # saq-server — `saqd`, a networked SAQL server with batch coalescing
//!
//! The paper's setting is many analysts posing approximate queries over
//! one large archive of sequences. This crate puts the sharded engine
//! behind a socket so those analysts can be actual concurrent clients:
//! `saqd` listens on TCP, speaks the hand-framed [`protocol`] (SAQL text
//! in, results/explain/stats out), and — the part that makes a shared
//! server worth having — **coalesces concurrent queries into engine
//! waves**.
//!
//! ## One snapshot per coalesced wave
//!
//! Every connection gets its own reader thread, but queries do not run
//! where they arrive: connection threads enqueue jobs to a single
//! dispatcher, which drains whatever has accumulated (up to
//! [`SaqdConfig::max_wave`], waiting at most [`SaqdConfig::wave_window`]
//! for stragglers), captures **one archive snapshot**, and hands the
//! whole wave to `saq_engine`'s `run_requests`. The engine dedups shared
//! leaves across the wave and makes a single sharded pass over the
//! archive, so N clients asking related questions cost one scan's worth
//! of fetches instead of N — and every answer in the wave is
//! snapshot-consistent with every other. Per-request failures (a SAQL
//! typo, a stale pin) come back to their own client; the rest of the
//! wave is unaffected.
//!
//! ## Sessions and pins
//!
//! A connection is a session. `PIN` records the current snapshot ref and
//! stamps it on subsequent queries; once a writer moves the archive on,
//! those queries refuse with [`saq_core::Error::SnapshotMismatch`]'s stable code
//! rather than silently answering from newer data. `UNPIN` returns the
//! session to read-latest.
//!
//! ```
//! use saq_archive::{ArchiveStore, Medium};
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//! use saq_server::{SaqClient, Saqd, SaqdConfig};
//!
//! let mut archive = ArchiveStore::new(Medium::memory());
//! archive.put(7, goalpost(GoalpostSpec::default()));
//! let server = Saqd::spawn(archive, SaqdConfig::default()).unwrap();
//! let mut client = SaqClient::connect(server.addr()).unwrap();
//! let resp = client.query(&saq_core::QueryRequest::saql("peaks = 2")).unwrap();
//! assert_eq!(resp.outcome.exact, vec![7]);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;

pub use client::{RemoteEngine, SaqClient, ServerStats};
pub use protocol::DeltaFrame;

use parking_lot::Mutex;
use protocol::{parse_points, read_frame, write_frame, Verb, WireRequest, WireResponse};
use saq_archive::ArchiveStore;
use saq_core::subscribe::{SubscriptionId, SubscriptionRegistry};
use saq_core::{QueryRequest, QueryResponse, Result, SnapshotRef};
use saq_engine::{EngineConfig, QueryEngine};
use saq_sequence::Point;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for one `saqd` instance.
#[derive(Debug, Clone)]
pub struct SaqdConfig {
    /// Listen address; port 0 picks a free port (see [`Saqd::addr`]).
    pub addr: String,
    /// Most queries one dispatch wave may coalesce.
    pub max_wave: usize,
    /// How long the dispatcher holds an open wave for stragglers after
    /// the first query arrives. Zero disables coalescing (every query is
    /// its own wave) — the serial baseline the load experiment compares
    /// against.
    pub wave_window: Duration,
    /// Configuration for the sharded engine the dispatcher drives.
    pub engine: EngineConfig,
}

impl Default for SaqdConfig {
    fn default() -> Self {
        SaqdConfig {
            addr: "127.0.0.1:0".into(),
            max_wave: 16,
            wave_window: Duration::from_millis(2),
            engine: EngineConfig::default(),
        }
    }
}

/// Monotonic counters a running server maintains; snapshot them through
/// [`Saqd::metrics`] or the `STATS` verb.
#[derive(Debug, Default)]
struct Metrics {
    connections: AtomicU64,
    queries: AtomicU64,
    waves: AtomicU64,
    errors: AtomicU64,
    max_wave: AtomicU64,
    appends: AtomicU64,
    deltas: AtomicU64,
    subscriptions: AtomicU64,
}

/// A point-in-time copy of a server's [`Saqd::metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Queries executed (successfully or not).
    pub queries: u64,
    /// Dispatch waves run; `queries / waves` is the realized coalescing.
    pub waves: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Largest wave coalesced so far.
    pub max_wave: u64,
    /// Append waves applied through the `APPEND` verb.
    pub appends: u64,
    /// `DELTA` frames pushed to subscribed sessions.
    pub deltas: u64,
    /// Currently live subscriptions (a gauge, not a counter).
    pub subscriptions: u64,
}

impl Metrics {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            max_wave: self.max_wave.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            deltas: self.deltas.load(Ordering::Relaxed),
            subscriptions: self.subscriptions.load(Ordering::Relaxed),
        }
    }
}

/// The write half of one session's socket, shared between its reader
/// thread (responses) and the dispatcher (pushed `DELTA` frames).
type Sink = Arc<Mutex<TcpStream>>;

/// One unit of dispatcher work.
enum Job {
    /// A query from some connection; the answer (or the error's
    /// wire-ready `(code, message)`) goes back through `reply`, tagged
    /// with the size of the wave that served it.
    Query { req: QueryRequest, reply: SyncSender<(StdResult, u64)> },
    /// Register a standing SAQL query; membership changes push to `sink`.
    Subscribe { saql: String, sink: Sink, reply: SyncSender<WireResult<u64>> },
    /// Drop a subscription; answers whether it was live.
    Unsubscribe { id: u64, reply: SyncSender<bool> },
    /// Append points to one archived sequence (creating it if absent);
    /// answers `(generation, total points)` after the wave is applied.
    Append { id: u64, points: Vec<Point>, reply: SyncSender<WireResult<(u64, usize)>> },
    /// Stop the dispatch loop.
    Shutdown,
}

/// A result whose error half is already wire-shaped: `Error` is not
/// `Clone`, and a wave-level failure must fan out to every member.
type WireResult<T> = std::result::Result<T, (u16, String)>;
type StdResult = WireResult<QueryResponse>;

/// A running `saqd` server: an acceptor, one reader thread per
/// connection, and the single coalescing dispatcher. Dropping the handle
/// without calling [`Saqd::shutdown`] leaves the threads serving until
/// process exit.
#[derive(Debug)]
pub struct Saqd {
    addr: SocketAddr,
    jobs: Sender<Job>,
    stopping: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    acceptor: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Saqd {
    /// Binds, spawns the acceptor and dispatcher, and returns once the
    /// server is reachable. The server reads through its own handle onto
    /// the shared `archive`; keep another handle to keep writing.
    pub fn spawn(archive: ArchiveStore, config: SaqdConfig) -> Result<Saqd> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = QueryEngine::new(config.engine)?;
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let stopping = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());

        let dispatcher = {
            let archive = archive.clone();
            let metrics = metrics.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                dispatch_loop(&engine, &archive, &config, &jobs_rx, &metrics)
            })
        };

        let acceptor = {
            let jobs = jobs_tx.clone();
            let stopping = stopping.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    metrics.connections.fetch_add(1, Ordering::Relaxed);
                    let session = Session {
                        jobs: jobs.clone(),
                        stopping: stopping.clone(),
                        metrics: metrics.clone(),
                        archive: archive.clone(),
                        pin: None,
                        subs: Vec::new(),
                    };
                    std::thread::spawn(move || session.serve(stream));
                }
            })
        };

        Ok(Saqd { addr, jobs: jobs_tx, stopping, metrics, acceptor, dispatcher })
    }

    /// The address the server is listening on (with the real port when
    /// the config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the server's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Blocks until some client's `SHUTDOWN` verb stops the dispatcher,
    /// then joins the threads — the `saqd` binary's serve-forever loop.
    pub fn shutdown_when_asked(self) {
        let _ = self.dispatcher.join();
        self.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
    }

    /// Stops accepting, drains the dispatcher, and joins both threads.
    /// Open sessions see a "server is stopping" error on their next
    /// query and are left to disconnect on their own.
    pub fn shutdown(self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _ = self.jobs.send(Job::Shutdown);
        // The acceptor is parked in accept(); a throwaway connection
        // unblocks it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        let _ = self.dispatcher.join();
    }
}

/// How one job left the collection loop: a query joins the wave, a
/// control job (subscribe/unsubscribe/append) was applied and answered
/// in place, a shutdown ends the loop after this iteration.
enum Handled {
    Query((QueryRequest, SyncSender<(StdResult, u64)>)),
    Control,
    Stop,
}

/// The wave loop: take one job, hold the wave open for the configured
/// window (or until full), run the accumulated queries against **one**
/// archive snapshot, then pump the subscription registry and push the
/// resulting `DELTA` frames. Control jobs (subscriptions, appends) are
/// applied in arrival order while the wave collects, so one iteration's
/// appends are visible to its queries and to its pump.
fn dispatch_loop(
    engine: &QueryEngine,
    archive: &ArchiveStore,
    config: &SaqdConfig,
    jobs: &Receiver<Job>,
    metrics: &Metrics,
) {
    let mut archive = archive.clone();
    let mut registry = SubscriptionRegistry::new();
    let mut sinks: HashMap<u64, Sink> = HashMap::new();
    let mut last_pumped = archive.generation();
    loop {
        let mut wave: Vec<(QueryRequest, SyncSender<(StdResult, u64)>)> = Vec::new();
        let mut stop_after = false;
        match jobs.recv() {
            Ok(job) => match apply(job, &mut archive, &mut registry, &mut sinks, metrics) {
                Handled::Query(q) => wave.push(q),
                Handled::Control => {}
                Handled::Stop => stop_after = true,
            },
            Err(_) => return,
        }
        let deadline = Instant::now() + config.wave_window;
        while !stop_after && wave.len() < config.max_wave.max(1) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match jobs.recv_timeout(left) {
                Ok(job) => match apply(job, &mut archive, &mut registry, &mut sinks, metrics) {
                    Handled::Query(q) => wave.push(q),
                    Handled::Control => {}
                    Handled::Stop => stop_after = true,
                },
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    stop_after = true;
                    break;
                }
            }
        }

        let snapshot = archive.snapshot();
        if !wave.is_empty() {
            let size = wave.len() as u64;
            metrics.waves.fetch_add(1, Ordering::Relaxed);
            metrics.queries.fetch_add(size, Ordering::Relaxed);
            metrics.max_wave.fetch_max(size, Ordering::Relaxed);

            let requests: Vec<QueryRequest> = wave.iter().map(|(req, _)| req.clone()).collect();
            match engine.run_requests(&snapshot, &requests) {
                Ok(results) => {
                    for ((_, reply), result) in wave.into_iter().zip(results) {
                        let result = result.map_err(|e| {
                            metrics.errors.fetch_add(1, Ordering::Relaxed);
                            (e.code(), e.to_string())
                        });
                        let _ = reply.send((result, size));
                    }
                }
                Err(e) => {
                    // A wave-level failure (not attributable to one request)
                    // fans out to every member with the same code + message.
                    let code = e.code();
                    let message = e.to_string();
                    metrics.errors.fetch_add(size, Ordering::Relaxed);
                    for (_, reply) in wave {
                        let _ = reply.send((Err((code, message.clone())), size));
                    }
                }
            }
        }

        if !registry.is_empty() {
            // Pump against the same snapshot the wave answered from. The
            // dirty set comes from `changed_since(last_pumped)` inside
            // the engine — a wildcard (`None`) re-evaluates everything.
            match engine.pump_subscriptions(&snapshot, &mut registry, last_pumped) {
                Ok(deltas) => {
                    last_pumped = snapshot.generation();
                    let current = SnapshotRef::new(snapshot.instance_id(), snapshot.generation());
                    let mut dead = Vec::new();
                    for (id, delta) in deltas {
                        let Some(sink) = sinks.get(&id.raw()) else { continue };
                        let frame =
                            DeltaFrame { subscription: id.raw(), delta, snapshot: Some(current) };
                        if write_frame(&mut *sink.lock(), &frame.to_wire().render()).is_ok() {
                            metrics.deltas.fetch_add(1, Ordering::Relaxed);
                        } else {
                            dead.push(id);
                        }
                    }
                    // A sink that refuses writes is a gone session; its
                    // subscriptions die with it.
                    for id in dead {
                        if registry.unregister(id) {
                            metrics.subscriptions.fetch_sub(1, Ordering::Relaxed);
                        }
                        sinks.remove(&id.raw());
                    }
                }
                Err(_) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if stop_after {
            return;
        }
    }
}

/// Applies one job. Queries are deferred to the wave; everything else is
/// answered immediately so control round-trips never wait on a wave.
fn apply(
    job: Job,
    archive: &mut ArchiveStore,
    registry: &mut SubscriptionRegistry,
    sinks: &mut HashMap<u64, Sink>,
    metrics: &Metrics,
) -> Handled {
    match job {
        Job::Query { req, reply } => Handled::Query((req, reply)),
        Job::Subscribe { saql, sink, reply } => {
            let result = registry
                .register_saql(&saql)
                .map(|id| {
                    sinks.insert(id.raw(), sink);
                    metrics.subscriptions.fetch_add(1, Ordering::Relaxed);
                    id.raw()
                })
                .map_err(|e| {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (e.code(), e.to_string())
                });
            let _ = reply.send(result);
            Handled::Control
        }
        Job::Unsubscribe { id, reply } => {
            let live = registry.unregister(SubscriptionId::from_raw(id));
            sinks.remove(&id);
            if live {
                metrics.subscriptions.fetch_sub(1, Ordering::Relaxed);
            }
            let _ = reply.send(live);
            Handled::Control
        }
        Job::Append { id, points, reply } => {
            let result = archive
                .try_append_points(id, &points)
                .map(|total| {
                    metrics.appends.fetch_add(1, Ordering::Relaxed);
                    (archive.generation(), total)
                })
                .map_err(|e| {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (e.code(), e.to_string())
                });
            let _ = reply.send(result);
            Handled::Control
        }
        Job::Shutdown => Handled::Stop,
    }
}

/// Per-connection state: the reader thread's view of one session.
struct Session {
    jobs: Sender<Job>,
    stopping: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    archive: ArchiveStore,
    pin: Option<SnapshotRef>,
    /// Subscriptions this session registered, for cleanup on disconnect.
    subs: Vec<u64>,
}

impl Session {
    fn serve(mut self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        // The write half is shared with the dispatcher, which pushes
        // `DELTA` frames between (or interleaved with) responses; the
        // mutex keeps whole frames atomic on the wire.
        let writer: Sink = Arc::new(Mutex::new(stream));
        while let Ok(Some(payload)) = read_frame(&mut reader) {
            let response = match WireRequest::parse(&payload) {
                Ok(request) => self.respond(&request, &writer),
                Err(e) => WireResponse::err(e.code(), &e.to_string()),
            };
            if write_frame(&mut *writer.lock(), &response.render()).is_err() {
                break;
            }
        }
        // The socket is closing: drop this session's subscriptions so the
        // dispatcher stops evaluating (and pushing) for a gone peer.
        for id in std::mem::take(&mut self.subs) {
            let (reply, _) = mpsc::sync_channel(1);
            let _ = self.jobs.send(Job::Unsubscribe { id, reply });
        }
    }

    /// The snapshot ref the archive is currently at.
    fn current(&self) -> SnapshotRef {
        SnapshotRef::new(self.archive.instance_id(), self.archive.generation())
    }

    fn respond(&mut self, request: &WireRequest, writer: &Sink) -> WireResponse {
        match request.verb {
            Verb::Query => match request.to_request(self.pin) {
                Ok(req) => self.run_query(req),
                Err(e) => {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    WireResponse::err(e.code(), &e.to_string())
                }
            },
            Verb::Ping => WireResponse::ok().with("snapshot", self.current()),
            Verb::Stats => {
                let m = self.metrics.snapshot();
                WireResponse::ok()
                    .with("connections", m.connections)
                    .with("queries", m.queries)
                    .with("waves", m.waves)
                    .with("errors", m.errors)
                    .with("max-wave", m.max_wave)
                    .with("appends", m.appends)
                    .with("deltas", m.deltas)
                    .with("subscriptions", m.subscriptions)
                    .with("snapshot", self.current())
            }
            Verb::Subscribe => {
                let (reply, result) = mpsc::sync_channel(1);
                let job = Job::Subscribe {
                    saql: request.body.trim().to_string(),
                    sink: writer.clone(),
                    reply,
                };
                if self.stopping.load(Ordering::SeqCst) || self.jobs.send(job).is_err() {
                    return stopping_err();
                }
                match result.recv() {
                    Ok(Ok(id)) => {
                        self.subs.push(id);
                        WireResponse::ok().with("subscription", id)
                    }
                    Ok(Err((code, message))) => WireResponse::err(code, &message),
                    Err(_) => stopping_err(),
                }
            }
            Verb::Unsubscribe => {
                let id = match request.header("subscription").map(str::parse::<u64>) {
                    Some(Ok(id)) => id,
                    _ => {
                        return WireResponse::err(
                            9,
                            "protocol error: UNSUBSCRIBE needs a numeric `subscription` header",
                        )
                    }
                };
                let (reply, result) = mpsc::sync_channel(1);
                if self.jobs.send(Job::Unsubscribe { id, reply }).is_err() {
                    return stopping_err();
                }
                match result.recv() {
                    Ok(live) => {
                        self.subs.retain(|&s| s != id);
                        WireResponse::ok().with("known", live)
                    }
                    Err(_) => stopping_err(),
                }
            }
            Verb::Append => {
                let id = match request.header("id").map(str::parse::<u64>) {
                    Some(Ok(id)) => id,
                    _ => {
                        return WireResponse::err(
                            9,
                            "protocol error: APPEND needs a numeric `id` header",
                        )
                    }
                };
                let points = match parse_points(&request.body) {
                    Ok(points) => points,
                    Err(e) => return WireResponse::err(e.code(), &e.to_string()),
                };
                let (reply, result) = mpsc::sync_channel(1);
                let job = Job::Append { id, points, reply };
                if self.stopping.load(Ordering::SeqCst) || self.jobs.send(job).is_err() {
                    return stopping_err();
                }
                match result.recv() {
                    Ok(Ok((generation, total))) => WireResponse::ok()
                        .with("total", total)
                        .with("snapshot", SnapshotRef::new(self.archive.instance_id(), generation)),
                    Ok(Err((code, message))) => WireResponse::err(code, &message),
                    Err(_) => stopping_err(),
                }
            }
            Verb::Delta => {
                WireResponse::err(9, "protocol error: DELTA frames are server-push only")
            }
            Verb::Pin => {
                let pin = match request.header("snapshot").map(str::parse::<SnapshotRef>) {
                    Some(Ok(explicit)) => explicit,
                    Some(Err(e)) => return WireResponse::err(e.code(), &e.to_string()),
                    None => self.current(),
                };
                self.pin = Some(pin);
                WireResponse::ok().with("snapshot", pin)
            }
            Verb::Unpin => {
                self.pin = None;
                WireResponse::ok()
            }
            Verb::Shutdown => {
                self.stopping.store(true, Ordering::SeqCst);
                let _ = self.jobs.send(Job::Shutdown);
                WireResponse::ok()
            }
        }
    }

    fn run_query(&self, req: QueryRequest) -> WireResponse {
        if self.stopping.load(Ordering::SeqCst) {
            return stopping_err();
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if self.jobs.send(Job::Query { req, reply: reply_tx }).is_err() {
            return stopping_err();
        }
        match reply_rx.recv() {
            Ok((Ok(resp), wave)) => WireResponse::from_response(&resp, wave),
            Ok((Err((code, message)), _)) => WireResponse::err(code, &message),
            Err(_) => stopping_err(),
        }
    }
}

fn stopping_err() -> WireResponse {
    WireResponse::err(9, "protocol error: server is stopping")
}

/// Convenience re-export: the error type everything in this crate
/// returns.
pub use saq_core::Error as ServerError;

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn demo_archive() -> ArchiveStore {
        let mut archive = ArchiveStore::new(saq_archive::Medium::memory());
        for i in 0..8u64 {
            let seq = match i % 2 {
                0 => goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() }),
                _ => peaks(PeaksSpec {
                    centers: vec![12.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }),
            };
            archive.put(i, seq);
        }
        archive
    }

    #[test]
    fn serves_queries_stats_and_pins_over_a_real_socket() {
        let archive = demo_archive();
        let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();

        let resp = client.query(&QueryRequest::saql("peaks = 2").with_stats()).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6]);
        assert!(resp.stats.unwrap().universe == 8);
        let snap = resp.snapshot.unwrap();
        assert_eq!(client.ping().unwrap(), snap);

        // Pin, advance the archive through a second handle, and watch the
        // pinned session refuse while an unpinned query reads the new data.
        assert_eq!(client.pin().unwrap(), snap);
        let mut writer = archive.clone();
        writer.put(100, goalpost(GoalpostSpec { seed: 99, ..GoalpostSpec::default() }));
        let err = client.query(&QueryRequest::saql("peaks = 2")).unwrap_err();
        assert_eq!(err.code(), 8, "pinned session refuses the moved archive: {err}");
        client.unpin().unwrap();
        let resp = client.query(&QueryRequest::saql("peaks = 2")).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6, 100]);

        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.errors, 1);
        assert!(stats.connections >= 1);
        server.shutdown();
    }

    #[test]
    fn subscriptions_stream_deltas_as_appends_arrive() {
        let archive = demo_archive();
        let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();

        let sub = client.subscribe("peaks = 2").unwrap();
        // The baseline membership arrives as the first pushed frame.
        let frame = client.next_delta_within(Duration::from_secs(10)).unwrap().unwrap();
        assert_eq!(frame.subscription, sub);
        assert_eq!(frame.delta.entered, vec![0, 2, 4, 6]);
        assert!(frame.delta.left.is_empty());

        // Creating a goalpost by append brings its id into the set.
        let seq = goalpost(GoalpostSpec { seed: 42, ..GoalpostSpec::default() });
        assert_eq!(client.append(50, seq.points()).unwrap(), seq.len());
        let frame = client.next_delta_within(Duration::from_secs(10)).unwrap().unwrap();
        assert_eq!(frame.subscription, sub);
        assert_eq!(frame.delta.entered, vec![50]);
        assert!(frame.delta.left.is_empty());

        // Ordinary queries interleave with the pushed frames.
        let resp = client.query(&QueryRequest::saql("peaks = 2")).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6, 50]);

        // After UNSUBSCRIBE nothing is pushed, even though the archive
        // keeps moving (the query gives the dispatcher a wave to pump on).
        client.unsubscribe(sub).unwrap();
        let mut writer = archive.clone();
        writer.remove(0);
        client.query(&QueryRequest::saql("peaks = 2")).unwrap();
        assert!(client.next_delta_within(Duration::from_millis(200)).unwrap().is_none());

        let stats = client.stats().unwrap();
        assert_eq!(stats.appends, 1);
        assert!(stats.deltas >= 2, "baseline + append delta: {stats:?}");
        server.shutdown();
    }

    #[test]
    fn subscribe_and_append_errors_come_back_as_wire_errors() {
        let server = Saqd::spawn(demo_archive(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();
        let err = client.subscribe("peaks = ").unwrap_err();
        assert_eq!(err.code(), 7, "SAQL parse errors keep their code: {err}");
        // Appending before the stored suffix is a sequence-order error; a
        // rejected append mutates nothing.
        let err = client.append(0, &[saq_sequence::Point::new(0.0, 1.0)]).unwrap_err();
        assert!(err.to_string().contains("increasing"), "{err}");
        let resp = client.query(&QueryRequest::saql("peaks = 2")).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6]);
        assert_eq!(client.stats().unwrap().appends, 0);
        server.shutdown();
    }

    #[test]
    fn disconnecting_drops_the_sessions_subscriptions() {
        let archive = demo_archive();
        let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
        let mut subscriber = SaqClient::connect(server.addr()).unwrap();
        subscriber.subscribe("peaks = 2").unwrap();
        subscriber.next_delta_within(Duration::from_secs(10)).unwrap().unwrap();
        drop(subscriber);

        // The reader thread unregisters on disconnect; appends afterwards
        // must not evaluate for (or push to) the gone session.
        let mut client = SaqClient::connect(server.addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.stats().unwrap().subscriptions != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.stats().unwrap().subscriptions, 0, "disconnect cleans up");
        let seq = goalpost(GoalpostSpec { seed: 9, ..GoalpostSpec::default() });
        client.append(60, seq.points()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.stats().unwrap().deltas != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.stats().unwrap().deltas, 1, "only the baseline was ever pushed");
        server.shutdown();
    }

    #[test]
    fn saql_errors_reach_the_client_with_carets() {
        let server = Saqd::spawn(demo_archive(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();
        let err = client.query(&QueryRequest::saql("peaks == 2")).unwrap_err();
        assert_eq!(err.code(), 7, "{err}");
        assert!(err.to_string().contains('^'), "caret survives the wire: {err}");
        server.shutdown();
    }
}
