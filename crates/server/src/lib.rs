//! # saq-server — `saqd`, a networked SAQL server with batch coalescing
//!
//! The paper's setting is many analysts posing approximate queries over
//! one large archive of sequences. This crate puts the sharded engine
//! behind a socket so those analysts can be actual concurrent clients:
//! `saqd` listens on TCP, speaks the hand-framed [`protocol`] (SAQL text
//! in, results/explain/stats out), and — the part that makes a shared
//! server worth having — **coalesces concurrent queries into engine
//! waves**.
//!
//! ## One snapshot per coalesced wave
//!
//! Every connection gets its own reader thread, but queries do not run
//! where they arrive: connection threads enqueue jobs to a single
//! dispatcher, which drains whatever has accumulated (up to
//! [`SaqdConfig::max_wave`], waiting at most [`SaqdConfig::wave_window`]
//! for stragglers), captures **one archive snapshot**, and hands the
//! whole wave to `saq_engine`'s `run_requests`. The engine dedups shared
//! leaves across the wave and makes a single sharded pass over the
//! archive, so N clients asking related questions cost one scan's worth
//! of fetches instead of N — and every answer in the wave is
//! snapshot-consistent with every other. Per-request failures (a SAQL
//! typo, a stale pin) come back to their own client; the rest of the
//! wave is unaffected.
//!
//! ## Sessions and pins
//!
//! A connection is a session. `PIN` records the current snapshot ref and
//! stamps it on subsequent queries; once a writer moves the archive on,
//! those queries refuse with [`saq_core::Error::SnapshotMismatch`]'s stable code
//! rather than silently answering from newer data. `UNPIN` returns the
//! session to read-latest.
//!
//! ```
//! use saq_archive::{ArchiveStore, Medium};
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//! use saq_server::{SaqClient, Saqd, SaqdConfig};
//!
//! let mut archive = ArchiveStore::new(Medium::memory());
//! archive.put(7, goalpost(GoalpostSpec::default()));
//! let server = Saqd::spawn(archive, SaqdConfig::default()).unwrap();
//! let mut client = SaqClient::connect(server.addr()).unwrap();
//! let resp = client.query(&saq_core::QueryRequest::saql("peaks = 2")).unwrap();
//! assert_eq!(resp.outcome.exact, vec![7]);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;

pub use client::{RemoteEngine, SaqClient, ServerStats};

use protocol::{read_frame, write_frame, Verb, WireRequest, WireResponse};
use saq_archive::ArchiveStore;
use saq_core::{QueryRequest, QueryResponse, Result, SnapshotRef};
use saq_engine::{EngineConfig, QueryEngine};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for one `saqd` instance.
#[derive(Debug, Clone)]
pub struct SaqdConfig {
    /// Listen address; port 0 picks a free port (see [`Saqd::addr`]).
    pub addr: String,
    /// Most queries one dispatch wave may coalesce.
    pub max_wave: usize,
    /// How long the dispatcher holds an open wave for stragglers after
    /// the first query arrives. Zero disables coalescing (every query is
    /// its own wave) — the serial baseline the load experiment compares
    /// against.
    pub wave_window: Duration,
    /// Configuration for the sharded engine the dispatcher drives.
    pub engine: EngineConfig,
}

impl Default for SaqdConfig {
    fn default() -> Self {
        SaqdConfig {
            addr: "127.0.0.1:0".into(),
            max_wave: 16,
            wave_window: Duration::from_millis(2),
            engine: EngineConfig::default(),
        }
    }
}

/// Monotonic counters a running server maintains; snapshot them through
/// [`Saqd::metrics`] or the `STATS` verb.
#[derive(Debug, Default)]
struct Metrics {
    connections: AtomicU64,
    queries: AtomicU64,
    waves: AtomicU64,
    errors: AtomicU64,
    max_wave: AtomicU64,
}

/// A point-in-time copy of a server's [`Saqd::metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Queries executed (successfully or not).
    pub queries: u64,
    /// Dispatch waves run; `queries / waves` is the realized coalescing.
    pub waves: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Largest wave coalesced so far.
    pub max_wave: u64,
}

impl Metrics {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            max_wave: self.max_wave.load(Ordering::Relaxed),
        }
    }
}

/// One unit of dispatcher work.
enum Job {
    /// A query from some connection; the answer (or the error's
    /// wire-ready `(code, message)`) goes back through `reply`, tagged
    /// with the size of the wave that served it.
    Query { req: QueryRequest, reply: SyncSender<(StdResult, u64)> },
    /// Stop the dispatch loop.
    Shutdown,
}

/// A result whose error half is already wire-shaped: `Error` is not
/// `Clone`, and a wave-level failure must fan out to every member.
type StdResult = std::result::Result<QueryResponse, (u16, String)>;

/// A running `saqd` server: an acceptor, one reader thread per
/// connection, and the single coalescing dispatcher. Dropping the handle
/// without calling [`Saqd::shutdown`] leaves the threads serving until
/// process exit.
#[derive(Debug)]
pub struct Saqd {
    addr: SocketAddr,
    jobs: Sender<Job>,
    stopping: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    acceptor: JoinHandle<()>,
    dispatcher: JoinHandle<()>,
}

impl Saqd {
    /// Binds, spawns the acceptor and dispatcher, and returns once the
    /// server is reachable. The server reads through its own handle onto
    /// the shared `archive`; keep another handle to keep writing.
    pub fn spawn(archive: ArchiveStore, config: SaqdConfig) -> Result<Saqd> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let engine = QueryEngine::new(config.engine)?;
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let stopping = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(Metrics::default());

        let dispatcher = {
            let archive = archive.clone();
            let metrics = metrics.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                dispatch_loop(&engine, &archive, &config, &jobs_rx, &metrics)
            })
        };

        let acceptor = {
            let jobs = jobs_tx.clone();
            let stopping = stopping.clone();
            let metrics = metrics.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    metrics.connections.fetch_add(1, Ordering::Relaxed);
                    let session = Session {
                        jobs: jobs.clone(),
                        stopping: stopping.clone(),
                        metrics: metrics.clone(),
                        archive: archive.clone(),
                        pin: None,
                    };
                    std::thread::spawn(move || session.serve(stream));
                }
            })
        };

        Ok(Saqd { addr, jobs: jobs_tx, stopping, metrics, acceptor, dispatcher })
    }

    /// The address the server is listening on (with the real port when
    /// the config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the server's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Blocks until some client's `SHUTDOWN` verb stops the dispatcher,
    /// then joins the threads — the `saqd` binary's serve-forever loop.
    pub fn shutdown_when_asked(self) {
        let _ = self.dispatcher.join();
        self.stopping.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
    }

    /// Stops accepting, drains the dispatcher, and joins both threads.
    /// Open sessions see a "server is stopping" error on their next
    /// query and are left to disconnect on their own.
    pub fn shutdown(self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _ = self.jobs.send(Job::Shutdown);
        // The acceptor is parked in accept(); a throwaway connection
        // unblocks it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        let _ = self.dispatcher.join();
    }
}

/// The wave loop: take one job, hold the wave open for the configured
/// window (or until full), then run the whole wave against **one**
/// archive snapshot.
fn dispatch_loop(
    engine: &QueryEngine,
    archive: &ArchiveStore,
    config: &SaqdConfig,
    jobs: &Receiver<Job>,
    metrics: &Metrics,
) {
    loop {
        let first = match jobs.recv() {
            Ok(Job::Query { req, reply }) => (req, reply),
            Ok(Job::Shutdown) | Err(_) => return,
        };
        let mut wave = vec![first];
        let deadline = Instant::now() + config.wave_window;
        let mut stop_after = false;
        while wave.len() < config.max_wave.max(1) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match jobs.recv_timeout(left) {
                Ok(Job::Query { req, reply }) => wave.push((req, reply)),
                Ok(Job::Shutdown) => {
                    stop_after = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    stop_after = true;
                    break;
                }
            }
        }

        let size = wave.len() as u64;
        metrics.waves.fetch_add(1, Ordering::Relaxed);
        metrics.queries.fetch_add(size, Ordering::Relaxed);
        metrics.max_wave.fetch_max(size, Ordering::Relaxed);

        let snapshot = archive.snapshot();
        let requests: Vec<QueryRequest> = wave.iter().map(|(req, _)| req.clone()).collect();
        match engine.run_requests(&snapshot, &requests) {
            Ok(results) => {
                for ((_, reply), result) in wave.into_iter().zip(results) {
                    let result = result.map_err(|e| {
                        metrics.errors.fetch_add(1, Ordering::Relaxed);
                        (e.code(), e.to_string())
                    });
                    let _ = reply.send((result, size));
                }
            }
            Err(e) => {
                // A wave-level failure (not attributable to one request)
                // fans out to every member with the same code + message.
                let code = e.code();
                let message = e.to_string();
                metrics.errors.fetch_add(size, Ordering::Relaxed);
                for (_, reply) in wave {
                    let _ = reply.send((Err((code, message.clone())), size));
                }
            }
        }
        if stop_after {
            return;
        }
    }
}

/// Per-connection state: the reader thread's view of one session.
struct Session {
    jobs: Sender<Job>,
    stopping: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    archive: ArchiveStore,
    pin: Option<SnapshotRef>,
}

impl Session {
    fn serve(mut self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else { return };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        loop {
            let payload = match read_frame(&mut reader) {
                Ok(Some(payload)) => payload,
                Ok(None) | Err(_) => return,
            };
            let response = match WireRequest::parse(&payload) {
                Ok(request) => self.respond(&request),
                Err(e) => WireResponse::err(e.code(), &e.to_string()),
            };
            if write_frame(&mut writer, &response.render()).is_err() {
                return;
            }
        }
    }

    /// The snapshot ref the archive is currently at.
    fn current(&self) -> SnapshotRef {
        SnapshotRef::new(self.archive.instance_id(), self.archive.generation())
    }

    fn respond(&mut self, request: &WireRequest) -> WireResponse {
        match request.verb {
            Verb::Query => match request.to_request(self.pin) {
                Ok(req) => self.run_query(req),
                Err(e) => {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    WireResponse::err(e.code(), &e.to_string())
                }
            },
            Verb::Ping => WireResponse::ok().with("snapshot", self.current()),
            Verb::Stats => {
                let m = self.metrics.snapshot();
                WireResponse::ok()
                    .with("connections", m.connections)
                    .with("queries", m.queries)
                    .with("waves", m.waves)
                    .with("errors", m.errors)
                    .with("max-wave", m.max_wave)
                    .with("snapshot", self.current())
            }
            Verb::Pin => {
                let pin = match request.header("snapshot").map(str::parse::<SnapshotRef>) {
                    Some(Ok(explicit)) => explicit,
                    Some(Err(e)) => return WireResponse::err(e.code(), &e.to_string()),
                    None => self.current(),
                };
                self.pin = Some(pin);
                WireResponse::ok().with("snapshot", pin)
            }
            Verb::Unpin => {
                self.pin = None;
                WireResponse::ok()
            }
            Verb::Shutdown => {
                self.stopping.store(true, Ordering::SeqCst);
                let _ = self.jobs.send(Job::Shutdown);
                WireResponse::ok()
            }
        }
    }

    fn run_query(&self, req: QueryRequest) -> WireResponse {
        if self.stopping.load(Ordering::SeqCst) {
            return WireResponse::err(9, "protocol error: server is stopping");
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if self.jobs.send(Job::Query { req, reply: reply_tx }).is_err() {
            return WireResponse::err(9, "protocol error: server is stopping");
        }
        match reply_rx.recv() {
            Ok((Ok(resp), wave)) => WireResponse::from_response(&resp, wave),
            Ok((Err((code, message)), _)) => WireResponse::err(code, &message),
            Err(_) => WireResponse::err(9, "protocol error: server is stopping"),
        }
    }
}

/// Convenience re-export: the error type everything in this crate
/// returns.
pub use saq_core::Error as ServerError;

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn demo_archive() -> ArchiveStore {
        let mut archive = ArchiveStore::new(saq_archive::Medium::memory());
        for i in 0..8u64 {
            let seq = match i % 2 {
                0 => goalpost(GoalpostSpec { seed: i, noise: 0.1, ..GoalpostSpec::default() }),
                _ => peaks(PeaksSpec {
                    centers: vec![12.0],
                    seed: i,
                    noise: 0.1,
                    ..PeaksSpec::default()
                }),
            };
            archive.put(i, seq);
        }
        archive
    }

    #[test]
    fn serves_queries_stats_and_pins_over_a_real_socket() {
        let archive = demo_archive();
        let server = Saqd::spawn(archive.clone(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();

        let resp = client.query(&QueryRequest::saql("peaks = 2").with_stats()).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6]);
        assert!(resp.stats.unwrap().universe == 8);
        let snap = resp.snapshot.unwrap();
        assert_eq!(client.ping().unwrap(), snap);

        // Pin, advance the archive through a second handle, and watch the
        // pinned session refuse while an unpinned query reads the new data.
        assert_eq!(client.pin().unwrap(), snap);
        let mut writer = archive.clone();
        writer.put(100, goalpost(GoalpostSpec { seed: 99, ..GoalpostSpec::default() }));
        let err = client.query(&QueryRequest::saql("peaks = 2")).unwrap_err();
        assert_eq!(err.code(), 8, "pinned session refuses the moved archive: {err}");
        client.unpin().unwrap();
        let resp = client.query(&QueryRequest::saql("peaks = 2")).unwrap();
        assert_eq!(resp.outcome.exact, vec![0, 2, 4, 6, 100]);

        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.errors, 1);
        assert!(stats.connections >= 1);
        server.shutdown();
    }

    #[test]
    fn saql_errors_reach_the_client_with_carets() {
        let server = Saqd::spawn(demo_archive(), SaqdConfig::default()).unwrap();
        let mut client = SaqClient::connect(server.addr()).unwrap();
        let err = client.query(&QueryRequest::saql("peaks == 2")).unwrap_err();
        assert_eq!(err.code(), 7, "{err}");
        assert!(err.to_string().contains('^'), "caret survives the wire: {err}");
        server.shutdown();
    }
}
