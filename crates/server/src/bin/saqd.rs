//! `saqd` — the SAQL network daemon.
//!
//! Serves a demo ward (the same mixed corpus as the REPL: goalpost
//! fevers, spike trains, wandering baselines) over SAQP/1 until a client
//! sends `SHUTDOWN`. Point the REPL at it:
//!
//! ```text
//! cargo run --bin saqd -- --addr 127.0.0.1:4747 &
//! cargo run --example saql_repl -- --connect 127.0.0.1:4747
//! ```
//!
//! Flags: `--addr HOST:PORT` (default 127.0.0.1:4747, port 0 picks a free
//! one), `--sequences N` corpus size (default 64), `--max-wave N` and
//! `--window-ms MS` coalescing knobs, `--workers N` engine pool size,
//! `--data-dir PATH` durable storage (WAL + segments; the demo corpus is
//! seeded only into an *empty* directory — a restart recovers whatever
//! the last run stored instead).

use saq_archive::{ArchiveStore, DurabilityConfig, Medium};
use saq_engine::EngineConfig;
use saq_sequence::generators::{goalpost, peaks, random_walk, GoalpostSpec, PeaksSpec};
use saq_server::{Saqd, SaqdConfig};
use std::time::Duration;

fn main() {
    let mut config = SaqdConfig { addr: "127.0.0.1:4747".into(), ..SaqdConfig::default() };
    let mut sequences = 64u64;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--data-dir" => data_dir = Some(value().into()),
            "--sequences" => sequences = parse(&flag, &value()),
            "--max-wave" => config.max_wave = parse(&flag, &value()),
            "--window-ms" => config.wave_window = Duration::from_millis(parse(&flag, &value())),
            "--workers" => {
                config.engine = EngineConfig { workers: parse(&flag, &value()), ..config.engine }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: saqd [--addr HOST:PORT] [--data-dir PATH] [--sequences N] \
                     [--max-wave N] [--window-ms MS] [--workers N]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag `{other}` — try --help");
                std::process::exit(2);
            }
        }
    }

    let mut archive = match &data_dir {
        Some(dir) => {
            match ArchiveStore::open(dir.clone(), Medium::memory(), DurabilityConfig::default()) {
                Ok(archive) => archive,
                Err(e) => {
                    eprintln!("saqd failed to open {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None => ArchiveStore::new(Medium::memory()),
    };
    let recovered = archive.ids().len() as u64;
    if recovered > 0 {
        // A restart serves what the last run stored; never overwrite it
        // with demo data.
        sequences = recovered;
    }
    for i in 0..if recovered > 0 { 0 } else { sequences } {
        let seq = match i % 4 {
            0 => goalpost(GoalpostSpec { seed: i, noise: 0.12, ..GoalpostSpec::default() }),
            1 => peaks(PeaksSpec {
                centers: vec![5.0, 12.0, 19.0],
                seed: i,
                noise: 0.1,
                ..PeaksSpec::default()
            }),
            2 => peaks(PeaksSpec {
                centers: vec![12.0],
                seed: i,
                noise: 0.2,
                ..PeaksSpec::default()
            }),
            _ => random_walk(49, 0.0, 0.25, i),
        };
        archive.put(i, seq);
    }

    let max_wave = config.max_wave;
    let window = config.wave_window;
    let server = match Saqd::spawn(archive, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("saqd failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "saqd listening on {} — {sequences} sequences{}, waves ≤ {max_wave} within {:?}",
        server.addr(),
        match (&data_dir, recovered) {
            (Some(dir), 0) => format!(" (seeded into {})", dir.display()),
            (Some(dir), _) => format!(" (recovered from {})", dir.display()),
            (None, _) => String::new(),
        },
        window
    );
    println!("connect with: cargo run --example saql_repl -- --connect {}", server.addr());

    // Serve until a client sends SHUTDOWN; the handle's join-based
    // shutdown below then reaps the acceptor and dispatcher.
    server.shutdown_when_asked();
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{value}` for {flag}");
        std::process::exit(2);
    })
}
