//! The client half of SAQP/1: a blocking [`SaqClient`] plus
//! [`RemoteEngine`], which puts a remote `saqd` behind the same
//! `QueryEngine` trait as every in-process engine — the REPL's
//! `--connect` mode and any embedding code stay engine-agnostic.

use crate::protocol::{read_frame, write_frame, Verb, WireRequest, WireResponse};
use parking_lot::Mutex;
use saq_core::algebra::{ExecStats, QueryEngine, QueryExpr};
use saq_core::{Error, QueryOutcome, QueryRequest, QueryResponse, Result, SnapshotRef};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// Server counters as reported by the `STATS` verb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Queries executed (successfully or not).
    pub queries: u64,
    /// Dispatch waves run.
    pub waves: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Largest wave coalesced so far.
    pub max_wave: u64,
    /// The snapshot the server was at when it answered.
    pub snapshot: Option<SnapshotRef>,
}

impl ServerStats {
    /// Realized coalescing: queries per dispatch wave (1.0 = no
    /// amortization, N = perfect N-way waves).
    pub fn queries_per_wave(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        self.queries as f64 / self.waves as f64
    }
}

/// A blocking SAQP/1 client over one TCP connection (= one session).
#[derive(Debug)]
pub struct SaqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    last_wave: u64,
}

impl SaqClient {
    /// Connects to a running `saqd`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SaqClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(SaqClient { reader, writer, last_wave: 0 })
    }

    fn round_trip(&mut self, request: &WireRequest) -> Result<WireResponse> {
        write_frame(&mut self.writer, &request.render())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| Error::Protocol("server closed the connection".into()))?;
        WireResponse::parse(&payload)
    }

    /// Runs one query; an `ERR` reply becomes the [`Error::Remote`] it
    /// carries, code and caret diagnostics intact.
    pub fn query(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        let reply = self.round_trip(&WireRequest::from_request(req)?)?;
        self.last_wave = reply.wave();
        reply.to_response()
    }

    /// The size of the coalesced wave that served the last successful
    /// [`SaqClient::query`] (0 before the first one).
    pub fn last_wave(&self) -> u64 {
        self.last_wave
    }

    /// Liveness probe; returns the snapshot the server is serving.
    pub fn ping(&mut self) -> Result<SnapshotRef> {
        let reply = self.round_trip(&WireRequest::new(Verb::Ping))?;
        expect_snapshot(&reply)
    }

    /// Pins this session to the server's current snapshot and returns
    /// it; subsequent queries refuse to run against any other generation
    /// (code 8) until [`SaqClient::unpin`].
    pub fn pin(&mut self) -> Result<SnapshotRef> {
        let reply = self.round_trip(&WireRequest::new(Verb::Pin))?;
        expect_snapshot(&reply)
    }

    /// Pins this session to an explicit snapshot ref (one learned from a
    /// previous response, possibly on another connection).
    pub fn pin_at(&mut self, snapshot: SnapshotRef) -> Result<SnapshotRef> {
        let mut request = WireRequest::new(Verb::Pin);
        request.headers.push(("snapshot".into(), snapshot.to_string()));
        let reply = self.round_trip(&request)?;
        expect_snapshot(&reply)
    }

    /// Drops this session's pin.
    pub fn unpin(&mut self) -> Result<()> {
        let reply = self.round_trip(&WireRequest::new(Verb::Unpin))?;
        if reply.ok {
            Ok(())
        } else {
            Err(reply.to_error())
        }
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        let reply = self.round_trip(&WireRequest::new(Verb::Stats))?;
        if !reply.ok {
            return Err(reply.to_error());
        }
        let count = |key: &str| reply.header(key).and_then(|v| v.parse().ok()).unwrap_or(0);
        Ok(ServerStats {
            connections: count("connections"),
            queries: count("queries"),
            waves: count("waves"),
            errors: count("errors"),
            max_wave: count("max-wave"),
            snapshot: reply.header("snapshot").map(str::parse).transpose()?,
        })
    }

    /// Asks the server to stop accepting connections and drain.
    pub fn shutdown_server(&mut self) -> Result<()> {
        let reply = self.round_trip(&WireRequest::new(Verb::Shutdown))?;
        if reply.ok {
            Ok(())
        } else {
            Err(reply.to_error())
        }
    }
}

fn expect_snapshot(reply: &WireResponse) -> Result<SnapshotRef> {
    if !reply.ok {
        return Err(reply.to_error());
    }
    reply
        .header("snapshot")
        .ok_or_else(|| Error::Protocol("reply is missing the snapshot header".into()))?
        .parse()
}

/// A remote `saqd` behind the [`QueryEngine`] trait: `request`,
/// `explain`, and the deprecated shims all answer over the wire, so code
/// written against the trait runs unchanged against a server.
///
/// The trait takes `&self`, so the single connection sits behind a mutex;
/// callers wanting parallel in-flight queries should open one
/// [`SaqClient`] (or `RemoteEngine`) per thread — which is also what
/// gives the server's dispatcher waves to coalesce.
#[derive(Debug)]
pub struct RemoteEngine {
    client: Mutex<SaqClient>,
}

impl RemoteEngine {
    /// Connects to a running `saqd`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteEngine> {
        Ok(RemoteEngine { client: Mutex::new(SaqClient::connect(addr)?) })
    }

    /// Wraps an already-connected client.
    pub fn new(client: SaqClient) -> RemoteEngine {
        RemoteEngine { client: Mutex::new(client) }
    }
}

impl QueryEngine for RemoteEngine {
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let resp = self.request(&QueryRequest::expr(expr.clone()).with_stats())?;
        let stats = resp
            .stats
            .ok_or_else(|| Error::Protocol("server reply is missing requested stats".into()))?;
        Ok((resp.outcome, stats))
    }

    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        self.client.lock().query(req)
    }

    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        let resp = self.request(&QueryRequest::expr(expr.clone()).with_explain())?;
        resp.explain
            .ok_or_else(|| Error::Protocol("server reply is missing requested explain".into()))
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        self.client.lock().ping().ok()
    }
}
