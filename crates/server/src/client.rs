//! The client half of SAQP/1: a blocking [`SaqClient`] plus
//! [`RemoteEngine`], which puts a remote `saqd` behind the same
//! `QueryEngine` trait as every in-process engine — the REPL's
//! `--connect` mode and any embedding code stay engine-agnostic.

use crate::protocol::{
    read_frame, render_points, write_frame, DeltaFrame, Verb, WireRequest, WireResponse,
};
use parking_lot::Mutex;
use saq_core::algebra::{ExecStats, QueryEngine, QueryExpr};
use saq_core::{Error, QueryOutcome, QueryRequest, QueryResponse, Result, SnapshotRef};
use saq_sequence::Point;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Server counters as reported by the `STATS` verb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Connections accepted since startup.
    pub connections: u64,
    /// Queries executed (successfully or not).
    pub queries: u64,
    /// Dispatch waves run.
    pub waves: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Largest wave coalesced so far.
    pub max_wave: u64,
    /// Append waves applied through the `APPEND` verb.
    pub appends: u64,
    /// `DELTA` frames pushed to subscribed sessions.
    pub deltas: u64,
    /// Currently live subscriptions (a gauge, not a counter).
    pub subscriptions: u64,
    /// The snapshot the server was at when it answered.
    pub snapshot: Option<SnapshotRef>,
}

impl ServerStats {
    /// Realized coalescing: queries per dispatch wave (1.0 = no
    /// amortization, N = perfect N-way waves).
    pub fn queries_per_wave(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        self.queries as f64 / self.waves as f64
    }
}

/// A blocking SAQP/1 client over one TCP connection (= one session).
///
/// Subscribed sessions receive unsolicited `DELTA` frames; the client
/// queues any that arrive interleaved with a response and hands them out
/// through [`SaqClient::next_delta`] / [`SaqClient::next_delta_within`].
#[derive(Debug)]
pub struct SaqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    last_wave: u64,
    pending_deltas: VecDeque<DeltaFrame>,
}

impl SaqClient {
    /// Connects to a running `saqd`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SaqClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(SaqClient { reader, writer, last_wave: 0, pending_deltas: VecDeque::new() })
    }

    fn round_trip(&mut self, request: &WireRequest) -> Result<WireResponse> {
        write_frame(&mut self.writer, &request.render())?;
        loop {
            let payload = read_frame(&mut self.reader)?
                .ok_or_else(|| Error::Protocol("server closed the connection".into()))?;
            // Pushed deltas may land between a request and its response;
            // queue them for `next_delta` rather than losing them.
            if let Some(frame) = parse_push(&payload)? {
                self.pending_deltas.push_back(frame);
                continue;
            }
            return WireResponse::parse(&payload);
        }
    }

    /// Runs one query; an `ERR` reply becomes the [`Error::Remote`] it
    /// carries, code and caret diagnostics intact.
    pub fn query(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        let reply = self.round_trip(&WireRequest::from_request(req)?)?;
        self.last_wave = reply.wave();
        reply.to_response()
    }

    /// The size of the coalesced wave that served the last successful
    /// [`SaqClient::query`] (0 before the first one).
    pub fn last_wave(&self) -> u64 {
        self.last_wave
    }

    /// Liveness probe; returns the snapshot the server is serving.
    pub fn ping(&mut self) -> Result<SnapshotRef> {
        let reply = self.round_trip(&WireRequest::new(Verb::Ping))?;
        expect_snapshot(&reply)
    }

    /// Pins this session to the server's current snapshot and returns
    /// it; subsequent queries refuse to run against any other generation
    /// (code 8) until [`SaqClient::unpin`].
    pub fn pin(&mut self) -> Result<SnapshotRef> {
        let reply = self.round_trip(&WireRequest::new(Verb::Pin))?;
        expect_snapshot(&reply)
    }

    /// Pins this session to an explicit snapshot ref (one learned from a
    /// previous response, possibly on another connection).
    pub fn pin_at(&mut self, snapshot: SnapshotRef) -> Result<SnapshotRef> {
        let mut request = WireRequest::new(Verb::Pin);
        request.headers.push(("snapshot".into(), snapshot.to_string()));
        let reply = self.round_trip(&request)?;
        expect_snapshot(&reply)
    }

    /// Drops this session's pin.
    pub fn unpin(&mut self) -> Result<()> {
        let reply = self.round_trip(&WireRequest::new(Verb::Unpin))?;
        if reply.ok {
            Ok(())
        } else {
            Err(reply.to_error())
        }
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        let reply = self.round_trip(&WireRequest::new(Verb::Stats))?;
        if !reply.ok {
            return Err(reply.to_error());
        }
        let count = |key: &str| reply.header(key).and_then(|v| v.parse().ok()).unwrap_or(0);
        Ok(ServerStats {
            connections: count("connections"),
            queries: count("queries"),
            waves: count("waves"),
            errors: count("errors"),
            max_wave: count("max-wave"),
            appends: count("appends"),
            deltas: count("deltas"),
            subscriptions: count("subscriptions"),
            snapshot: reply.header("snapshot").map(str::parse).transpose()?,
        })
    }

    /// Asks the server to stop accepting connections and drain.
    pub fn shutdown_server(&mut self) -> Result<()> {
        let reply = self.round_trip(&WireRequest::new(Verb::Shutdown))?;
        if reply.ok {
            Ok(())
        } else {
            Err(reply.to_error())
        }
    }

    /// Registers the SAQL text as a standing query on this session and
    /// returns its subscription id. The baseline result set arrives as
    /// the first pushed `DELTA` frame (everything `entered`, nothing
    /// `left`); later frames report membership changes after each
    /// mutation wave.
    pub fn subscribe(&mut self, saql: &str) -> Result<u64> {
        let mut request = WireRequest::new(Verb::Subscribe);
        request.body = saql.to_string();
        let reply = self.round_trip(&request)?;
        if !reply.ok {
            return Err(reply.to_error());
        }
        reply
            .header("subscription")
            .ok_or_else(|| Error::Protocol("reply is missing the subscription header".into()))?
            .parse()
            .map_err(|_| Error::Protocol("malformed subscription id".into()))
    }

    /// Drops a subscription registered by [`SaqClient::subscribe`].
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<()> {
        let mut request = WireRequest::new(Verb::Unsubscribe);
        request.headers.push(("subscription".into(), subscription.to_string()));
        let reply = self.round_trip(&request)?;
        if reply.ok {
            Ok(())
        } else {
            Err(reply.to_error())
        }
    }

    /// Appends points to the archived sequence `id` (creating it if
    /// absent) and returns its total length afterwards. The server
    /// applies the wave, pumps the standing queries, and pushes `DELTA`
    /// frames to every affected subscriber.
    pub fn append(&mut self, id: u64, points: &[Point]) -> Result<usize> {
        let mut request = WireRequest::new(Verb::Append);
        request.headers.push(("id".into(), id.to_string()));
        request.body = render_points(points);
        let reply = self.round_trip(&request)?;
        if !reply.ok {
            return Err(reply.to_error());
        }
        reply
            .header("total")
            .ok_or_else(|| Error::Protocol("reply is missing the total header".into()))?
            .parse()
            .map_err(|_| Error::Protocol("malformed total".into()))
    }

    /// Blocks until the next pushed `DELTA` frame (already-queued frames
    /// are drained first, in arrival order).
    pub fn next_delta(&mut self) -> Result<DeltaFrame> {
        if let Some(frame) = self.pending_deltas.pop_front() {
            return Ok(frame);
        }
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| Error::Protocol("server closed the connection".into()))?;
        parse_push(&payload)?.ok_or_else(|| {
            Error::Protocol("unexpected response frame while waiting for a delta".into())
        })
    }

    /// As [`SaqClient::next_delta`], giving up after `timeout` with
    /// `Ok(None)` instead of blocking forever.
    pub fn next_delta_within(&mut self, timeout: Duration) -> Result<Option<DeltaFrame>> {
        if let Some(frame) = self.pending_deltas.pop_front() {
            return Ok(Some(frame));
        }
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let result = read_frame(&mut self.reader);
        self.reader.get_ref().set_read_timeout(None)?;
        match result {
            Ok(Some(payload)) => parse_push(&payload)?.map(Some).ok_or_else(|| {
                Error::Protocol("unexpected response frame while waiting for a delta".into())
            }),
            Ok(None) => Err(Error::Protocol("server closed the connection".into())),
            Err(Error::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Parses a pushed `DELTA` frame; `Ok(None)` for anything else (a
/// response payload).
fn parse_push(payload: &str) -> Result<Option<DeltaFrame>> {
    if !payload.starts_with("DELTA ") {
        return Ok(None);
    }
    Ok(Some(DeltaFrame::from_wire(&WireRequest::parse(payload)?)?))
}

fn expect_snapshot(reply: &WireResponse) -> Result<SnapshotRef> {
    if !reply.ok {
        return Err(reply.to_error());
    }
    reply
        .header("snapshot")
        .ok_or_else(|| Error::Protocol("reply is missing the snapshot header".into()))?
        .parse()
}

/// A remote `saqd` behind the [`QueryEngine`] trait: `request`,
/// `explain`, and the deprecated shims all answer over the wire, so code
/// written against the trait runs unchanged against a server.
///
/// The trait takes `&self`, so the single connection sits behind a mutex;
/// callers wanting parallel in-flight queries should open one
/// [`SaqClient`] (or `RemoteEngine`) per thread — which is also what
/// gives the server's dispatcher waves to coalesce.
#[derive(Debug)]
pub struct RemoteEngine {
    client: Mutex<SaqClient>,
}

impl RemoteEngine {
    /// Connects to a running `saqd`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RemoteEngine> {
        Ok(RemoteEngine { client: Mutex::new(SaqClient::connect(addr)?) })
    }

    /// Wraps an already-connected client.
    pub fn new(client: SaqClient) -> RemoteEngine {
        RemoteEngine { client: Mutex::new(client) }
    }
}

impl QueryEngine for RemoteEngine {
    fn execute_with_stats(&self, expr: &QueryExpr) -> Result<(QueryOutcome, ExecStats)> {
        let resp = self.request(&QueryRequest::expr(expr.clone()).with_stats())?;
        let stats = resp
            .stats
            .ok_or_else(|| Error::Protocol("server reply is missing requested stats".into()))?;
        Ok((resp.outcome, stats))
    }

    fn request(&self, req: &QueryRequest) -> Result<QueryResponse> {
        self.client.lock().query(req)
    }

    fn explain(&self, expr: &QueryExpr) -> Result<String> {
        let resp = self.request(&QueryRequest::expr(expr.clone()).with_explain())?;
        resp.explain
            .ok_or_else(|| Error::Protocol("server reply is missing requested explain".into()))
    }

    fn snapshot_ref(&self) -> Option<SnapshotRef> {
        self.client.lock().ping().ok()
    }
}
