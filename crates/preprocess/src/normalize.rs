//! Normalization to mean 0 and variance 1 (§7).
//!
//! The paper: "Normalization is important both for maintaining robustness of
//! our breaking algorithms and also for enhancing similarity and eliminating
//! the differences between sequences that are linear transformations (scaling
//! and translation) of each other."

use saq_sequence::Sequence;

/// The affine parameters removed by a normalization, kept so values can be
/// mapped back into original units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizeParams {
    /// Subtracted offset (mean, or min for min–max).
    pub offset: f64,
    /// Dividing scale (std-dev, or range for min–max); never zero.
    pub scale: f64,
}

impl NormalizeParams {
    /// Maps a normalized value back to original units.
    pub fn denormalize(&self, v: f64) -> f64 {
        v * self.scale + self.offset
    }
}

/// Z-normalization: output has mean 0 and (population) variance 1.
///
/// Constant sequences get scale 1 (values become all zero) so the operation
/// is total.
pub fn z_normalize(seq: &Sequence) -> (Sequence, NormalizeParams) {
    let stats = seq.stats();
    let scale = if stats.std_dev > 0.0 { stats.std_dev } else { 1.0 };
    let params = NormalizeParams { offset: stats.mean, scale };
    let out = seq
        .map_values(|v| (v - params.offset) / params.scale)
        .expect("normalization preserves finiteness");
    (out, params)
}

/// Min–max normalization onto `[0, 1]`; constant sequences map to all zeros.
pub fn min_max_normalize(seq: &Sequence) -> (Sequence, NormalizeParams) {
    let stats = seq.stats();
    let range = stats.range();
    let scale = if range > 0.0 { range } else { 1.0 };
    let offset = if seq.is_empty() { 0.0 } else { stats.min };
    let params = NormalizeParams { offset, scale };
    let out = seq
        .map_values(|v| (v - params.offset) / params.scale)
        .expect("normalization preserves finiteness");
    (out, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn z_normalize_moments() {
        let s = seq(&[2.0, 4.0, 6.0, 8.0, 10.0]);
        let (z, p) = z_normalize(&s);
        let st = z.stats();
        assert!(st.mean.abs() < 1e-12);
        assert!((st.variance - 1.0).abs() < 1e-12);
        assert_eq!(p.offset, 6.0);
    }

    #[test]
    fn z_normalize_roundtrip() {
        let s = seq(&[1.0, -3.0, 7.0, 2.0]);
        let (z, p) = z_normalize(&s);
        for (orig, norm) in s.points().iter().zip(z.points()) {
            assert!((p.denormalize(norm.v) - orig.v).abs() < 1e-12);
        }
    }

    #[test]
    fn z_normalize_constant_is_total() {
        let s = seq(&[5.0, 5.0, 5.0]);
        let (z, p) = z_normalize(&s);
        assert_eq!(z.values(), vec![0.0, 0.0, 0.0]);
        assert_eq!(p.scale, 1.0);
    }

    #[test]
    fn z_normalize_cancels_linear_transform() {
        // The paper's point: a·x + b normalizes to the same thing as x.
        let x = seq(&[1.0, 4.0, 2.0, 8.0, 5.0]);
        let y = x.map_values(|v| 3.0 * v + 100.0).unwrap();
        let (zx, _) = z_normalize(&x);
        let (zy, _) = z_normalize(&y);
        for (a, b) in zx.points().iter().zip(zy.points()) {
            assert!((a.v - b.v).abs() < 1e-12);
        }
    }

    #[test]
    fn min_max_unit_interval() {
        let s = seq(&[10.0, 20.0, 15.0]);
        let (m, p) = min_max_normalize(&s);
        assert_eq!(m.values(), vec![0.0, 1.0, 0.5]);
        assert_eq!(p.offset, 10.0);
        assert_eq!(p.scale, 10.0);
    }

    #[test]
    fn min_max_constant_total() {
        let s = seq(&[7.0, 7.0]);
        let (m, _) = min_max_normalize(&s);
        assert_eq!(m.values(), vec![0.0, 0.0]);
    }

    #[test]
    fn empty_sequences_are_fine() {
        let e = Sequence::new(vec![]).unwrap();
        let (z, _) = z_normalize(&e);
        assert!(z.is_empty());
        let (m, _) = min_max_normalize(&e);
        assert!(m.is_empty());
    }
}
