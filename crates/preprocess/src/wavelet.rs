//! Wavelet transforms (Haar and Daubechies-4) with threshold compression.
//!
//! §7: "we are experimenting with multi-resolution analysis and applying the
//! wavelet transform for compressing the sequences in a way that allows
//! extracting features from the compressed data". The discrete wavelet
//! transform here is the classic pyramid algorithm with periodic boundary
//! handling; compression zeroes the smallest-magnitude detail coefficients.

use saq_sequence::Sequence;

/// Supported wavelet bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wavelet {
    /// Haar (D2) — piecewise-constant analysis.
    Haar,
    /// Daubechies-4 — smoother analysis, better for slow trends.
    Daubechies4,
}

impl Wavelet {
    /// Low-pass (scaling) filter taps.
    fn lowpass(&self) -> &'static [f64] {
        const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
        const H: [f64; 2] = [SQRT2_INV, SQRT2_INV];
        // Daubechies-4 coefficients.
        const D4: [f64; 4] =
            [0.482962913144690, 0.836516303737469, 0.224143868041857, -0.129409522550921];
        match self {
            Wavelet::Haar => &H,
            Wavelet::Daubechies4 => &D4,
        }
    }
}

/// One full multi-level DWT of `values`. The length must be a power of two
/// (callers pad or truncate; see [`WaveletCompression`]). Output layout is
/// the standard pyramid: `[approx | detail_1 | detail_2 | ...]` in place.
pub fn dwt(values: &[f64], wavelet: Wavelet) -> Vec<f64> {
    assert!(values.len().is_power_of_two() && !values.is_empty(), "length must be a power of two");
    let mut data = values.to_vec();
    let mut n = data.len();
    let mut scratch = vec![0.0; n];
    while n >= 2 {
        transform_step(&mut data[..n], &mut scratch[..n], wavelet);
        n /= 2;
    }
    data
}

/// Inverse of [`dwt`].
pub fn idwt(coeffs: &[f64], wavelet: Wavelet) -> Vec<f64> {
    assert!(coeffs.len().is_power_of_two() && !coeffs.is_empty(), "length must be a power of two");
    let mut data = coeffs.to_vec();
    let total = data.len();
    let mut scratch = vec![0.0; total];
    let mut n = 2;
    while n <= total {
        inverse_step(&mut data[..n], &mut scratch[..n], wavelet);
        n *= 2;
    }
    data
}

fn transform_step(data: &mut [f64], scratch: &mut [f64], wavelet: Wavelet) {
    let n = data.len();
    let half = n / 2;
    let low = wavelet.lowpass();
    let k = low.len();
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (j, &lj) in low.iter().enumerate() {
            let idx = (2 * i + j) % n; // periodic boundary
            a += lj * data[idx];
            // High-pass taps by quadrature mirror: g[j] = (-1)^j h[k-1-j]
            let g = if j % 2 == 0 { low[k - 1 - j] } else { -low[k - 1 - j] };
            d += g * data[idx];
        }
        scratch[i] = a;
        scratch[half + i] = d;
    }
    data.copy_from_slice(&scratch[..n]);
}

fn inverse_step(data: &mut [f64], scratch: &mut [f64], wavelet: Wavelet) {
    let n = data.len();
    let half = n / 2;
    let low = wavelet.lowpass();
    let k = low.len();
    for s in scratch.iter_mut().take(n) {
        *s = 0.0;
    }
    for i in 0..half {
        let a = data[i];
        let d = data[half + i];
        for (j, &lj) in low.iter().enumerate() {
            let idx = (2 * i + j) % n;
            let g = if j % 2 == 0 { low[k - 1 - j] } else { -low[k - 1 - j] };
            scratch[idx] += lj * a + g * d;
        }
    }
    data.copy_from_slice(&scratch[..n]);
}

/// Result of a lossy wavelet compression of a sequence.
#[derive(Debug, Clone)]
pub struct WaveletCompression {
    /// Wavelet used.
    pub wavelet: Wavelet,
    /// Power-of-two length the values were zero-padded to.
    pub padded_len: usize,
    /// Original (un-padded) length.
    pub original_len: usize,
    /// Surviving coefficients as `(index, value)` pairs, the compressed form.
    pub coefficients: Vec<(usize, f64)>,
    /// Mean value removed before transforming (improves sparsity).
    pub mean: f64,
    /// Original start time and sampling interval for reconstruction.
    pub t0: f64,
    /// Sampling interval of the original (assumed uniform).
    pub dt: f64,
}

impl WaveletCompression {
    /// Fraction of coefficients kept, relative to the original length.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 1.0;
        }
        self.coefficients.len() as f64 / self.original_len as f64
    }

    /// Reconstructs an approximation of the original sequence.
    pub fn reconstruct(&self) -> Sequence {
        let mut coeffs = vec![0.0; self.padded_len];
        for &(i, v) in &self.coefficients {
            coeffs[i] = v;
        }
        let padded = idwt(&coeffs, self.wavelet);
        let values: Vec<f64> = padded[..self.original_len].iter().map(|v| v + self.mean).collect();
        Sequence::from_values(self.t0, self.dt, &values)
            .expect("reconstruction yields finite values")
    }
}

/// Compresses a (uniformly sampled) sequence by keeping the `keep`
/// largest-magnitude wavelet coefficients.
///
/// # Panics
/// Panics on an empty sequence or `keep == 0` (caller bug).
pub fn threshold_compress(seq: &Sequence, wavelet: Wavelet, keep: usize) -> WaveletCompression {
    assert!(!seq.is_empty(), "cannot compress an empty sequence");
    assert!(keep > 0, "must keep at least one coefficient");
    let values = seq.values();
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let padded_len = n.next_power_of_two();
    let mut padded = vec![0.0; padded_len];
    for (dst, v) in padded.iter_mut().zip(&values) {
        *dst = v - mean;
    }
    let coeffs = dwt(&padded, wavelet);
    let mut order: Vec<usize> = (0..padded_len).collect();
    order.sort_by(|&a, &b| {
        coeffs[b].abs().partial_cmp(&coeffs[a].abs()).expect("finite coefficients")
    });
    let kept = keep.min(padded_len);
    let mut coefficients: Vec<(usize, f64)> =
        order[..kept].iter().map(|&i| (i, coeffs[i])).collect();
    coefficients.sort_by_key(|&(i, _)| i);
    let (t0, dt) = match seq.points() {
        [only] => (only.t, 1.0),
        pts => (pts[0].t, pts[1].t - pts[0].t),
    };
    WaveletCompression { wavelet, padded_len, original_len: n, coefficients, mean, t0, dt }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_roundtrip_is_exact() {
        let v = [4.0, 2.0, 5.0, 5.0, 1.0, 0.0, 3.0, 6.0];
        let c = dwt(&v, Wavelet::Haar);
        let back = idwt(&c, Wavelet::Haar);
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{back:?}");
        }
    }

    #[test]
    fn d4_roundtrip_is_exact() {
        let v: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() * 5.0 + i as f64 * 0.1).collect();
        let c = dwt(&v, Wavelet::Daubechies4);
        let back = idwt(&c, Wavelet::Daubechies4);
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn haar_constant_concentrates_energy() {
        let v = [3.0; 8];
        let c = dwt(&v, Wavelet::Haar);
        // All energy in the approximation coefficient.
        assert!((c[0] - 3.0 * (8.0_f64).sqrt()).abs() < 1e-10);
        for &d in &c[1..] {
            assert!(d.abs() < 1e-10);
        }
    }

    #[test]
    fn energy_preserved_parseval() {
        let v: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64 - 3.0).collect();
        for w in [Wavelet::Haar, Wavelet::Daubechies4] {
            let c = dwt(&v, w);
            let ev: f64 = v.iter().map(|x| x * x).sum();
            let ec: f64 = c.iter().map(|x| x * x).sum();
            assert!((ev - ec).abs() < 1e-9, "{w:?}: {ev} vs {ec}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        dwt(&[1.0, 2.0, 3.0], Wavelet::Haar);
    }

    #[test]
    fn compression_keeps_peaky_shape() {
        // Two-bump signal, length 50 (padded to 64).
        let values: Vec<f64> = (0..50)
            .map(|i| {
                let t = i as f64;
                saq_sequence::generators::bump(t, 12.0, 3.0, 10.0)
                    + saq_sequence::generators::bump(t, 36.0, 3.0, 10.0)
            })
            .collect();
        let seq = Sequence::from_samples(&values).unwrap();
        let comp = threshold_compress(&seq, Wavelet::Haar, 16);
        let rec = comp.reconstruct();
        assert_eq!(rec.len(), 50);
        // Peaks survive compression: local max near 12 and 36.
        let rv = rec.values();
        let peak1 = (8..16).map(|i| rv[i]).fold(f64::MIN, f64::max);
        let peak2 = (32..40).map(|i| rv[i]).fold(f64::MIN, f64::max);
        assert!(peak1 > 6.0 && peak2 > 6.0, "peaks {peak1} {peak2}");
        // Valley stays low.
        assert!(rv[24] < 3.0, "valley {}", rv[24]);
    }

    #[test]
    fn keeping_all_coefficients_is_lossless() {
        let seq = Sequence::from_samples(&[1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 0.0, 3.0]).unwrap();
        let comp = threshold_compress(&seq, Wavelet::Daubechies4, 8);
        let rec = comp.reconstruct();
        for (a, b) in seq.points().iter().zip(rec.points()) {
            assert!((a.v - b.v).abs() < 1e-9);
        }
        assert_eq!(comp.compression_ratio(), 1.0);
    }

    #[test]
    fn compression_ratio_reported() {
        let seq = Sequence::from_samples(&(0..100).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        let comp = threshold_compress(&seq, Wavelet::Haar, 10);
        assert!((comp.compression_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(comp.padded_len, 128);
    }

    #[test]
    fn reconstruction_keeps_time_axis() {
        let seq = Sequence::from_values(5.0, 0.5, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let comp = threshold_compress(&seq, Wavelet::Haar, 4);
        let rec = comp.reconstruct();
        assert_eq!(rec.times(), seq.times());
    }

    #[test]
    fn singleton_sequence_compresses() {
        let seq = Sequence::from_samples(&[42.0]).unwrap();
        let comp = threshold_compress(&seq, Wavelet::Haar, 1);
        let rec = comp.reconstruct();
        assert!((rec[0].v - 42.0).abs() < 1e-9);
    }
}
