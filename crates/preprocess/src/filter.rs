//! Smoothing filters used for noise elimination before breaking.

use saq_sequence::Sequence;

/// Centered moving average with window `2*half + 1`; the window is clipped
/// at the sequence boundaries. `half == 0` returns a clone.
pub fn moving_average(seq: &Sequence, half: usize) -> Sequence {
    let pts = seq.points();
    let n = pts.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum: f64 = pts[lo..hi].iter().map(|p| p.v).sum();
        out.push(sum / (hi - lo) as f64);
    }
    rebuild(seq, out)
}

/// Centered median filter with window `2*half + 1`, clipped at boundaries.
/// Removes impulsive spikes while preserving edges better than averaging.
pub fn median_filter(seq: &Sequence, half: usize) -> Sequence {
    let pts = seq.points();
    let n = pts.len();
    let mut out = Vec::with_capacity(n);
    let mut window: Vec<f64> = Vec::with_capacity(2 * half + 1);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        window.clear();
        window.extend(pts[lo..hi].iter().map(|p| p.v));
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let m = window.len();
        let med =
            if m % 2 == 1 { window[m / 2] } else { 0.5 * (window[m / 2 - 1] + window[m / 2]) };
        out.push(med);
    }
    rebuild(seq, out)
}

/// Exponential smoothing `s_i = α v_i + (1-α) s_{i-1}` with `α ∈ (0, 1]`.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1]` (caller bug).
pub fn exponential_smooth(seq: &Sequence, alpha: f64) -> Sequence {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let pts = seq.points();
    let mut out = Vec::with_capacity(pts.len());
    let mut state = None;
    for p in pts {
        let s = match state {
            None => p.v,
            Some(prev) => alpha * p.v + (1.0 - alpha) * prev,
        };
        out.push(s);
        state = Some(s);
    }
    rebuild(seq, out)
}

fn rebuild(seq: &Sequence, values: Vec<f64>) -> Sequence {
    let mut i = 0;
    seq.map_values(|_| {
        let v = values[i];
        i += 1;
        v
    })
    .expect("filter outputs are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn moving_average_flattens_alternation() {
        let s = seq(&[1.0, -1.0, 1.0, -1.0, 1.0]);
        let f = moving_average(&s, 1);
        // Interior points average to ±1/3.
        assert!((f[1].v - (1.0 / 3.0)).abs() < 1e-12);
        assert!((f[2].v - (-1.0 / 3.0)).abs() < 1e-12);
        // Boundary windows are clipped (2 elements).
        assert!((f[0].v - 0.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_zero_window_is_identity() {
        let s = seq(&[3.0, 1.0, 4.0]);
        assert_eq!(moving_average(&s, 0), s);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let s = seq(&[5.0; 9]);
        assert_eq!(moving_average(&s, 3).values(), vec![5.0; 9]);
    }

    #[test]
    fn median_kills_single_spike() {
        let s = seq(&[1.0, 1.0, 100.0, 1.0, 1.0]);
        let f = median_filter(&s, 1);
        assert_eq!(f[2].v, 1.0);
        // Edges survive.
        assert_eq!(f[0].v, 1.0);
    }

    #[test]
    fn median_preserves_step_edge() {
        let s = seq(&[0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
        let f = median_filter(&s, 1);
        assert_eq!(f.values(), vec![0.0, 0.0, 0.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn median_even_window_at_boundary_averages() {
        let s = seq(&[2.0, 4.0, 6.0]);
        let f = median_filter(&s, 1);
        assert_eq!(f[0].v, 3.0); // window [2,4]
    }

    #[test]
    fn exponential_smooth_tracks_mean() {
        let s = seq(&[10.0, 10.0, 10.0, 10.0]);
        let f = exponential_smooth(&s, 0.5);
        assert_eq!(f.values(), vec![10.0; 4]);
        let step = seq(&[0.0, 10.0, 10.0, 10.0]);
        let g = exponential_smooth(&step, 0.5);
        assert_eq!(g.values(), vec![0.0, 5.0, 7.5, 8.75]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn exponential_smooth_rejects_bad_alpha() {
        exponential_smooth(&seq(&[1.0]), 0.0);
    }

    #[test]
    fn filters_keep_timestamps() {
        let s = Sequence::from_values(7.0, 0.25, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(moving_average(&s, 1).times(), s.times());
        assert_eq!(median_filter(&s, 1).times(), s.times());
        assert_eq!(exponential_smooth(&s, 0.3).times(), s.times());
    }

    #[test]
    fn empty_sequences_pass_through() {
        let e = Sequence::new(vec![]).unwrap();
        assert!(moving_average(&e, 2).is_empty());
        assert!(median_filter(&e, 2).is_empty());
        assert!(exponential_smooth(&e, 0.5).is_empty());
    }
}
