//! Composable preprocessing pipelines.
//!
//! §5.1's footnote: "To achieve robustness various kinds of preprocessing are
//! applied to the sequences prior to breaking, such as filtering for
//! eliminating noise, normalizing and compression." A [`Pipeline`] is an
//! ordered list of such stages applied before handing a sequence to a
//! breaker.

use crate::filter::{exponential_smooth, median_filter, moving_average};
use crate::normalize::z_normalize;
use crate::wavelet::{threshold_compress, Wavelet};
use saq_sequence::Sequence;

/// One preprocessing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Centered moving average with half-window size.
    MovingAverage(usize),
    /// Centered median filter with half-window size.
    MedianFilter(usize),
    /// Exponential smoothing with the given `alpha`.
    ExponentialSmooth(f64),
    /// Z-normalization (mean 0, variance 1).
    ZNormalize,
    /// Wavelet denoising: transform, keep the given number of coefficients,
    /// reconstruct.
    WaveletDenoise {
        /// Basis to use.
        wavelet: Wavelet,
        /// Coefficients to keep.
        keep: usize,
    },
}

/// An ordered preprocessing pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// An empty (identity) pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// The paper's standard pre-breaking pipeline: median despike, light
    /// moving-average smoothing, z-normalization.
    pub fn standard() -> Pipeline {
        Pipeline::new()
            .then(Stage::MedianFilter(1))
            .then(Stage::MovingAverage(1))
            .then(Stage::ZNormalize)
    }

    /// Appends a stage.
    #[must_use]
    pub fn then(mut self, stage: Stage) -> Pipeline {
        self.stages.push(stage);
        self
    }

    /// Stages in application order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Runs the pipeline.
    pub fn apply(&self, seq: &Sequence) -> Sequence {
        let mut current = seq.clone();
        for stage in &self.stages {
            current = match *stage {
                Stage::MovingAverage(half) => moving_average(&current, half),
                Stage::MedianFilter(half) => median_filter(&current, half),
                Stage::ExponentialSmooth(alpha) => exponential_smooth(&current, alpha),
                Stage::ZNormalize => z_normalize(&current).0,
                Stage::WaveletDenoise { wavelet, keep } => {
                    if current.is_empty() {
                        current
                    } else {
                        threshold_compress(&current, wavelet, keep).reconstruct()
                    }
                }
            };
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{add_gaussian_noise, add_spikes};
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    #[test]
    fn empty_pipeline_is_identity() {
        let s = Sequence::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(Pipeline::new().apply(&s), s);
    }

    #[test]
    fn stages_apply_in_order() {
        // ZNormalize then scale-check: mean must be ~0 at the end.
        let s = Sequence::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        let p = Pipeline::new().then(Stage::MovingAverage(1)).then(Stage::ZNormalize);
        let out = p.apply(&s);
        assert!(out.stats().mean.abs() < 1e-12);
        assert_eq!(p.stages().len(), 2);
    }

    #[test]
    fn standard_pipeline_denoises_goalpost() {
        let clean = goalpost(GoalpostSpec::default());
        let dirty = add_spikes(&add_gaussian_noise(&clean, 0.2, 3), 0.05, 3.0, 4);
        let out = Pipeline::standard().apply(&dirty);
        // Normalized output: two clear humps remain — correlation with the
        // normalized clean signal stays high.
        let (zc, _) = z_normalize(&clean);
        let a = zc.values();
        let b = out.values();
        let corr: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum::<f64>() / a.len() as f64;
        assert!(corr > 0.9, "correlation {corr}");
    }

    #[test]
    fn wavelet_stage_runs_and_keeps_length() {
        let s = goalpost(GoalpostSpec::default());
        let p = Pipeline::new().then(Stage::WaveletDenoise { wavelet: Wavelet::Haar, keep: 12 });
        let out = p.apply(&s);
        assert_eq!(out.len(), s.len());
    }

    #[test]
    fn wavelet_stage_tolerates_empty() {
        let e = Sequence::new(vec![]).unwrap();
        let p = Pipeline::new().then(Stage::WaveletDenoise { wavelet: Wavelet::Haar, keep: 4 });
        assert!(p.apply(&e).is_empty());
    }

    #[test]
    fn exponential_stage() {
        let s = Sequence::from_samples(&[0.0, 10.0]).unwrap();
        let out = Pipeline::new().then(Stage::ExponentialSmooth(0.5)).apply(&s);
        assert_eq!(out.values(), vec![0.0, 5.0]);
    }
}
