//! Controlled perturbation of sequences for the robustness experiments
//! (§5.1): additive Gaussian noise and impulsive spikes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saq_sequence::{generators::gaussian, Sequence};

/// Adds i.i.d. Gaussian noise of standard deviation `sigma`.
pub fn add_gaussian_noise(seq: &Sequence, sigma: f64, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    seq.map_values(|v| v + sigma * gaussian(&mut rng)).expect("noise stays finite")
}

/// Replaces a fraction `rate` of samples with `value + spike` where spike is
/// `±magnitude` (random sign). Models the impulsive glitches median
/// filtering is meant to remove.
pub fn add_spikes(seq: &Sequence, rate: f64, magnitude: f64, seed: u64) -> Sequence {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    seq.map_values(|v| {
        if rng.random::<f64>() < rate {
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            v + sign * magnitude
        } else {
            v
        }
    })
    .expect("spikes stay finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Sequence {
        Sequence::from_samples(&vec![0.0; n]).unwrap()
    }

    #[test]
    fn gaussian_noise_has_requested_scale() {
        let s = seq(10_000);
        let noisy = add_gaussian_noise(&s, 2.0, 1);
        let stats = noisy.stats();
        assert!((stats.std_dev - 2.0).abs() < 0.1, "std {}", stats.std_dev);
        assert!(stats.mean.abs() < 0.1);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let s = Sequence::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(add_gaussian_noise(&s, 0.0, 5), s);
    }

    #[test]
    fn noise_is_reproducible() {
        let s = seq(100);
        assert_eq!(add_gaussian_noise(&s, 1.0, 9), add_gaussian_noise(&s, 1.0, 9));
        assert_ne!(add_gaussian_noise(&s, 1.0, 9), add_gaussian_noise(&s, 1.0, 10));
    }

    #[test]
    fn spike_rate_is_respected() {
        let s = seq(20_000);
        let spiky = add_spikes(&s, 0.05, 10.0, 2);
        let count = spiky.values().iter().filter(|v| v.abs() > 5.0).count();
        let rate = count as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn zero_rate_is_identity() {
        let s = Sequence::from_samples(&[1.0, 2.0]).unwrap();
        assert_eq!(add_spikes(&s, 0.0, 100.0, 1), s);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_panics() {
        add_spikes(&seq(3), 1.5, 1.0, 0);
    }
}
