//! # saq-preprocess
//!
//! Preprocessing applied to raw sequences before breaking (§5.1 footnote,
//! §7): filtering for noise elimination, normalization to mean 0 / variance 1
//! (which also cancels amplitude scaling and translation between sequences),
//! and wavelet-transform compression that preserves features such as peaks.
//!
//! Noise/spike *injection* utilities are included because the robustness
//! experiments (§5.1) need controlled perturbations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod filter;
pub mod noise;
pub mod normalize;
pub mod pipeline;
pub mod wavelet;

pub use filter::{exponential_smooth, median_filter, moving_average};
pub use noise::{add_gaussian_noise, add_spikes};
pub use normalize::{min_max_normalize, z_normalize, NormalizeParams};
pub use pipeline::{Pipeline, Stage};
pub use wavelet::{dwt, idwt, threshold_compress, Wavelet, WaveletCompression};
