//! Value-based approximate matching (Fig. 1): "the result consists of all
//! stored sequences within distance δ from the desired sequence".

use saq_sequence::Sequence;

/// Maximum pointwise (L∞) distance between two equally long sequences —
/// the band semantics of Fig. 1: a stored sequence matches iff every sample
/// lies within the ±δ envelope of the query.
///
/// Returns `None` when lengths differ (value-based matching is undefined
/// then — precisely the weakness §2 exposes for dilated sequences).
/// Delegates to [`Sequence::linf_distance`], the shared definition also
/// used by the query algebra's `ValueBand` leaf.
pub fn max_pointwise_distance(a: &Sequence, b: &Sequence) -> Option<f64> {
    a.linf_distance(b)
}

/// Euclidean (L2) distance between two equally long sequences.
pub fn euclidean_distance(a: &Sequence, b: &Sequence) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let ss: f64 = a.points().iter().zip(b.points()).map(|(p, q)| (p.v - q.v) * (p.v - q.v)).sum();
    Some(ss.sqrt())
}

/// Fig. 1's query: does `stored` lie entirely within the ±δ band around
/// `query`? Length mismatches never match.
pub fn band_match(query: &Sequence, stored: &Sequence, delta: f64) -> bool {
    max_pointwise_distance(query, stored).is_some_and(|d| d <= delta)
}

/// Subsequence matching [FRM94-style, value level]: all start offsets where
/// a window of `query.len()` consecutive samples of `stored` lies within
/// Euclidean distance `delta` of the query.
pub fn sliding_matches(query: &Sequence, stored: &Sequence, delta: f64) -> Vec<usize> {
    let m = query.len();
    let n = stored.len();
    if m == 0 || n < m {
        return Vec::new();
    }
    let q: Vec<f64> = query.values();
    let s: Vec<f64> = stored.values();
    let delta2 = delta * delta;
    let mut out = Vec::new();
    for start in 0..=n - m {
        let mut ss = 0.0;
        for (j, &qv) in q.iter().enumerate() {
            let d = s[start + j] - qv;
            ss += d * d;
            if ss > delta2 {
                break;
            }
        }
        if ss <= delta2 {
            out.push(start);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_core::Transform;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn seq(vals: &[f64]) -> Sequence {
        Sequence::from_samples(vals).unwrap()
    }

    #[test]
    fn distances_basic() {
        let a = seq(&[0.0, 0.0, 0.0]);
        let b = seq(&[1.0, -2.0, 1.0]);
        assert_eq!(max_pointwise_distance(&a, &b), Some(2.0));
        assert_eq!(euclidean_distance(&a, &b), Some(6.0_f64.sqrt()));
        let c = seq(&[1.0]);
        assert_eq!(max_pointwise_distance(&a, &c), None);
        assert_eq!(euclidean_distance(&a, &c), None);
    }

    #[test]
    fn band_match_semantics() {
        let q = seq(&[1.0, 2.0, 3.0]);
        assert!(band_match(&q, &seq(&[1.4, 1.6, 3.2]), 0.5));
        assert!(!band_match(&q, &seq(&[1.6, 2.0, 3.0]), 0.5));
        assert!(!band_match(&q, &seq(&[1.0, 2.0]), 99.0), "length mismatch");
        // Exact match at delta 0.
        assert!(band_match(&q, &q, 0.0));
    }

    #[test]
    fn figure4_pointwise_fluctuations_match() {
        // Fig. 4: the same two-peak pattern with pointwise fluctuations
        // within a tolerable distance IS a value-based match.
        let clean = goalpost(GoalpostSpec::default());
        let noisy = saq_sequence::Sequence::new(
            clean
                .points()
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    saq_sequence::Point::new(p.t, p.v + if i % 2 == 0 { 0.3 } else { -0.3 })
                })
                .collect(),
        )
        .unwrap();
        assert!(band_match(&clean, &noisy, 0.5));
    }

    #[test]
    fn figure5_transforms_defeat_value_matching() {
        // Fig. 5 / §2.1: feature-preserving variants of the two-peak
        // exemplar are NOT within value distance δ. Amplitude transforms are
        // applied directly; time-domain variants (shift/contraction/
        // dilation) are re-sampled on the same 24h grid, as in the figure.
        let exemplar = goalpost(GoalpostSpec::default());
        let delta = 0.5;
        let amp_shift = Transform::AmplitudeShift(2.5).apply(&exemplar).unwrap();
        let amp_scale = Transform::AmplitudeScale(1.8).apply(&exemplar).unwrap();
        let time_shift =
            goalpost(GoalpostSpec { peak1: 11.0, peak2: 21.0, ..GoalpostSpec::default() });
        let contraction = goalpost(GoalpostSpec {
            peak1: 5.0,
            peak2: 10.0,
            width: 0.8,
            ..GoalpostSpec::default()
        });
        let dilation = goalpost(GoalpostSpec {
            peak1: 4.0,
            peak2: 19.0,
            width: 2.4,
            ..GoalpostSpec::default()
        });
        for (name, variant) in [
            ("amplitude shift", &amp_shift),
            ("amplitude scale", &amp_scale),
            ("time shift", &time_shift),
            ("contraction", &contraction),
            ("dilation", &dilation),
        ] {
            assert!(
                !band_match(&exemplar, variant, delta),
                "value matching should reject `{name}`"
            );
        }
    }

    #[test]
    fn sliding_finds_embedded_query() {
        let query = seq(&[5.0, 6.0, 7.0]);
        let stored = seq(&[0.0, 5.0, 6.0, 7.0, 0.0, 5.0, 6.0, 7.0]);
        assert_eq!(sliding_matches(&query, &stored, 0.01), vec![1, 5]);
        // Loose delta admits near misses.
        let near = seq(&[0.0, 5.2, 6.1, 6.8, 0.0]);
        assert_eq!(sliding_matches(&query, &near, 0.5), vec![1]);
        assert!(sliding_matches(&query, &near, 0.05).is_empty());
    }

    #[test]
    fn sliding_edge_cases() {
        let q = seq(&[1.0, 2.0]);
        let short = seq(&[1.0]);
        assert!(sliding_matches(&q, &short, 10.0).is_empty());
        let empty = Sequence::new(vec![]).unwrap();
        assert!(sliding_matches(&empty, &q, 10.0).is_empty());
    }
}
