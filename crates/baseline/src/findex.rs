//! An F-index-style similarity search \[AFS93\]:
//! sequences → first `k` DFT coefficient moduli → Euclidean range queries
//! in feature space. By Parseval, feature-space distance lower-bounds true
//! (time-domain) Euclidean distance, so feature filtering admits false hits
//! but never false dismissals.
//!
//! §3's critique is demonstrated against this structure: frequency-domain
//! proximity cannot recognize dilated/contracted variants of a shape
//! ("none of the sequences of Figure 5 matches the sequence given in
//! Figure 3 if main frequencies are compared").

use crate::dft::{fft, Complex};
use saq_sequence::Sequence;

/// A `k`-dimensional DFT feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    coords: Vec<f64>,
}

impl FeatureVector {
    /// Extracts the feature vector of a sequence: moduli of DFT bins
    /// `1..=k` of the z-normalized, zero-padded signal (bin 0 is dropped —
    /// normalization zeroes the mean, making the feature translation
    /// invariant, as \[GK95\] extends).
    pub fn extract(seq: &Sequence, k: usize) -> FeatureVector {
        let values = seq.values();
        let n = values.len().max(1);
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let scale = if var > 0.0 { var.sqrt() } else { 1.0 };
        let padded_len = n.next_power_of_two().max(2);
        let mut padded = vec![0.0; padded_len];
        for (dst, v) in padded.iter_mut().zip(&values) {
            *dst = (v - mean) / scale;
        }
        let spectrum = fft(&padded);
        // Normalize by length so features are comparable across lengths.
        let norm = 1.0 / (padded_len as f64).sqrt();
        let coords = spectrum.iter().skip(1).take(k).map(|c: &Complex| c.abs() * norm).collect();
        FeatureVector { coords }
    }

    /// The coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Euclidean distance in feature space.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        let len = self.coords.len().max(other.coords.len());
        let mut ss = 0.0;
        for i in 0..len {
            let a = self.coords.get(i).copied().unwrap_or(0.0);
            let b = other.coords.get(i).copied().unwrap_or(0.0);
            ss += (a - b) * (a - b);
        }
        ss.sqrt()
    }
}

/// A linear-scan F-index over feature vectors (the original uses R*-trees
/// over minimal bounding rectangles; a scan preserves the semantics that
/// matter here — which candidates pass the feature filter).
#[derive(Debug, Default)]
pub struct FIndex {
    k: usize,
    entries: Vec<(u64, FeatureVector)>,
}

impl FIndex {
    /// An index keeping `k` DFT coefficients per sequence.
    pub fn new(k: usize) -> FIndex {
        FIndex { k, entries: Vec::new() }
    }

    /// Number of indexed sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indexes a sequence under `id`.
    pub fn insert(&mut self, id: u64, seq: &Sequence) {
        self.entries.push((id, FeatureVector::extract(seq, self.k)));
    }

    /// Ids whose feature vectors lie within `epsilon` of the query's — the
    /// candidate set (no false dismissals w.r.t. time-domain distance on
    /// equal-length normalized signals; possible false hits).
    pub fn range_query(&self, query: &Sequence, epsilon: f64) -> Vec<u64> {
        let qf = FeatureVector::extract(query, self.k);
        let mut out: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, f)| qf.distance(f) <= epsilon)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Nearest neighbour in feature space (id and distance).
    pub fn nearest(&self, query: &Sequence) -> Option<(u64, f64)> {
        let qf = FeatureVector::extract(query, self.k);
        self.entries
            .iter()
            .map(|(id, f)| (*id, qf.distance(f)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_core::Transform;
    use saq_sequence::generators::{goalpost, sinusoid, GoalpostSpec};

    #[test]
    fn identical_sequences_have_zero_feature_distance() {
        let s = goalpost(GoalpostSpec::default());
        let a = FeatureVector::extract(&s, 8);
        let b = FeatureVector::extract(&s, 8);
        assert!(a.distance(&b) < 1e-12);
        assert_eq!(a.coords().len(), 8);
    }

    #[test]
    fn translation_and_scaling_invariance() {
        // \[GK95\]'s shift/scale extension: z-normalized features cancel both.
        let s = goalpost(GoalpostSpec::default());
        let shifted = Transform::AmplitudeShift(40.0).apply(&s).unwrap();
        let scaled = Transform::AmplitudeScale(3.0).apply(&s).unwrap();
        let f = FeatureVector::extract(&s, 8);
        assert!(f.distance(&FeatureVector::extract(&shifted, 8)) < 1e-9);
        assert!(f.distance(&FeatureVector::extract(&scaled, 8)) < 1e-9);
    }

    #[test]
    fn different_shapes_are_far() {
        let two_peaks = goalpost(GoalpostSpec::default());
        let tone = sinusoid(49, 0.5, 4.0, 0.4, 0.0, 98.0);
        let f1 = FeatureVector::extract(&two_peaks, 8);
        let f2 = FeatureVector::extract(&tone, 8);
        assert!(f1.distance(&f2) > 0.3, "distance {}", f1.distance(&f2));
    }

    #[test]
    fn range_query_separates_corpus() {
        let mut idx = FIndex::new(8);
        let base = goalpost(GoalpostSpec::default());
        idx.insert(1, &base);
        idx.insert(2, &goalpost(GoalpostSpec { noise: 0.1, ..GoalpostSpec::default() }));
        idx.insert(3, &sinusoid(49, 0.5, 4.0, 0.4, 0.0, 98.0));
        let hits = idx.range_query(&base, 0.15);
        assert!(hits.contains(&1) && hits.contains(&2), "{hits:?}");
        assert!(!hits.contains(&3), "{hits:?}");
        assert_eq!(idx.nearest(&base).unwrap().0, 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn dilation_defeats_frequency_features() {
        // §3: a contracted (frequency-doubled) goal-post pattern is the SAME
        // feature class (two peaks) but lands far away in DFT feature space
        // — the paper's core argument against frequency-domain similarity.
        // Contraction over the same support: halve the bump spacing/width so
        // the sample count stays 49.
        let base = goalpost(GoalpostSpec::default());
        let contracted = goalpost(GoalpostSpec {
            peak1: 4.0,
            peak2: 9.0,
            width: 0.8,
            ..GoalpostSpec::default()
        });
        let noisy_same = goalpost(GoalpostSpec { noise: 0.15, ..GoalpostSpec::default() });
        let f_base = FeatureVector::extract(&base, 8);
        let d_same = f_base.distance(&FeatureVector::extract(&noisy_same, 8));
        let d_contracted = f_base.distance(&FeatureVector::extract(&contracted, 8));
        assert!(d_contracted > 4.0 * d_same, "contracted {d_contracted} vs same {d_same}");
    }

    #[test]
    fn empty_index() {
        let idx = FIndex::new(4);
        assert!(idx.is_empty());
        assert!(idx.nearest(&goalpost(GoalpostSpec::default())).is_none());
    }
}
