//! # saq-baseline
//!
//! The prior-work comparators the paper positions itself against (§1, §3):
//!
//! * [`euclid`] — the *value-based* notion of approximate queries (Fig. 1):
//!   a query sequence plus a distance bound δ; results are stored sequences
//!   within pointwise (or Euclidean) distance δ. This is the semantics of
//!   VAGUE \[Mot88\] and the similarity work [AFS93, FRM94] at the value
//!   level, and the notion §2 shows fails on feature-preserving
//!   transformations.
//! * [`dft`] — a from-scratch discrete Fourier transform (naive `O(n²)` and
//!   radix-2 FFT).
//! * [`findex`] — an F-index-style similarity search \[AFS93\]: sequences map
//!   to their first `k` DFT coefficients; Euclidean distance in feature
//!   space lower-bounds true distance (Parseval), so feature-space range
//!   queries return no false dismissals. §3's argument — "similarity tests
//!   relying on proximity in the frequency domain can not detect similarity
//!   under transformations such as dilation or contraction" — is
//!   demonstrated against this implementation in the experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dft;
pub mod euclid;
pub mod findex;

pub use dft::{fft, naive_dft, Complex};
pub use euclid::{band_match, euclidean_distance, max_pointwise_distance, sliding_matches};
pub use findex::{FIndex, FeatureVector};
