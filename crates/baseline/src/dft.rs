//! Discrete Fourier transform from scratch: a naive `O(n²)` reference and a
//! radix-2 Cooley–Tukey FFT. The F-index of \[AFS93\] keeps "the first K
//! coefficients of the DFT" as the feature vector.

/// A complex number (no external crates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

#[allow(clippy::should_implement_trait)] // add/sub/mul are deliberate value-style ops
impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex addition.
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Complex multiplication.
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }

    /// Modulus.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// Naive DFT: `X[k] = Σ_j x[j]·e^{-2πi jk/n}`. Any length.
///
/// The twiddle factors `e^{-2πi m/n}` take only `n` distinct values
/// (`jk mod n` indexes them), so they are tabulated once up front — the
/// inner loop is then a branch-free multiply-accumulate over the table
/// instead of an `O(n²)` stream of `sin`/`cos` calls.
pub fn naive_dft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    let twiddle: Vec<Complex> =
        (0..n).map(|m| Complex::from_angle(-std::f64::consts::TAU * m as f64 / n as f64)).collect();
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (j, &v) in x.iter().enumerate() {
            let w = twiddle[(j * k) % n];
            re += v * w.re;
            im += v * w.im;
        }
        out.push(Complex::new(re, im));
    }
    out
}

/// Radix-2 iterative FFT; the input length must be a power of two.
///
/// # Panics
/// Panics on non-power-of-two lengths (caller pads; see
/// [`crate::findex::FIndex`]).
pub fn fft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length must be a power of two");
    let mut data: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies. The half-size root table is computed once per stage
    // (`log n` tables totalling `n-1` entries), replacing the serial
    // `w = w·w_len` recurrence: the inner loop loses its cross-iteration
    // dependency — free to pipeline and vectorize — and each twiddle
    // comes straight from `sin`/`cos` instead of `len/2` accumulated
    // rounding steps.
    let mut roots = Vec::with_capacity(n / 2);
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        roots.clear();
        roots.extend((0..len / 2).map(|m| Complex::from_angle(ang * m as f64)));
        for start in (0..n).step_by(len) {
            let (lo, hi) = data[start..start + len].split_at_mut(len / 2);
            for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(&roots) {
                let t = b.mul(*w);
                let u = *a;
                *a = u.add(t);
                *b = u.sub(t);
            }
        }
        len *= 2;
    }
    data
}

/// Energy of a complex spectrum (sum of squared moduli).
pub fn spectrum_energy(spectrum: &[Complex]) -> f64 {
    spectrum.iter().map(|c| c.re * c.re + c.im * c.im).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_constant() {
        let x = [2.0; 8];
        let s = naive_dft(&x);
        assert!((s[0].re - 16.0).abs() < 1e-9);
        for c in &s[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn dft_locates_pure_tone() {
        // cos(2π·2t/16): energy at bins 2 and 14.
        let x: Vec<f64> =
            (0..16).map(|i| (std::f64::consts::TAU * 2.0 * i as f64 / 16.0).cos()).collect();
        let s = naive_dft(&x);
        assert!(s[2].abs() > 7.9);
        assert!(s[14].abs() > 7.9);
        assert!(s[3].abs() < 1e-9);
    }

    #[test]
    fn fft_matches_naive() {
        let x: Vec<f64> = (0..64).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let a = naive_dft(&x);
        let b = fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-8 && (u.im - v.im).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy = spectrum_energy(&fft(&x)) / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_odd_lengths() {
        fft(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn complex_arithmetic() {
        let i = Complex::new(0.0, 1.0);
        let sq = i.mul(i);
        assert!((sq.re + 1.0).abs() < 1e-12 && sq.im.abs() < 1e-12);
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        let sum = Complex::new(1.0, 2.0).add(Complex::new(3.0, -1.0));
        assert_eq!(sum, Complex::new(4.0, 1.0));
        let diff = Complex::new(1.0, 2.0).sub(Complex::new(3.0, -1.0));
        assert_eq!(diff, Complex::new(-2.0, 3.0));
    }
}
