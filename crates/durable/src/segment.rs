//! Immutable B-tree segments: the compacted, point-readable form of
//! the store.
//!
//! A segment is a single backend value holding a B-tree of sorted
//! `(u64 key, bytes value)` entries, written once and never modified.
//! The builder follows the durable-tree construction: **leaves are
//! serialized eagerly** as soon as they fill (so building streams in
//! O(leaf) memory), while **interior nodes are kept as in-memory drafts**
//! — lists of `(first_key, offset, len)` child references — and
//! finalized bottom-up at the end, when every child's position is
//! known. The last page written is the root; its position is returned
//! in [`SegmentMeta`] and recorded by the manifest.
//!
//! # Page layout
//!
//! Every page is one standard frame (see [`crate::codec`]). Bodies:
//!
//! ```text
//! leaf:     [1: u8] [count: u32le] count × ( [key: u64le] [value: u32le len + bytes] )
//! interior: [2: u8] [count: u32le] count × ( [first_key: u64le] [offset: u64le] [len: u32le] )
//! ```
//!
//! Keys are strictly ascending within a page and across the whole
//! segment. An interior child's `first_key` is the smallest key in its
//! subtree, so point lookups descend by binary search without touching
//! siblings. Readers page lazily through [`Backend::read_at`] behind a
//! small cache, counting page reads so tests (and benchmarks) can
//! prove cold lookups touch O(depth) pages, not the whole file.

use crate::backend::Backend;
use crate::codec::{self, Cursor};
use crate::error::{Error, Result};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const PAGE_LEAF: u8 = 1;
const PAGE_INTERIOR: u8 = 2;

/// Entries per leaf page before it is flushed.
pub const LEAF_CAP: usize = 32;
/// Child references per interior page.
pub const INTERIOR_CAP: usize = 32;
/// Decoded pages the reader keeps cached.
const CACHE_CAP: usize = 64;

/// Where a finished segment's root lives, plus its entry count. Encoded
/// into the manifest by the store layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Byte offset of the root page's frame within the segment value.
    pub root_offset: u64,
    /// Total framed length of the root page.
    pub root_len: u32,
    /// Number of entries in the segment.
    pub entry_count: u64,
}

/// A child reference inside a draft interior node.
#[derive(Debug, Clone, Copy)]
struct ChildRef {
    first_key: u64,
    offset: u64,
    len: u32,
}

/// Streaming builder: push entries in strictly ascending key order,
/// then [`SegmentBuilder::finish`].
pub struct SegmentBuilder<'a> {
    backend: &'a dyn Backend,
    key: String,
    leaf_cap: usize,
    interior_cap: usize,
    offset: u64,
    leaf: Vec<(u64, Vec<u8>)>,
    children: Vec<ChildRef>,
    last_key: Option<u64>,
    count: u64,
}

impl<'a> SegmentBuilder<'a> {
    /// Starts a fresh segment under `key` (replacing any existing value)
    /// with the default page capacities.
    pub fn new(backend: &'a dyn Backend, key: &str) -> Result<Self> {
        Self::with_caps(backend, key, LEAF_CAP, INTERIOR_CAP)
    }

    /// As [`SegmentBuilder::new`] with explicit page capacities — tests
    /// use tiny caps to force multi-level trees from small corpora.
    pub fn with_caps(
        backend: &'a dyn Backend,
        key: &str,
        leaf_cap: usize,
        interior_cap: usize,
    ) -> Result<Self> {
        assert!(leaf_cap >= 1 && interior_cap >= 2, "degenerate page capacities");
        backend.delete(key)?;
        Ok(SegmentBuilder {
            backend,
            key: key.to_string(),
            leaf_cap,
            interior_cap,
            offset: 0,
            leaf: Vec::new(),
            children: Vec::new(),
            last_key: None,
            count: 0,
        })
    }

    /// Appends one entry. Keys must be strictly ascending.
    pub fn push(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if let Some(last) = self.last_key {
            if key <= last {
                return Err(Error::corrupt(format!(
                    "segment build: key {key} after {last} breaks ascending order"
                )));
            }
        }
        self.last_key = Some(key);
        self.count += 1;
        self.leaf.push((key, value.to_vec()));
        if self.leaf.len() >= self.leaf_cap {
            self.flush_leaf()?;
        }
        Ok(())
    }

    fn write_page(&mut self, body: &[u8]) -> Result<(u64, u32)> {
        let framed = codec::frame(body);
        let at = self.offset;
        self.offset = self.backend.append(&self.key, &framed)?;
        debug_assert_eq!(self.offset, at + framed.len() as u64);
        Ok((at, framed.len() as u32))
    }

    fn flush_leaf(&mut self) -> Result<()> {
        if self.leaf.is_empty() {
            return Ok(());
        }
        let first_key = self.leaf[0].0;
        let mut body = Vec::new();
        body.push(PAGE_LEAF);
        codec::put_u32(&mut body, self.leaf.len() as u32);
        for (key, value) in self.leaf.drain(..) {
            codec::put_u64(&mut body, key);
            codec::put_bytes(&mut body, &value);
        }
        let (offset, len) = self.write_page(&body)?;
        self.children.push(ChildRef { first_key, offset, len });
        Ok(())
    }

    fn write_interior(&mut self, children: &[ChildRef]) -> Result<(u64, u32)> {
        let mut body = Vec::new();
        body.push(PAGE_INTERIOR);
        codec::put_u32(&mut body, children.len() as u32);
        for child in children {
            codec::put_u64(&mut body, child.first_key);
            codec::put_u64(&mut body, child.offset);
            codec::put_u32(&mut body, child.len);
        }
        self.write_page(&body)
    }

    /// Flushes the trailing leaf, finalizes the draft interior levels
    /// bottom-up, and returns where the root landed.
    pub fn finish(mut self) -> Result<SegmentMeta> {
        self.flush_leaf()?;
        if self.children.is_empty() {
            // Zero entries: the root is one empty leaf.
            let (offset, len) = self.write_page(&[PAGE_LEAF, 0, 0, 0, 0])?;
            self.children.push(ChildRef { first_key: 0, offset, len });
        }
        // Each pass folds one level of children into interior pages; the
        // loop ends when a single reference — the root — remains.
        while self.children.len() > 1 {
            let level = std::mem::take(&mut self.children);
            for group in level.chunks(self.interior_cap) {
                let (offset, len) = self.write_interior(group)?;
                self.children.push(ChildRef { first_key: group[0].first_key, offset, len });
            }
        }
        let root = self.children[0];
        self.backend.sync()?;
        Ok(SegmentMeta { root_offset: root.offset, root_len: root.len, entry_count: self.count })
    }
}

/// A decoded page, as cached by the reader.
enum Page {
    Leaf(Vec<(u64, Vec<u8>)>),
    Interior(Vec<ChildRef>),
}

/// Lazy point-and-range reader over a finished segment.
pub struct SegmentReader {
    backend: Arc<dyn Backend>,
    key: String,
    meta: SegmentMeta,
    cache: Mutex<PageCache>,
    pages_read: AtomicU64,
}

#[derive(Default)]
struct PageCache {
    pages: HashMap<u64, Arc<Page>>,
    order: VecDeque<u64>,
}

impl SegmentReader {
    /// Opens a reader over the segment at `key` described by `meta`.
    pub fn new(backend: Arc<dyn Backend>, key: &str, meta: SegmentMeta) -> Self {
        SegmentReader {
            backend,
            key: key.to_string(),
            meta,
            cache: Mutex::new(PageCache::default()),
            pages_read: AtomicU64::new(0),
        }
    }

    /// The segment's metadata.
    pub fn meta(&self) -> SegmentMeta {
        self.meta
    }

    /// Number of entries in the segment.
    pub fn entry_count(&self) -> u64 {
        self.meta.entry_count
    }

    /// How many pages have been fetched from the backend (cache misses)
    /// over this reader's lifetime.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    fn load_page(&self, offset: u64, len: u32) -> Result<Arc<Page>> {
        {
            let cache = self.cache.lock().expect("page cache lock");
            if let Some(page) = cache.pages.get(&offset) {
                return Ok(Arc::clone(page));
            }
        }
        let mut buf = vec![0u8; len as usize];
        let n = self.backend.read_at(&self.key, offset, &mut buf)?;
        if n != buf.len() {
            return Err(Error::corrupt(format!(
                "segment {}: short page read at offset {offset} ({n} of {len} bytes)",
                self.key
            )));
        }
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        let body = codec::read_single_frame(&buf, &format!("segment {} page", self.key))?;
        let page = Arc::new(decode_page(body, &self.key)?);
        let mut cache = self.cache.lock().expect("page cache lock");
        if cache.pages.len() >= CACHE_CAP {
            if let Some(evict) = cache.order.pop_front() {
                cache.pages.remove(&evict);
            }
        }
        if cache.pages.insert(offset, Arc::clone(&page)).is_none() {
            cache.order.push_back(offset);
        }
        Ok(page)
    }

    /// Point lookup: the value at `id`, or `None`.
    pub fn get(&self, id: u64) -> Result<Option<Vec<u8>>> {
        let mut offset = self.meta.root_offset;
        let mut len = self.meta.root_len;
        loop {
            match &*self.load_page(offset, len)? {
                Page::Leaf(items) => {
                    return Ok(items
                        .binary_search_by_key(&id, |(k, _)| *k)
                        .ok()
                        .map(|i| items[i].1.clone()));
                }
                Page::Interior(children) => {
                    // Last child whose subtree may contain `id`.
                    let i = children.partition_point(|c| c.first_key <= id);
                    let Some(child) = i.checked_sub(1).map(|i| children[i]) else {
                        return Ok(None);
                    };
                    offset = child.offset;
                    len = child.len;
                }
            }
        }
    }

    fn walk<F: FnMut(u64, &[u8])>(&self, offset: u64, len: u32, f: &mut F) -> Result<()> {
        match &*self.load_page(offset, len)? {
            Page::Leaf(items) => {
                for (key, value) in items {
                    f(*key, value);
                }
            }
            Page::Interior(children) => {
                for child in children {
                    self.walk(child.offset, child.len, f)?;
                }
            }
        }
        Ok(())
    }

    /// All entries in ascending key order (used by recovery to
    /// materialize the store).
    pub fn scan(&self) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.meta.entry_count as usize);
        self.walk(self.meta.root_offset, self.meta.root_len, &mut |k, v| {
            out.push((k, v.to_vec()))
        })?;
        Ok(out)
    }

    /// All keys in ascending order.
    pub fn keys(&self) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(self.meta.entry_count as usize);
        self.walk(self.meta.root_offset, self.meta.root_len, &mut |k, _| out.push(k))?;
        Ok(out)
    }
}

fn decode_page(body: &[u8], key: &str) -> Result<Page> {
    let mut c = Cursor::new(body, "segment page");
    let kind = c.get_u8()?;
    let count = c.get_u32()? as usize;
    match kind {
        PAGE_LEAF => {
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                let k = c.get_u64()?;
                let v = c.get_bytes()?.to_vec();
                items.push((k, v));
            }
            c.finish()?;
            Ok(Page::Leaf(items))
        }
        PAGE_INTERIOR => {
            let mut children = Vec::with_capacity(count);
            for _ in 0..count {
                let first_key = c.get_u64()?;
                let offset = c.get_u64()?;
                let len = c.get_u32()?;
                children.push(ChildRef { first_key, offset, len });
            }
            c.finish()?;
            Ok(Page::Interior(children))
        }
        _ => Err(Error::corrupt(format!("segment {key}: unknown page kind {kind}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::codec::FRAME_HEADER;

    fn value_for(key: u64) -> Vec<u8> {
        format!("value-{key}").into_bytes().repeat(1 + (key % 3) as usize)
    }

    fn build(backend: &MemoryBackend, n: u64, leaf_cap: usize, interior_cap: usize) -> SegmentMeta {
        let mut builder = SegmentBuilder::with_caps(backend, "seg-1", leaf_cap, interior_cap)
            .expect("fresh builder");
        for key in 0..n {
            builder.push(key * 3, &value_for(key * 3)).unwrap();
        }
        builder.finish().unwrap()
    }

    fn reader(backend: &MemoryBackend, meta: SegmentMeta) -> SegmentReader {
        SegmentReader::new(Arc::new(backend.clone()), "seg-1", meta)
    }

    #[test]
    fn multi_level_tree_answers_every_point_lookup() {
        let backend = MemoryBackend::new();
        // 200 entries at caps (4, 3): depth ≥ 3, exercising real descent.
        let meta = build(&backend, 200, 4, 3);
        assert_eq!(meta.entry_count, 200);
        let r = reader(&backend, meta);
        for key in 0..200u64 {
            assert_eq!(r.get(key * 3).unwrap().unwrap(), value_for(key * 3), "key {}", key * 3);
            assert_eq!(r.get(key * 3 + 1).unwrap(), None);
        }
        // Below the smallest key and above the largest.
        assert_eq!(r.get(u64::MAX).unwrap(), None);
        let empty_meta = {
            let mut b = SegmentBuilder::with_caps(&backend, "seg-1", 4, 3).unwrap();
            b.push(10, b"x").unwrap();
            b.finish().unwrap()
        };
        assert_eq!(reader(&backend, empty_meta).get(3).unwrap(), None);
    }

    #[test]
    fn scan_and_keys_return_ascending_order() {
        let backend = MemoryBackend::new();
        let meta = build(&backend, 50, 4, 3);
        let r = reader(&backend, meta);
        let scan = r.scan().unwrap();
        assert_eq!(scan.len(), 50);
        for (i, (k, v)) in scan.iter().enumerate() {
            assert_eq!(*k, i as u64 * 3);
            assert_eq!(v, &value_for(*k));
        }
        assert_eq!(r.keys().unwrap(), (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_segment_is_valid() {
        let backend = MemoryBackend::new();
        let meta = SegmentBuilder::with_caps(&backend, "seg-1", 4, 3).unwrap().finish().unwrap();
        assert_eq!(meta.entry_count, 0);
        let r = reader(&backend, meta);
        assert_eq!(r.get(0).unwrap(), None);
        assert!(r.scan().unwrap().is_empty());
    }

    #[test]
    fn point_lookups_page_in_less_than_the_whole_segment() {
        let backend = MemoryBackend::new();
        let meta = build(&backend, 500, 4, 4);
        let scanner = reader(&backend, meta);
        scanner.scan().unwrap();
        let full_pages = scanner.pages_read();
        let pointer = reader(&backend, meta);
        pointer.get(3 * 250).unwrap().unwrap();
        assert!(
            pointer.pages_read() * 10 < full_pages,
            "one lookup read {} pages vs {} for a full scan",
            pointer.pages_read(),
            full_pages
        );
        // A repeated lookup is served from cache: no new page reads.
        let before = pointer.pages_read();
        pointer.get(3 * 250).unwrap().unwrap();
        assert_eq!(pointer.pages_read(), before);
    }

    #[test]
    fn builder_rejects_out_of_order_keys() {
        let backend = MemoryBackend::new();
        let mut builder = SegmentBuilder::new(&backend, "seg-1").unwrap();
        builder.push(5, b"x").unwrap();
        assert!(builder.push(5, b"y").is_err());
        assert!(builder.push(4, b"z").is_err());
    }

    #[test]
    fn damaged_pages_are_detected() {
        let backend = MemoryBackend::new();
        let meta = build(&backend, 40, 4, 3);
        let bytes = backend.get("seg-1").unwrap().unwrap();
        // Flip a byte inside the first page's body.
        backend.poke("seg-1", FRAME_HEADER as u64 + 2, 0xAA);
        let r = reader(&backend, meta);
        let failures = (0..40u64).filter(|&k| r.get(k * 3).is_err()).count();
        assert!(failures > 0, "corruption must surface as Err, not wrong data");
        // Restore and confirm the reader recovers (fresh cache).
        backend.put("seg-1", &bytes).unwrap();
        let r = reader(&backend, meta);
        assert_eq!(r.get(0).unwrap().unwrap(), value_for(0));
    }
}
