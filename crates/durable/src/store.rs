//! The durable store: manifest + WAL + segments, tied together by the
//! recovery protocol.
//!
//! # Layout
//!
//! A store occupies four well-known keys in a [`Backend`]:
//!
//! | key          | contents                                             |
//! |--------------|------------------------------------------------------|
//! | `manifest`   | one frame: instance id, base generation, segment refs |
//! | `wal`        | framed [`WalRecord`]s for generations past the base   |
//! | `seg-<G>`    | the entry B-tree segment compacted at generation `G`  |
//! | `docs-<G>`   | optional index-document segment for the same `G`      |
//!
//! # The commit protocol
//!
//! Writes append to the WAL *before* the in-memory apply. Compaction
//! folds the current contents into fresh `seg-<G>`/`docs-<G>` values,
//! then commits by atomically replacing the manifest, then truncates
//! the WAL and deletes the previous generation's segments. The manifest
//! `put` is the linearization point: a crash before it recovers from
//! the old manifest plus the full WAL (the half-built segments are
//! garbage, rewritten next time); a crash after it recovers from the
//! new segments, skipping any WAL records at or below the new base
//! generation that the interrupted truncate left behind.
//!
//! # Recovery
//!
//! [`DurableStore::open`] reads the manifest (absent = fresh store:
//! mint an instance id and write it down), scans the entry segment,
//! then replays the WAL's clean prefix: records must carry strictly
//! ascending generations, records at or below the base are skipped,
//! and the first torn, CRC-failing, or out-of-order record ends the
//! replay — the log is truncated back to the clean prefix so the next
//! append extends known-good bytes. The result is the exact
//! `(instance, generation)` the store last exposed, plus the replayed
//! `(generation, id)` mutation history for the archive's coalescing
//! change log.

use crate::backend::Backend;
use crate::codec::{self, Cursor};
use crate::error::{Error, Result};
use crate::segment::{SegmentBuilder, SegmentMeta, SegmentReader};
use crate::wal::{self, WalRecord, WAL_KEY};
use std::sync::Arc;

/// The backend key the manifest lives under.
pub const MANIFEST_KEY: &str = "manifest";

const MANIFEST_MAGIC: &[u8; 4] = b"SAQM";
const MANIFEST_VERSION: u32 = 2;
// Version 1 manifests lacked the docs breaker tag; decode defaults it
// to 0 (the offline breaker), which is what every v1 writer used.
const MANIFEST_VERSION_V1: u32 = 1;

/// The entry-segment key for base generation `g`.
pub fn segment_key(g: u64) -> String {
    format!("seg-{g}")
}

/// The docs-segment key for base generation `g`.
pub fn docs_key(g: u64) -> String {
    format!("docs-{g}")
}

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Compact once this many WAL records have accumulated since the
    /// last compaction; `0` disables the size trigger (manual only).
    pub compact_after: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { compact_after: 1024 }
    }
}

/// One segment reference inside the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegmentRef {
    key: String,
    meta: SegmentMeta,
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    instance: u64,
    base_generation: u64,
    entries: Option<SegmentRef>,
    docs: Option<(SegmentRef, u64, u64, u64)>, // (ref, epsilon_bits, theta_bits, breaker_tag)
}

fn put_segment_ref(out: &mut Vec<u8>, r: &SegmentRef) {
    codec::put_bytes(out, r.key.as_bytes());
    codec::put_u64(out, r.meta.root_offset);
    codec::put_u32(out, r.meta.root_len);
    codec::put_u64(out, r.meta.entry_count);
}

fn get_segment_ref(c: &mut Cursor<'_>) -> Result<SegmentRef> {
    let key = String::from_utf8(c.get_bytes()?.to_vec())
        .map_err(|_| Error::corrupt("manifest: segment key is not utf-8"))?;
    let root_offset = c.get_u64()?;
    let root_len = c.get_u32()?;
    let entry_count = c.get_u64()?;
    Ok(SegmentRef { key, meta: SegmentMeta { root_offset, root_len, entry_count } })
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(MANIFEST_MAGIC);
        codec::put_u32(&mut body, MANIFEST_VERSION);
        codec::put_u64(&mut body, self.instance);
        codec::put_u64(&mut body, self.base_generation);
        body.push(self.entries.is_some() as u8);
        if let Some(r) = &self.entries {
            put_segment_ref(&mut body, r);
        }
        body.push(self.docs.is_some() as u8);
        if let Some((r, eps, theta, breaker)) = &self.docs {
            put_segment_ref(&mut body, r);
            codec::put_u64(&mut body, *eps);
            codec::put_u64(&mut body, *theta);
            codec::put_u64(&mut body, *breaker);
        }
        codec::frame(&body)
    }

    fn decode(bytes: &[u8]) -> Result<Manifest> {
        let body = codec::read_single_frame(bytes, "manifest")?;
        let mut c = Cursor::new(body, "manifest");
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = c.get_u8()?;
        }
        if &magic != MANIFEST_MAGIC {
            return Err(Error::corrupt("manifest: bad magic"));
        }
        let version = c.get_u32()?;
        if version != MANIFEST_VERSION && version != MANIFEST_VERSION_V1 {
            return Err(Error::corrupt(format!("manifest: unsupported version {version}")));
        }
        let instance = c.get_u64()?;
        let base_generation = c.get_u64()?;
        let entries = if c.get_u8()? != 0 { Some(get_segment_ref(&mut c)?) } else { None };
        let docs = if c.get_u8()? != 0 {
            let r = get_segment_ref(&mut c)?;
            let eps = c.get_u64()?;
            let theta = c.get_u64()?;
            let breaker = if version >= MANIFEST_VERSION { c.get_u64()? } else { 0 };
            Some((r, eps, theta, breaker))
        } else {
            None
        };
        c.finish()?;
        Ok(Manifest { instance, base_generation, entries, docs })
    }
}

/// Index documents to durably attach to a compaction, stamped with the
/// representation parameters they were computed under (f64 bit
/// patterns, so exact-match checks need no float comparisons).
pub struct DocsSpec<'a> {
    /// `epsilon.to_bits()` of the ingest configuration.
    pub epsilon_bits: u64,
    /// `theta.to_bits()` of the ingest configuration.
    pub theta_bits: u64,
    /// Which breaker broke the sequences (0 = offline recursive, 1 =
    /// online sliding-window); opaque here, compared bit-exactly like
    /// the float parameters.
    pub breaker_tag: u64,
    /// Encoded documents, sorted by id (same order as the entries).
    pub docs: &'a [(u64, Vec<u8>)],
}

/// A reader over the docs segment of the current base generation.
pub struct DocsReader {
    /// The pageable segment of encoded index documents.
    pub reader: SegmentReader,
    /// `epsilon.to_bits()` the docs were computed under.
    pub epsilon_bits: u64,
    /// `theta.to_bits()` the docs were computed under.
    pub theta_bits: u64,
    /// The breaker tag the docs were computed under (see
    /// [`DocsSpec::breaker_tag`]).
    pub breaker_tag: u64,
    /// The generation the docs are exact at.
    pub base_generation: u64,
}

/// Everything [`DurableStore::open`] recovered.
pub struct Recovered {
    /// The instance id minted at first open and preserved since.
    pub instance: u64,
    /// The generation the store last exposed before shutdown.
    pub generation: u64,
    /// The compacted base generation (WAL records at or below it were
    /// skipped during replay).
    pub base_generation: u64,
    /// The full store contents: segment scan + WAL replay, by id.
    pub entries: Vec<(u64, Vec<u8>)>,
    /// The replayed `(generation, id)` mutation history past the base
    /// (`None` = wildcard), for rebuilding a coalescing change log.
    pub mutations: Vec<(u64, Option<u64>)>,
    /// True when a torn or corrupt WAL tail was discarded.
    pub tail_discarded: bool,
    /// A pager over the durable index documents, when present.
    pub docs: Option<DocsReader>,
}

/// An open durable store; see the module docs for the protocol.
pub struct DurableStore {
    backend: Arc<dyn Backend>,
    config: DurableConfig,
    manifest: Manifest,
    wal_records: u64,
}

/// How recovery folds a [`wal::WalOp::Append`] record into the entry it
/// extends: `merge(prior_payload, delta_payload)` must return the merged
/// payload. `prior` is `None` when the append created the entry. The
/// durable layer stays payload-opaque; the layer that wrote the payloads
/// supplies the merge (e.g. the archive concatenates point encodings).
pub type AppendMerge<'a> = &'a dyn Fn(Option<&[u8]>, &[u8]) -> Result<Vec<u8>>;

/// The [`AppendMerge`] used by [`DurableStore::open`]: plain byte
/// concatenation of the prior payload and the delta.
fn concat_merge(prior: Option<&[u8]>, delta: &[u8]) -> Result<Vec<u8>> {
    let mut merged = prior.map(<[u8]>::to_vec).unwrap_or_default();
    merged.extend_from_slice(delta);
    Ok(merged)
}

impl DurableStore {
    /// Opens (or creates) the store in `backend` and runs recovery.
    /// `fresh_instance` mints the instance id for a brand-new store.
    /// Replayed [`wal::WalOp::Append`] records merge by byte
    /// concatenation; stores whose payloads need a structure-aware merge
    /// use [`DurableStore::open_with_merge`].
    pub fn open(
        backend: Arc<dyn Backend>,
        config: DurableConfig,
        fresh_instance: impl FnOnce() -> u64,
    ) -> Result<(DurableStore, Recovered)> {
        DurableStore::open_with_merge(backend, config, fresh_instance, &concat_merge)
    }

    /// As [`DurableStore::open`], with a caller-supplied merge for
    /// replaying [`wal::WalOp::Append`] records. A merge failure aborts
    /// recovery: the payloads decoded cleanly (frames passed CRC), so a
    /// merge that cannot interpret them signals a mis-configured caller,
    /// not crash damage to silently truncate away.
    pub fn open_with_merge(
        backend: Arc<dyn Backend>,
        config: DurableConfig,
        fresh_instance: impl FnOnce() -> u64,
        merge: AppendMerge<'_>,
    ) -> Result<(DurableStore, Recovered)> {
        let manifest = match backend.get(MANIFEST_KEY)? {
            Some(bytes) => Manifest::decode(&bytes)?,
            None => {
                let manifest = Manifest {
                    instance: fresh_instance(),
                    base_generation: 0,
                    entries: None,
                    docs: None,
                };
                backend.put(MANIFEST_KEY, &manifest.encode())?;
                manifest
            }
        };
        let base = manifest.base_generation;

        // Materialize the compacted contents.
        let mut entries: Vec<(u64, Vec<u8>)> = match &manifest.entries {
            Some(r) => SegmentReader::new(Arc::clone(&backend), &r.key, r.meta)
                .scan()
                .map_err(|e| Error::corrupt(format!("recovery: entry segment {}: {e}", r.key)))?,
            None => Vec::new(),
        };

        // Replay the WAL's clean prefix over them.
        let wal_bytes = backend.get(WAL_KEY)?.unwrap_or_default();
        let readback = wal::read_wal_bytes(&wal_bytes);
        let mut tail_discarded = readback.tail_discarded;
        let mut clean_len = readback.clean_len;
        let mut generation = base;
        let mut mutations = Vec::new();
        let mut wal_records = 0u64;
        let mut last_gen = 0u64;
        for (record, end) in readback.records.iter().zip(&readback.ends) {
            // Out-of-order generations mean the log bytes are not the
            // log we wrote: keep the prefix before the violation.
            if record.generation <= last_gen {
                tail_discarded = true;
                clean_len = *end - record.encode().len() as u64;
                break;
            }
            last_gen = record.generation;
            if record.generation <= base {
                // Left behind by a compaction that committed its
                // manifest but didn't finish truncating the log.
                continue;
            }
            match &record.op {
                wal::WalOp::Put { id, payload } => {
                    match entries.binary_search_by_key(id, |(k, _)| *k) {
                        Ok(i) => entries[i].1 = payload.clone(),
                        Err(i) => entries.insert(i, (*id, payload.clone())),
                    }
                }
                wal::WalOp::Remove { id } => {
                    if let Ok(i) = entries.binary_search_by_key(id, |(k, _)| *k) {
                        entries.remove(i);
                    }
                }
                wal::WalOp::Wildcard => {}
                wal::WalOp::Append { id, payload } => {
                    match entries.binary_search_by_key(id, |(k, _)| *k) {
                        Ok(i) => entries[i].1 = merge(Some(&entries[i].1), payload)?,
                        Err(i) => entries.insert(i, (*id, merge(None, payload)?)),
                    }
                }
            }
            mutations.push((record.generation, record.op.id()));
            generation = record.generation;
            wal_records += 1;
        }
        if wal_bytes.len() as u64 > clean_len {
            backend.truncate(WAL_KEY, clean_len)?;
            backend.sync()?;
        }

        let docs = manifest.docs.as_ref().map(|(r, eps, theta, breaker)| DocsReader {
            reader: SegmentReader::new(Arc::clone(&backend), &r.key, r.meta),
            epsilon_bits: *eps,
            theta_bits: *theta,
            breaker_tag: *breaker,
            base_generation: base,
        });
        let recovered = Recovered {
            instance: manifest.instance,
            generation,
            base_generation: base,
            entries,
            mutations,
            tail_discarded,
            docs,
        };
        Ok((DurableStore { backend, config, manifest, wal_records }, recovered))
    }

    /// The backend this store lives in.
    pub fn backend(&self) -> Arc<dyn Backend> {
        Arc::clone(&self.backend)
    }

    /// The instance id recorded in the manifest.
    pub fn instance(&self) -> u64 {
        self.manifest.instance
    }

    /// The current base generation (last committed compaction).
    pub fn base_generation(&self) -> u64 {
        self.manifest.base_generation
    }

    /// WAL records accumulated since the last compaction.
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> Result<u64> {
        Ok(self.backend.len(WAL_KEY)?.unwrap_or(0))
    }

    /// Appends one record to the WAL. This is the write-ahead step:
    /// call it *before* applying the mutation in memory.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.backend.append(WAL_KEY, &record.encode())?;
        self.wal_records += 1;
        Ok(())
    }

    /// Appends a group of records as one framed write: the frames are
    /// concatenated and handed to the backend in a single `append`, so
    /// file backends pay one write and one fsync for the whole batch —
    /// group commit. Each record keeps its own
    /// frame and CRC, so recovery replays the batch exactly as if the
    /// records had been appended one at a time; a torn tail still
    /// truncates at the last whole frame, not the last whole batch.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut framed = Vec::new();
        for record in records {
            framed.extend_from_slice(&record.encode());
        }
        self.backend.append(WAL_KEY, &framed)?;
        self.wal_records += records.len() as u64;
        Ok(())
    }

    /// True once enough WAL records accumulated to justify compaction.
    pub fn should_compact(&self) -> bool {
        self.config.compact_after > 0 && self.wal_records >= self.config.compact_after
    }

    /// Folds `entries` (the complete current contents, sorted by id, as
    /// of `generation`) into a fresh segment set, commits the manifest,
    /// truncates the WAL, and deletes the previous generation's
    /// segments. Returns the pager for the new docs segment, if one was
    /// written.
    pub fn compact(
        &mut self,
        generation: u64,
        entries: &[(u64, Vec<u8>)],
        docs: Option<DocsSpec<'_>>,
    ) -> Result<Option<DocsReader>> {
        let old = self.manifest.clone();
        let seg_key = segment_key(generation);
        let mut builder = SegmentBuilder::new(self.backend.as_ref(), &seg_key)?;
        for (id, payload) in entries {
            builder.push(*id, payload)?;
        }
        let seg_meta = builder.finish()?;

        let docs_ref = match &docs {
            Some(spec) => {
                let key = docs_key(generation);
                let mut builder = SegmentBuilder::new(self.backend.as_ref(), &key)?;
                for (id, doc) in spec.docs {
                    builder.push(*id, doc)?;
                }
                let meta = builder.finish()?;
                Some((
                    SegmentRef { key, meta },
                    spec.epsilon_bits,
                    spec.theta_bits,
                    spec.breaker_tag,
                ))
            }
            None => None,
        };

        let manifest = Manifest {
            instance: old.instance,
            base_generation: generation,
            entries: Some(SegmentRef { key: seg_key, meta: seg_meta }),
            docs: docs_ref,
        };
        // The commit point: everything before this is invisible garbage
        // on crash, everything after is cleanup that recovery tolerates
        // losing.
        self.backend.put(MANIFEST_KEY, &manifest.encode())?;
        self.backend.truncate(WAL_KEY, 0)?;
        let stale_docs = old.docs.as_ref().map(|(r, ..)| r.clone());
        for r in old.entries.iter().chain(stale_docs.iter()) {
            if r.key != segment_key(generation) && r.key != docs_key(generation) {
                self.backend.delete(&r.key)?;
            }
        }
        self.backend.sync()?;
        self.manifest = manifest;
        self.wal_records = 0;
        Ok(self.manifest.docs.as_ref().map(|(r, eps, theta, breaker)| DocsReader {
            reader: SegmentReader::new(Arc::clone(&self.backend), &r.key, r.meta),
            epsilon_bits: *eps,
            theta_bits: *theta,
            breaker_tag: *breaker,
            base_generation: generation,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::wal::WalOp;

    fn put(gen: u64, id: u64, text: &str) -> WalRecord {
        WalRecord { generation: gen, op: WalOp::Put { id, payload: text.as_bytes().to_vec() } }
    }

    fn open(backend: &MemoryBackend) -> (DurableStore, Recovered) {
        DurableStore::open(Arc::new(backend.clone()), DurableConfig::default(), || 42).unwrap()
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            instance: 7,
            base_generation: 19,
            entries: Some(SegmentRef {
                key: segment_key(19),
                meta: SegmentMeta { root_offset: 128, root_len: 64, entry_count: 5 },
            }),
            docs: Some((
                SegmentRef {
                    key: docs_key(19),
                    meta: SegmentMeta { root_offset: 0, root_len: 33, entry_count: 5 },
                },
                0.05f64.to_bits(),
                1.0f64.to_bits(),
                1,
            )),
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let bare = Manifest { instance: 1, base_generation: 0, entries: None, docs: None };
        assert_eq!(Manifest::decode(&bare.encode()).unwrap(), bare);
        assert!(Manifest::decode(b"junk").is_err());
        let mut torn = m.encode();
        torn.truncate(torn.len() - 3);
        assert!(Manifest::decode(&torn).is_err());
    }

    #[test]
    fn fresh_open_mints_and_persists_the_instance() {
        let backend = MemoryBackend::new();
        let (_store, recovered) = open(&backend);
        assert_eq!(recovered.instance, 42);
        assert_eq!(recovered.generation, 0);
        assert!(recovered.entries.is_empty());
        // Reopening must NOT mint again, even with a different closure.
        let (store, recovered) =
            DurableStore::open(Arc::new(backend.clone()), DurableConfig::default(), || {
                panic!("instance already persisted")
            })
            .unwrap();
        assert_eq!(recovered.instance, 42);
        assert_eq!(store.instance(), 42);
    }

    #[test]
    fn wal_replay_reconstructs_contents_and_history() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append(&put(1, 5, "five")).unwrap();
        store.append(&put(2, 9, "nine")).unwrap();
        store.append(&put(3, 5, "five-v2")).unwrap();
        store.append(&WalRecord { generation: 4, op: WalOp::Remove { id: 9 } }).unwrap();
        store.append(&WalRecord { generation: 5, op: WalOp::Wildcard }).unwrap();
        drop(store);

        let (store, recovered) = open(&backend);
        assert_eq!(recovered.generation, 5);
        assert_eq!(recovered.entries, vec![(5, b"five-v2".to_vec())]);
        assert_eq!(
            recovered.mutations,
            vec![(1, Some(5)), (2, Some(9)), (3, Some(5)), (4, Some(9)), (5, None)]
        );
        assert!(!recovered.tail_discarded);
        assert_eq!(store.wal_records(), 5);
    }

    #[test]
    fn append_records_merge_on_replay() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append(&put(1, 5, "five")).unwrap();
        store
            .append(&WalRecord {
                generation: 2,
                op: WalOp::Append { id: 5, payload: b"-more".to_vec() },
            })
            .unwrap();
        // An append may also create the entry (first write via append).
        store
            .append(&WalRecord {
                generation: 3,
                op: WalOp::Append { id: 9, payload: b"nine".to_vec() },
            })
            .unwrap();
        drop(store);

        // Default merge: byte concatenation.
        let (_store, recovered) = open(&backend);
        assert_eq!(recovered.generation, 3);
        assert_eq!(recovered.entries, vec![(5, b"five-more".to_vec()), (9, b"nine".to_vec())]);
        assert_eq!(recovered.mutations, vec![(1, Some(5)), (2, Some(5)), (3, Some(9))]);

        // A custom merge sees the prior payload (None when creating).
        let merge = |prior: Option<&[u8]>, delta: &[u8]| -> Result<Vec<u8>> {
            let mut out = prior.map(<[u8]>::to_vec).unwrap_or_else(|| b"fresh:".to_vec());
            out.extend_from_slice(b"+");
            out.extend_from_slice(delta);
            Ok(out)
        };
        let (_store, recovered) = DurableStore::open_with_merge(
            Arc::new(backend),
            DurableConfig::default(),
            || 1,
            &merge,
        )
        .unwrap();
        assert_eq!(
            recovered.entries,
            vec![(5, b"five+-more".to_vec()), (9, b"fresh:+nine".to_vec())]
        );
    }

    #[test]
    fn batched_appends_replay_like_individual_ones() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append(&put(1, 5, "five")).unwrap();
        store.append_batch(&[put(2, 9, "nine"), put(3, 5, "five-v2"), put(4, 7, "seven")]).unwrap();
        store.append_batch(&[]).unwrap();
        assert_eq!(store.wal_records(), 4);
        drop(store);

        let (_store, recovered) = open(&backend);
        assert_eq!(recovered.generation, 4);
        assert_eq!(
            recovered.mutations,
            vec![(1, Some(5)), (2, Some(9)), (3, Some(5)), (4, Some(7))]
        );
        assert_eq!(
            recovered.entries,
            vec![(5, b"five-v2".to_vec()), (7, b"seven".to_vec()), (9, b"nine".to_vec())]
        );
    }

    #[test]
    fn torn_tail_inside_a_batch_keeps_the_whole_frames() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append_batch(&[put(1, 1, "one"), put(2, 2, "two")]).unwrap();
        drop(store);
        // Tear mid-way through the second frame: recovery keeps the
        // first record — frame granularity, not batch granularity.
        let wal = backend.get(WAL_KEY).unwrap().unwrap();
        backend.put(WAL_KEY, &wal[..wal.len() - 3]).unwrap();

        let (store, recovered) = open(&backend);
        assert!(recovered.tail_discarded);
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.entries, vec![(1, b"one".to_vec())]);
        assert_eq!(store.wal_records(), 1);
    }

    #[test]
    fn compaction_folds_the_log_and_survives_reopen() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        for i in 0..10u64 {
            store.append(&put(i + 1, i, &format!("v{i}"))).unwrap();
        }
        let entries: Vec<(u64, Vec<u8>)> =
            (0..10u64).map(|i| (i, format!("v{i}").into_bytes())).collect();
        store.compact(10, &entries, None).unwrap();
        assert_eq!(store.base_generation(), 10);
        assert_eq!(store.wal_bytes().unwrap(), 0);
        // Post-compaction writes land in the (now empty) WAL.
        store.append(&put(11, 99, "late")).unwrap();
        drop(store);

        let (_store, recovered) = open(&backend);
        assert_eq!(recovered.base_generation, 10);
        assert_eq!(recovered.generation, 11);
        assert_eq!(recovered.entries.len(), 11);
        assert_eq!(recovered.mutations, vec![(11, Some(99))]);
        // Only the current generation's segment remains.
        let keys = backend.list().unwrap();
        assert!(keys.contains(&segment_key(10)), "{keys:?}");
        assert_eq!(keys.iter().filter(|k| k.starts_with("seg-")).count(), 1, "{keys:?}");
    }

    #[test]
    fn interrupted_wal_truncate_after_commit_is_skipped_on_replay() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append(&put(1, 1, "one")).unwrap();
        store.append(&put(2, 2, "two")).unwrap();
        let stale_wal = backend.get(WAL_KEY).unwrap().unwrap();
        store.compact(2, &[(1, b"one".to_vec()), (2, b"two".to_vec())], None).unwrap();
        // Simulate the crash: the pre-compaction WAL bytes come back.
        backend.put(WAL_KEY, &stale_wal).unwrap();
        store.append(&put(3, 3, "three")).unwrap();
        drop(store);

        let (_store, recovered) = open(&backend);
        assert_eq!(recovered.generation, 3);
        assert_eq!(recovered.entries.len(), 3);
        // Only the post-base mutation replays; the stale ones are skipped.
        assert_eq!(recovered.mutations, vec![(3, Some(3))]);
        assert!(!recovered.tail_discarded);
    }

    #[test]
    fn out_of_order_generations_cut_the_log() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        store.append(&put(1, 1, "one")).unwrap();
        store.append(&put(5, 2, "two")).unwrap();
        store.append(&put(4, 3, "backwards")).unwrap();
        store.append(&put(6, 4, "after")).unwrap();
        drop(store);
        let (store, recovered) = open(&backend);
        assert_eq!(recovered.generation, 5);
        assert_eq!(recovered.entries.len(), 2);
        assert!(recovered.tail_discarded);
        // The log was truncated back to the clean prefix on open.
        drop(store);
        let (_, again) = open(&backend);
        assert_eq!(again.generation, 5);
        assert!(!again.tail_discarded);
    }

    #[test]
    fn docs_segment_round_trips_with_its_stamps() {
        let backend = MemoryBackend::new();
        let (mut store, _) = open(&backend);
        let entries = vec![(3u64, b"e3".to_vec()), (8, b"e8".to_vec())];
        let docs = vec![(3u64, b"d3".to_vec()), (8, b"d8".to_vec())];
        let spec = DocsSpec {
            epsilon_bits: 0.1f64.to_bits(),
            theta_bits: 2.0f64.to_bits(),
            breaker_tag: 1,
            docs: &docs,
        };
        let pager = store.compact(7, &entries, Some(spec)).unwrap().unwrap();
        assert_eq!(pager.reader.get(8).unwrap().unwrap(), b"d8");
        assert_eq!(pager.base_generation, 7);
        drop(store);

        let (_store, recovered) = open(&backend);
        let pager = recovered.docs.expect("docs survive reopen");
        assert_eq!(pager.epsilon_bits, 0.1f64.to_bits());
        assert_eq!(pager.theta_bits, 2.0f64.to_bits());
        assert_eq!(pager.breaker_tag, 1);
        assert_eq!(pager.reader.get(3).unwrap().unwrap(), b"d3");
        assert_eq!(pager.reader.get(4).unwrap(), None);
    }

    #[test]
    fn compaction_trigger_counts_records() {
        let backend = MemoryBackend::new();
        let (mut store, _) =
            DurableStore::open(Arc::new(backend.clone()), DurableConfig { compact_after: 3 }, || 1)
                .unwrap();
        assert!(!store.should_compact());
        for g in 1..=3 {
            store.append(&put(g, g, "x")).unwrap();
        }
        assert!(store.should_compact());
        store.compact(3, &[], None).unwrap();
        assert!(!store.should_compact());
        // Disabled trigger never fires.
        let (mut store, _) = DurableStore::open(
            Arc::new(MemoryBackend::new()),
            DurableConfig { compact_after: 0 },
            || 1,
        )
        .unwrap();
        for g in 1..=100 {
            store.append(&put(g, g, "x")).unwrap();
        }
        assert!(!store.should_compact());
    }
}
