//! The storage substrate: a small KV-of-byte-strings trait the WAL,
//! segments, and manifest are built on.
//!
//! A [`Backend`] stores whole byte strings under flat string keys and
//! supports three access patterns: atomic whole-value replacement
//! ([`Backend::put`] — the commit point for manifests), append with
//! positional reads ([`Backend::append`]/[`Backend::read_at`] — logs
//! and segment files), and deletion. Keys are flat names like
//! `"wal"` or `"seg-42"`; there is no hierarchy.
//!
//! [`MemoryBackend`] keeps everything in a shared map — tests use it to
//! snapshot, fork, and surgically corrupt stored bytes. [`FileBackend`]
//! maps each key to one file under a root directory, making replacement
//! atomic via the write-temp-then-rename idiom.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Validates a backend key: non-empty, `[a-z0-9._-]` only, no leading
/// dot. Keys never traverse directories.
pub fn check_key(key: &str) -> Result<()> {
    let ok = !key.is_empty()
        && !key.starts_with('.')
        && key.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c));
    if ok {
        Ok(())
    } else {
        Err(Error::InvalidKey(key.to_string()))
    }
}

/// Byte-string storage under flat keys; see the module docs for the
/// three access patterns it must support.
pub trait Backend: Send + Sync {
    /// Reads the whole value at `key`, or `None` if absent.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;
    /// Atomically replaces the value at `key`. After `put` returns,
    /// readers see either the old value or the new one, never a mix.
    fn put(&self, key: &str, value: &[u8]) -> Result<()>;
    /// Appends bytes to the value at `key` (creating it if absent) and
    /// returns the value's new total length.
    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64>;
    /// Reads up to `buf.len()` bytes at `offset` into `buf`, returning
    /// how many were read (short only at end-of-value).
    fn read_at(&self, key: &str, offset: u64, buf: &mut [u8]) -> Result<usize>;
    /// The value's length in bytes, or `None` if absent.
    fn len(&self, key: &str) -> Result<Option<u64>>;
    /// Truncates the value at `key` to `len` bytes (no-op if shorter).
    fn truncate(&self, key: &str, len: u64) -> Result<()>;
    /// Removes `key` if present.
    fn delete(&self, key: &str) -> Result<()>;
    /// All keys present, sorted.
    fn list(&self) -> Result<Vec<String>>;
    /// Forces buffered writes down to the durable medium.
    fn sync(&self) -> Result<()>;
}

// --- memory -----------------------------------------------------------

/// An in-memory [`Backend`]: a shared `BTreeMap` of byte strings.
///
/// Clones share storage (like two handles on one disk). [`MemoryBackend::fork`]
/// deep-copies instead — the kill-point tests fork a backend, truncate or
/// flip bytes in the fork's WAL, and recover from it without disturbing
/// the original.
#[derive(Clone, Default)]
pub struct MemoryBackend {
    map: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemoryBackend {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A deep copy: same contents, independent storage.
    pub fn fork(&self) -> Self {
        let map = self.map.lock().expect("backend lock").clone();
        MemoryBackend { map: Arc::new(Mutex::new(map)) }
    }

    /// Overwrites one byte of the value at `key` with `byte`, for
    /// corruption tests. Panics if the key or offset is absent.
    pub fn poke(&self, key: &str, offset: u64, byte: u8) {
        let mut map = self.map.lock().expect("backend lock");
        let value = map.get_mut(key).expect("poke: key present");
        value[offset as usize] = byte;
    }
}

impl Backend for MemoryBackend {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        check_key(key)?;
        Ok(self.map.lock().expect("backend lock").get(key).cloned())
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        check_key(key)?;
        self.map.lock().expect("backend lock").insert(key.to_string(), value.to_vec());
        Ok(())
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        check_key(key)?;
        let mut map = self.map.lock().expect("backend lock");
        let value = map.entry(key.to_string()).or_default();
        value.extend_from_slice(bytes);
        Ok(value.len() as u64)
    }

    fn read_at(&self, key: &str, offset: u64, buf: &mut [u8]) -> Result<usize> {
        check_key(key)?;
        let map = self.map.lock().expect("backend lock");
        let Some(value) = map.get(key) else {
            return Err(Error::corrupt(format!("read_at: key {key:?} absent")));
        };
        let offset = (offset as usize).min(value.len());
        let n = buf.len().min(value.len() - offset);
        buf[..n].copy_from_slice(&value[offset..offset + n]);
        Ok(n)
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        check_key(key)?;
        Ok(self.map.lock().expect("backend lock").get(key).map(|v| v.len() as u64))
    }

    fn truncate(&self, key: &str, len: u64) -> Result<()> {
        check_key(key)?;
        let mut map = self.map.lock().expect("backend lock");
        if let Some(value) = map.get_mut(key) {
            value.truncate(len as usize);
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<()> {
        check_key(key)?;
        self.map.lock().expect("backend lock").remove(key);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.map.lock().expect("backend lock").keys().cloned().collect())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

// --- files ------------------------------------------------------------

/// A directory-backed [`Backend`]: each key is one file under the root.
///
/// `put` is atomic on POSIX filesystems: the value is written to a
/// `.tmp` sibling, flushed, then renamed over the destination, so a
/// crash leaves either the old manifest or the new one. `append` opens
/// in append mode, the OS's atomic-append guarantee for the WAL.
#[derive(Clone)]
pub struct FileBackend {
    root: PathBuf,
    /// When true (the default), `sync` calls `File::sync_all` on every
    /// file. Benchmarks turn it off to measure CPU, not the disk.
    durable_sync: bool,
}

impl FileBackend {
    /// Opens (creating if needed) a backend rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FileBackend { root, durable_sync: true })
    }

    /// Disables fsync; writes still go through the OS page cache.
    pub fn without_sync(mut self) -> Self {
        self.durable_sync = false;
        self
    }

    /// The directory this backend stores files under.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, key: &str) -> Result<PathBuf> {
        check_key(key)?;
        Ok(self.root.join(key))
    }
}

impl Backend for FileBackend {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path(key)?) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        let path = self.path(key)?;
        let tmp = self.root.join(format!("{key}.tmp"));
        let mut file = fs::File::create(&tmp)?;
        file.write_all(value)?;
        if self.durable_sync {
            file.sync_all()?;
        }
        drop(file);
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn append(&self, key: &str, bytes: &[u8]) -> Result<u64> {
        let path = self.path(key)?;
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)?;
        if self.durable_sync {
            file.sync_all()?;
        }
        Ok(file.stream_position()?)
    }

    fn read_at(&self, key: &str, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let mut file = fs::File::open(self.path(key)?)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut read = 0;
        while read < buf.len() {
            let n = file.read(&mut buf[read..])?;
            if n == 0 {
                break;
            }
            read += n;
        }
        Ok(read)
    }

    fn len(&self, key: &str) -> Result<Option<u64>> {
        match fs::metadata(self.path(key)?) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn truncate(&self, key: &str, len: u64) -> Result<()> {
        let path = self.path(key)?;
        match fs::OpenOptions::new().write(true).open(&path) {
            Ok(file) => {
                if file.metadata()?.len() > len {
                    file.set_len(len)?;
                    if self.durable_sync {
                        file.sync_all()?;
                    }
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        match fs::remove_file(self.path(key)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if check_key(name).is_ok() && !name.ends_with(".tmp") {
                keys.push(name.to_string());
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let mut root = std::env::temp_dir();
        root.push(format!("saq_durable_backend_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn exercise(backend: &dyn Backend) {
        assert_eq!(backend.get("wal").unwrap(), None);
        assert_eq!(backend.len("wal").unwrap(), None);
        assert_eq!(backend.append("wal", b"hello ").unwrap(), 6);
        assert_eq!(backend.append("wal", b"world").unwrap(), 11);
        assert_eq!(backend.get("wal").unwrap().unwrap(), b"hello world");
        let mut buf = [0u8; 5];
        assert_eq!(backend.read_at("wal", 6, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"world");
        assert_eq!(backend.read_at("wal", 9, &mut buf).unwrap(), 2);
        backend.truncate("wal", 5).unwrap();
        assert_eq!(backend.get("wal").unwrap().unwrap(), b"hello");
        backend.truncate("wal", 500).unwrap();
        assert_eq!(backend.len("wal").unwrap(), Some(5));
        backend.put("manifest", b"v1").unwrap();
        backend.put("manifest", b"v2").unwrap();
        assert_eq!(backend.get("manifest").unwrap().unwrap(), b"v2");
        assert_eq!(backend.list().unwrap(), vec!["manifest".to_string(), "wal".to_string()]);
        backend.delete("manifest").unwrap();
        backend.delete("manifest").unwrap();
        assert_eq!(backend.list().unwrap(), vec!["wal".to_string()]);
        backend.sync().unwrap();
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let root = temp_root("contract");
        exercise(&FileBackend::open(&root).unwrap().without_sync());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn file_backend_reopens_existing_data() {
        let root = temp_root("reopen");
        {
            let backend = FileBackend::open(&root).unwrap();
            backend.append("wal", b"persisted").unwrap();
        }
        let backend = FileBackend::open(&root).unwrap();
        assert_eq!(backend.get("wal").unwrap().unwrap(), b"persisted");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn keys_are_validated() {
        for bad in ["", "UPPER", "a/b", "../x", ".hidden", "sp ace"] {
            assert!(check_key(bad).is_err(), "{bad:?} should be rejected");
        }
        for good in ["wal", "seg-42", "docs-7", "manifest", "a.b_c-d0"] {
            check_key(good).unwrap();
        }
        let backend = MemoryBackend::new();
        assert!(backend.put("A/B", b"x").is_err());
    }

    #[test]
    fn memory_fork_and_poke_are_independent() {
        let backend = MemoryBackend::new();
        backend.append("wal", b"abcdef").unwrap();
        let fork = backend.fork();
        fork.poke("wal", 2, b'X');
        fork.truncate("wal", 4).unwrap();
        assert_eq!(fork.get("wal").unwrap().unwrap(), b"abXd");
        assert_eq!(backend.get("wal").unwrap().unwrap(), b"abcdef");
        // Clones, by contrast, share storage.
        let clone = backend.clone();
        clone.append("wal", b"!").unwrap();
        assert_eq!(backend.get("wal").unwrap().unwrap(), b"abcdef!");
    }
}
