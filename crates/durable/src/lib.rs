//! Durable storage for the SAQ stack: a write-ahead log plus immutable
//! B-tree segments behind a pluggable [`Backend`] trait.
//!
//! The paper's premise is *archival* of large sequence collections, so
//! the store that serves them has to outlive the process. This crate is
//! the layer under `saq-archive` that makes that true, and it is
//! deliberately ignorant of sequences: it stores `(u64 id, bytes)`
//! entries, replays `(generation, id)` mutation histories, and leaves
//! every payload encoding to its callers. That keeps it a leaf crate —
//! plain `std`, no workspace dependencies — that the core, index, and
//! archive layers can all build on without cycles.
//!
//! | module | role |
//! |--------|------|
//! | [`backend`] | byte-string KV trait; in-memory and directory-backed impls |
//! | [`codec`] | hand-rolled binary helpers and the CRC-framed record shape |
//! | [`wal`] | append-only write-ahead log of mutation records |
//! | [`segment`] | immutable B-tree segments: eager leaves, draft interiors |
//! | [`store`] | manifest, recovery protocol, and the WAL→segment compactor |
//!
//! See `docs/STORAGE.md` for the on-disk formats and the recovery
//! protocol, both verified against this crate by `tests/docs_storage.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod error;
pub mod segment;
pub mod store;
pub mod wal;

pub use backend::{Backend, FileBackend, MemoryBackend};
pub use error::{Error, Result};
pub use segment::{SegmentBuilder, SegmentMeta, SegmentReader};
pub use store::{DocsReader, DocsSpec, DurableConfig, DurableStore, Recovered};
pub use wal::{WalOp, WalRecord};
