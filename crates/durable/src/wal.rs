//! The append-only write-ahead log.
//!
//! Every mutation is appended to the `"wal"` key as one framed record
//! (see [`crate::codec`]) *before* it is applied in memory. A record
//! carries the mutation kind, the generation it created, and — for
//! puts — the full encoded payload, so replay alone reconstructs both
//! the store contents and the coalescing mutation-log history
//! (`(generation, id)` pairs) the archive layer uses for
//! `changed_since`.
//!
//! # Record body layout
//!
//! ```text
//! [kind: u8] [generation: u64le] [id: u64le] [payload: u32le len + bytes]
//! ```
//!
//! `kind` is 1 = put, 2 = remove, 3 = wildcard (an id-less whole-store
//! invalidation, e.g. a clock rescale), 4 = append (extend an existing
//! entry's payload; replay folds the delta in through the caller's merge
//! function — see [`crate::DurableStore::open_with_merge`]). `id` is 0
//! and `payload` empty for wildcard records; `payload` is empty for
//! removes.
//!
//! # Reading back
//!
//! [`read_wal_bytes`] walks frames until the bytes end cleanly, tear
//! (crash mid-append), or fail CRC. The torn/corrupt tail is *reported*,
//! not returned: recovery keeps the clean prefix, truncates the log to
//! it, and continues — a damaged suffix can never propagate. Generation
//! monotonicity is enforced one level up, where the manifest's base
//! generation is known.

use crate::codec::{self, Cursor, FrameRead};
use crate::error::{Error, Result};

/// The backend key the log lives under.
pub const WAL_KEY: &str = "wal";

const KIND_PUT: u8 = 1;
const KIND_REMOVE: u8 = 2;
const KIND_WILDCARD: u8 = 3;
const KIND_APPEND: u8 = 4;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace the entry at `id` with `payload` bytes.
    Put {
        /// The entry id.
        id: u64,
        /// The encoded entry (opaque to this layer).
        payload: Vec<u8>,
    },
    /// Remove the entry at `id`.
    Remove {
        /// The entry id.
        id: u64,
    },
    /// An id-less whole-store mutation (every entry may have changed).
    Wildcard,
    /// Extend the entry at `id` with `payload` bytes. The payload holds
    /// only the *delta*; replay folds it into the prior entry (or a
    /// missing one) through the merge function handed to
    /// [`crate::DurableStore::open_with_merge`] — the durable layer
    /// itself never interprets either byte string.
    Append {
        /// The entry id.
        id: u64,
        /// The encoded delta (opaque to this layer).
        payload: Vec<u8>,
    },
}

impl WalOp {
    /// The id this op touches, or `None` for [`WalOp::Wildcard`] — the
    /// same shape the archive's coalescing mutation log records.
    pub fn id(&self) -> Option<u64> {
        match self {
            WalOp::Put { id, .. } | WalOp::Remove { id } | WalOp::Append { id, .. } => Some(*id),
            WalOp::Wildcard => None,
        }
    }
}

/// One WAL record: the generation a mutation created, and the op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The store generation after this mutation applied.
    pub generation: u64,
    /// The mutation itself.
    pub op: WalOp,
}

impl WalRecord {
    /// Encodes this record as one framed byte string ready to append.
    pub fn encode(&self) -> Vec<u8> {
        codec::frame(&self.encode_body())
    }

    /// Encodes just the frame body (kind, generation, id, payload).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let (kind, id, payload): (u8, u64, &[u8]) = match &self.op {
            WalOp::Put { id, payload } => (KIND_PUT, *id, payload),
            WalOp::Remove { id } => (KIND_REMOVE, *id, &[]),
            WalOp::Wildcard => (KIND_WILDCARD, 0, &[]),
            WalOp::Append { id, payload } => (KIND_APPEND, *id, payload),
        };
        body.push(kind);
        codec::put_u64(&mut body, self.generation);
        codec::put_u64(&mut body, id);
        codec::put_bytes(&mut body, payload);
        body
    }

    /// Decodes a frame body produced by [`WalRecord::encode_body`].
    pub fn decode_body(body: &[u8]) -> Result<WalRecord> {
        let mut c = Cursor::new(body, "wal record");
        let kind = c.get_u8()?;
        let generation = c.get_u64()?;
        let id = c.get_u64()?;
        let payload = c.get_bytes()?.to_vec();
        c.finish()?;
        let op = match kind {
            KIND_PUT => WalOp::Put { id, payload },
            KIND_REMOVE if payload.is_empty() => WalOp::Remove { id },
            KIND_WILDCARD if payload.is_empty() && id == 0 => WalOp::Wildcard,
            KIND_APPEND => WalOp::Append { id, payload },
            _ => {
                return Err(Error::corrupt(format!(
                    "wal record: bad kind {kind} (id {id}, {} payload bytes)",
                    payload.len()
                )))
            }
        };
        Ok(WalRecord { generation, op })
    }
}

/// Everything learned from one pass over the log bytes.
#[derive(Debug)]
pub struct WalReadback {
    /// The decoded records of the clean prefix, in append order.
    pub records: Vec<WalRecord>,
    /// `ends[i]` is the byte offset just past record `i` — the kill
    /// points a crash can truncate the log to.
    pub ends: Vec<u64>,
    /// Length of the clean prefix; recovery truncates the log here.
    pub clean_len: u64,
    /// True when bytes past the clean prefix were discarded (a torn
    /// final record or a CRC/length failure).
    pub tail_discarded: bool,
}

/// Walks the whole log, returning the clean prefix and whether a
/// damaged tail was discarded. Never fails: damage ends the walk.
pub fn read_wal_bytes(bytes: &[u8]) -> WalReadback {
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut offset = 0u64;
    let mut tail_discarded = false;
    loop {
        match codec::read_frame(bytes, offset) {
            FrameRead::End => break,
            FrameRead::Torn | FrameRead::Corrupt { .. } => {
                tail_discarded = true;
                break;
            }
            FrameRead::Record { body, next } => match WalRecord::decode_body(body) {
                Ok(record) => {
                    records.push(record);
                    ends.push(next);
                    offset = next;
                }
                Err(_) => {
                    // A frame whose CRC passes but whose body doesn't
                    // decode is corruption all the same: stop here.
                    tail_discarded = true;
                    break;
                }
            },
        }
    }
    WalReadback { records, ends, clean_len: offset, tail_discarded }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord { generation: 1, op: WalOp::Put { id: 7, payload: b"seven".to_vec() } },
            WalRecord { generation: 2, op: WalOp::Remove { id: 7 } },
            WalRecord { generation: 3, op: WalOp::Wildcard },
            WalRecord { generation: 4, op: WalOp::Put { id: 9, payload: vec![] } },
            WalRecord { generation: 5, op: WalOp::Append { id: 9, payload: b"more".to_vec() } },
        ]
    }

    fn log_bytes(records: &[WalRecord]) -> Vec<u8> {
        records.iter().flat_map(|r| r.encode()).collect()
    }

    #[test]
    fn records_round_trip() {
        for record in sample() {
            let body = record.encode_body();
            assert_eq!(WalRecord::decode_body(&body).unwrap(), record);
        }
    }

    #[test]
    fn clean_log_reads_back_fully() {
        let records = sample();
        let bytes = log_bytes(&records);
        let back = read_wal_bytes(&bytes);
        assert_eq!(back.records, records);
        assert_eq!(back.clean_len, bytes.len() as u64);
        assert_eq!(back.ends.len(), records.len());
        assert_eq!(*back.ends.last().unwrap(), bytes.len() as u64);
        assert!(!back.tail_discarded);
        assert!(read_wal_bytes(&[]).records.is_empty());
    }

    #[test]
    fn torn_tail_is_discarded_at_every_truncation_point() {
        let records = sample();
        let bytes = log_bytes(&records);
        let full = read_wal_bytes(&bytes);
        for cut in 0..bytes.len() as u64 {
            let back = read_wal_bytes(&bytes[..cut as usize]);
            // The clean prefix is exactly the records wholly before the cut.
            let expect = full.ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(back.records.len(), expect, "cut at {cut}");
            assert_eq!(back.records[..], records[..expect]);
            assert_eq!(back.tail_discarded, back.clean_len < cut, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_ends_the_walk_at_the_damaged_record() {
        let records = sample();
        let bytes = log_bytes(&records);
        let full = read_wal_bytes(&bytes);
        // Flip one byte inside the third record's body.
        let mut bad = bytes.clone();
        let third_start = full.ends[1] as usize;
        bad[third_start + codec::FRAME_HEADER] ^= 0xFF;
        let back = read_wal_bytes(&bad);
        assert_eq!(back.records[..], records[..2]);
        assert!(back.tail_discarded);
        assert_eq!(back.clean_len, full.ends[1]);
    }

    #[test]
    fn valid_frame_with_undecodable_body_is_corruption() {
        let mut bytes = log_bytes(&sample()[..1]);
        bytes.extend_from_slice(&codec::frame(b"not a wal record"));
        let back = read_wal_bytes(&bytes);
        assert_eq!(back.records.len(), 1);
        assert!(back.tail_discarded);
    }
}
