//! Failures of the storage layer.
//!
//! Two things go wrong in a storage engine: the host I/O fails, or the
//! bytes on disk are not what we wrote. Everything else — missing keys,
//! malformed key names — is a programming error at the call site and
//! gets its own variant so callers can tell the difference.

use std::fmt;

/// An error from the durable storage layer.
#[derive(Debug)]
pub enum Error {
    /// The underlying backend I/O failed (filesystem, in rehearsals the
    /// in-memory map never produces this).
    Io(std::io::Error),
    /// Stored bytes failed validation: a CRC mismatch, an impossible
    /// length prefix, or a structurally truncated payload. The context
    /// names the key and offset so operators can find the damage.
    Corrupt {
        /// Human-readable description of what failed validation where.
        context: String,
    },
    /// A key was rejected before reaching the backend (empty, or using
    /// characters outside `[a-z0-9._-]`). Keys are layer-internal names,
    /// so this indicates a bug, not bad user data.
    InvalidKey(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "storage io error: {e}"),
            Error::Corrupt { context } => write!(f, "corrupt storage: {context}"),
            Error::InvalidKey(key) => write!(f, "invalid storage key {key:?}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Builds a [`Error::Corrupt`] with formatted context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        Error::Corrupt { context: context.into() }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = Error::from(std::io::Error::other("disk on fire"));
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::corrupt("wal: bad crc at offset 12");
        assert!(e.to_string().contains("offset 12"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(Error::InvalidKey("../etc".into()).to_string().contains("../etc"));
    }
}
