//! Hand-rolled binary encoding: byte cursors, CRC-32, and the one frame
//! shape every durable structure shares.
//!
//! The vendored serde derives are no-ops, so every on-disk structure in
//! this crate is encoded by hand through the helpers here. All integers
//! are little-endian. Variable-length byte strings carry a `u32` length
//! prefix. Floats travel as their IEEE-754 bit patterns.
//!
//! # The frame
//!
//! Every self-delimiting unit on disk — a WAL record, a segment page,
//! the manifest — is wrapped in the same frame:
//!
//! ```text
//! [len: u32le] [crc: u32le] [body: len bytes]
//! ```
//!
//! `len` counts only the body; `crc` is CRC-32 (IEEE, reflected — the
//! zlib/Ethernet polynomial) over the body. A reader walks frames by
//! length and can classify any prefix of a byte string as a clean end,
//! a torn tail (too few bytes for the promised frame: the classic
//! crash-mid-append shape), or corruption (a CRC mismatch or an insane
//! length). Lengths above [`MAX_FRAME`] are treated as corruption rather
//! than attempted, so a damaged length prefix can never drive a
//! multi-gigabyte allocation.

use crate::error::{Error, Result};

/// Upper bound on a single frame body (64 MiB). Real bodies are pages
/// or records, orders of magnitude smaller; anything larger is a
/// corrupt length prefix.
pub const MAX_FRAME: usize = 64 << 20;

/// Bytes of framing overhead per frame (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

// --- CRC-32 -----------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the zlib `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- writing ----------------------------------------------------------

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed byte string (`u32` length, then bytes).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Wraps a body in the standard `[len][crc][body]` frame.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);
    out
}

// --- reading ----------------------------------------------------------

/// A bounds-checked cursor over a byte slice. Every `get_*` returns
/// [`Error::Corrupt`] on underflow instead of panicking, so decoders
/// built on it reject truncated bodies gracefully.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> Cursor<'a> {
    /// A cursor over `bytes`; `what` names the structure for error text.
    pub fn new(bytes: &'a [u8], what: &'a str) -> Self {
        Cursor { bytes, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(Error::corrupt(format!(
                "{}: truncated body (wanted {n} bytes at offset {}, have {})",
                self.what,
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u32` little-endian.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64` little-endian.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// How many bytes remain unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless the cursor consumed the whole body — decoders call
    /// this last so trailing garbage is rejected, not ignored.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(Error::corrupt(format!(
                "{}: {} trailing bytes after body",
                self.what,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Outcome of reading one frame at an offset.
#[derive(Debug)]
pub enum FrameRead<'a> {
    /// A validated frame: its body, and the offset just past it.
    Record {
        /// The frame body (CRC already verified).
        body: &'a [u8],
        /// Offset of the byte after this frame.
        next: u64,
    },
    /// The offset sits exactly at the end of the bytes: a clean end.
    End,
    /// Too few bytes remain for the promised frame — the torn tail a
    /// crash mid-append leaves behind.
    Torn,
    /// The frame failed validation (CRC mismatch or insane length).
    Corrupt {
        /// What failed, for diagnostics.
        reason: String,
    },
}

/// Reads the frame starting at `offset` in `bytes`.
pub fn read_frame(bytes: &[u8], offset: u64) -> FrameRead<'_> {
    let offset = offset as usize;
    if offset == bytes.len() {
        return FrameRead::End;
    }
    if bytes.len() - offset < FRAME_HEADER {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return FrameRead::Corrupt {
            reason: format!("frame length {len} at offset {offset} exceeds MAX_FRAME"),
        };
    }
    if bytes.len() - offset - FRAME_HEADER < len {
        return FrameRead::Torn;
    }
    let body = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
    let actual = crc32(body);
    if actual != crc {
        return FrameRead::Corrupt {
            reason: format!(
                "crc mismatch at offset {offset}: stored {crc:#010x}, computed {actual:#010x}"
            ),
        };
    }
    FrameRead::Record { body, next: (offset + FRAME_HEADER + len) as u64 }
}

/// Decodes a byte string that must be exactly one valid frame (used for
/// point values like the manifest, where torn tails are not expected).
pub fn read_single_frame<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u8]> {
    match read_frame(bytes, 0) {
        FrameRead::Record { body, next } if next as usize == bytes.len() => Ok(body),
        FrameRead::Record { .. } => {
            Err(Error::corrupt(format!("{what}: trailing bytes after frame")))
        }
        FrameRead::End => Err(Error::corrupt(format!("{what}: empty"))),
        FrameRead::Torn => Err(Error::corrupt(format!("{what}: truncated frame"))),
        FrameRead::Corrupt { reason } => Err(Error::corrupt(format!("{what}: {reason}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn cursor_round_trips_and_rejects_underflow() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.5);
        put_bytes(&mut buf, b"abc");
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.get_u32().unwrap(), 7);
        assert_eq!(c.get_u64().unwrap(), u64::MAX);
        assert_eq!(c.get_f64().unwrap(), -0.5);
        assert_eq!(c.get_bytes().unwrap(), b"abc");
        c.finish().unwrap();

        let mut c = Cursor::new(&buf[..3], "short");
        assert!(c.get_u32().unwrap_err().to_string().contains("short"));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut c = Cursor::new(&[1, 2, 3, 4, 5], "tail");
        c.get_u32().unwrap();
        assert!(c.finish().unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn frames_walk_and_classify() {
        let mut log = frame(b"first");
        log.extend_from_slice(&frame(b"second"));
        let FrameRead::Record { body, next } = read_frame(&log, 0) else { panic!("record") };
        assert_eq!(body, b"first");
        let FrameRead::Record { body, next } = read_frame(&log, next) else { panic!("record") };
        assert_eq!(body, b"second");
        assert!(matches!(read_frame(&log, next), FrameRead::End));

        // Torn tail: drop the last byte.
        let torn = &log[..log.len() - 1];
        let FrameRead::Record { next, .. } = read_frame(torn, 0) else { panic!("record") };
        assert!(matches!(read_frame(torn, next), FrameRead::Torn));

        // Corrupt body: flip a byte inside the first frame's body.
        let mut bad = log.clone();
        bad[FRAME_HEADER] ^= 0x40;
        assert!(matches!(read_frame(&bad, 0), FrameRead::Corrupt { .. }));

        // Insane length prefix never allocates.
        let mut huge = frame(b"x");
        huge[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(read_frame(&huge, 0), FrameRead::Corrupt { .. }));
    }

    #[test]
    fn single_frame_reader_is_strict() {
        let good = frame(b"manifest");
        assert_eq!(read_single_frame(&good, "m").unwrap(), b"manifest");
        let mut two = good.clone();
        two.extend_from_slice(&frame(b"extra"));
        assert!(read_single_frame(&two, "m").is_err());
        assert!(read_single_frame(&good[..5], "m").is_err());
        assert!(read_single_frame(&[], "m").is_err());
    }
}
