//! The inverted-file organization of Fig. 10.
//!
//! "It consists of a B-Tree structure which points to the postings file. The
//! postings file contains buckets of R–R interval lengths and a set of
//! pointers to the ECG representations which contain those interval
//! lengths... augmented with the position of the interval."
//!
//! Keys are integral bucket values (e.g. an interval length in samples);
//! each bucket's posting list holds `(sequence id, position)` pairs kept
//! sorted, as the paper notes each bucket is "sorted by the values stored in
//! it".

use crate::bplus::BPlusTree;
use crate::stats::IntervalStats;
use std::collections::HashMap;

/// A pointer from a bucket into a stored sequence representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Identifier of the sequence representation.
    pub sequence: u64,
    /// Position of the feature occurrence inside the sequence (e.g. the
    /// index of the first peak of the matching interval).
    pub position: u32,
}

/// Inverted file: B+tree over bucket keys → sorted posting lists.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    tree: BPlusTree<i64, Vec<Posting>>,
    /// Bucket keys holding postings of each sequence — incremental
    /// bookkeeping so sequence counts and removals touch only the
    /// sequence's own buckets instead of walking the whole tree.
    seq_postings: HashMap<u64, Vec<i64>>,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Adds an occurrence of `key` in the given sequence at `position`.
    pub fn add(&mut self, key: i64, sequence: u64, position: u32) {
        let posting = Posting { sequence, position };
        let inserted = match self.tree.get_mut(&key) {
            Some(list) => {
                // Keep sorted; ignore exact duplicates.
                match list.binary_search(&posting) {
                    Ok(_) => false,
                    Err(i) => {
                        list.insert(i, posting);
                        true
                    }
                }
            }
            None => {
                self.tree.insert(key, vec![posting]);
                true
            }
        };
        if inserted {
            self.seq_postings.entry(sequence).or_default().push(key);
        }
    }

    /// Replaces every posting of a sequence with the given interval
    /// buckets, one posting per position — the incremental-maintenance
    /// entry point (`remove_sequence` + `add` per bucket).
    pub fn insert_sequence(&mut self, sequence: u64, buckets: &[i64]) {
        self.remove_sequence(sequence);
        for (pos, &bucket) in buckets.iter().enumerate() {
            self.add(bucket, sequence, pos as u32);
        }
    }

    /// Number of distinct sequences with at least one posting.
    pub fn sequence_count(&self) -> usize {
        self.seq_postings.len()
    }

    /// Number of distinct bucket keys.
    pub fn bucket_count(&self) -> usize {
        self.tree.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.tree.iter().iter().map(|(_, v)| v.len()).sum()
    }

    /// Postings for an exact key.
    pub fn lookup(&self, key: i64) -> &[Posting] {
        self.tree.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All postings with bucket key in `[key - tolerance, key + tolerance]` —
    /// the paper's approximate query `n ± ε` handled "as regular range
    /// queries". Results are deduplicated and sorted.
    pub fn lookup_range(&self, key: i64, tolerance: i64) -> Vec<Posting> {
        // Saturate so extreme tolerances mean "unbounded" instead of
        // overflowing (a negative tolerance still yields an empty range).
        let lo = key.saturating_sub(tolerance);
        let hi = key.saturating_add(tolerance);
        let mut out: Vec<Posting> = self
            .tree
            .range(&lo, &hi)
            .into_iter()
            .flat_map(|(_, list)| list.iter().copied())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All postings with bucket key in `[key - tolerance, key + tolerance]`,
    /// each paired with the bucket key it was found under. Unlike
    /// [`InvertedIndex::lookup_range`] this keeps enough information to
    /// answer an approximate interval query entirely from the index (the
    /// deviation of a posting is `|bucket key − target|`), so the planner
    /// can serve interval leaves without touching any stored entry.
    /// Results are sorted by `(sequence, position, key)`.
    pub fn range_with_keys(&self, key: i64, tolerance: i64) -> Vec<(i64, Posting)> {
        let lo = key.saturating_sub(tolerance);
        let hi = key.saturating_add(tolerance);
        let mut out: Vec<(i64, Posting)> = self
            .tree
            .range(&lo, &hi)
            .into_iter()
            .flat_map(|(k, list)| list.iter().map(move |p| (*k, *p)))
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Removes every posting of a sequence (e.g. when a representation is
    /// re-ingested); returns how many postings were dropped. Cost is
    /// proportional to the sequence's own postings, not the index size:
    /// the per-sequence bucket-key bookkeeping names exactly the buckets
    /// to touch.
    pub fn remove_sequence(&mut self, sequence: u64) -> usize {
        let Some(mut keys) = self.seq_postings.remove(&sequence) else {
            return 0;
        };
        keys.sort_unstable();
        keys.dedup();
        let mut dropped = 0;
        for key in keys {
            if let Some(list) = self.tree.get_mut(&key) {
                let before = list.len();
                list.retain(|p| p.sequence != sequence);
                dropped += before - list.len();
                if list.is_empty() {
                    self.tree.remove(&key);
                }
            }
        }
        dropped
    }

    /// Every bucket with its posting list, in key order — the full index
    /// contents (rebuild oracles and introspection).
    pub fn entries(&self) -> Vec<(i64, Vec<Posting>)> {
        self.tree.iter().into_iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Snapshots the interval histogram and posting totals for planning.
    pub fn stats(&self) -> IntervalStats {
        let mut postings = 0;
        let mut histogram = std::collections::BTreeMap::new();
        for (&key, list) in self.tree.iter() {
            postings += list.len() as u64;
            histogram.insert(key, list.len() as u64);
        }
        IntervalStats {
            sequences: self.seq_postings.len() as u64,
            buckets: self.tree.len() as u64,
            postings,
            histogram,
        }
    }

    /// Distinct sequence ids with any posting in `[key ± tolerance]`.
    pub fn matching_sequences(&self, key: i64, tolerance: i64) -> Vec<u64> {
        let mut ids: Vec<u64> =
            self.lookup_range(key, tolerance).into_iter().map(|p| p.sequence).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookups() {
        let idx = InvertedIndex::new();
        assert!(idx.lookup(5).is_empty());
        assert!(idx.lookup_range(5, 3).is_empty());
        assert_eq!(idx.bucket_count(), 0);
    }

    #[test]
    fn add_and_exact_lookup() {
        let mut idx = InvertedIndex::new();
        idx.add(136, 1, 0);
        idx.add(136, 2, 3);
        idx.add(149, 1, 1);
        assert_eq!(idx.lookup(136).len(), 2);
        assert_eq!(idx.lookup(149), &[Posting { sequence: 1, position: 1 }]);
        assert_eq!(idx.bucket_count(), 2);
        assert_eq!(idx.posting_count(), 3);
    }

    #[test]
    fn duplicates_ignored() {
        let mut idx = InvertedIndex::new();
        idx.add(10, 1, 0);
        idx.add(10, 1, 0);
        assert_eq!(idx.lookup(10).len(), 1);
    }

    #[test]
    fn postings_stay_sorted() {
        let mut idx = InvertedIndex::new();
        idx.add(7, 9, 5);
        idx.add(7, 1, 2);
        idx.add(7, 9, 1);
        let l = idx.lookup(7);
        assert!(l.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn paper_rr_query_scenario() {
        // §5.2: "to find the ECGs with an R-R interval of duration 136 ± 3 we
        // follow the B-Tree looking for values 133..139".
        let mut idx = InvertedIndex::new();
        // Top ECG of Fig. 9: intervals 149, 149.
        for (pos, iv) in [149i64, 149].iter().enumerate() {
            idx.add(*iv, 1, pos as u32);
        }
        // Bottom ECG: intervals 136, 137, 136.
        for (pos, iv) in [136i64, 137, 136].iter().enumerate() {
            idx.add(*iv, 2, pos as u32);
        }
        assert_eq!(idx.matching_sequences(136, 3), vec![2]);
        assert_eq!(idx.matching_sequences(149, 0), vec![1]);
        assert_eq!(idx.matching_sequences(143, 10), vec![1, 2]);
        assert!(idx.matching_sequences(100, 5).is_empty());
    }

    #[test]
    fn range_is_inclusive_and_dedups() {
        let mut idx = InvertedIndex::new();
        idx.add(10, 1, 0);
        idx.add(12, 1, 0);
        idx.add(14, 2, 0);
        // (sequence 1, position 0) occurs under two bucket keys but is one
        // occurrence; lookup_range reports it once.
        let r = idx.lookup_range(12, 2);
        assert_eq!(r.len(), 2);
        let seqs = idx.matching_sequences(12, 2);
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn range_with_keys_reports_bucket_keys() {
        let mut idx = InvertedIndex::new();
        idx.add(10, 1, 1);
        idx.add(12, 1, 0);
        idx.add(14, 2, 0);
        idx.add(99, 3, 0);
        let r = idx.range_with_keys(12, 2);
        assert_eq!(
            r,
            vec![
                (12, Posting { sequence: 1, position: 0 }),
                (10, Posting { sequence: 1, position: 1 }),
                (14, Posting { sequence: 2, position: 0 }),
            ]
        );
        // Deviations are recoverable without touching the sequences.
        assert_eq!(r.iter().map(|(k, _)| (k - 12).abs()).collect::<Vec<_>>(), vec![0, 2, 2]);
    }

    #[test]
    fn remove_sequence_strips_all_postings() {
        let mut idx = InvertedIndex::new();
        idx.add(10, 1, 0);
        idx.add(12, 1, 1);
        idx.add(12, 2, 0);
        assert_eq!(idx.remove_sequence(1), 2);
        assert_eq!(idx.posting_count(), 1);
        assert!(idx.matching_sequences(11, 2) == vec![2]);
        assert_eq!(idx.remove_sequence(1), 0);
    }

    #[test]
    fn insert_sequence_replaces_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert_sequence(1, &[8, 9, 8]);
        idx.insert_sequence(2, &[20]);
        assert_eq!(idx.sequence_count(), 2);
        assert_eq!(idx.posting_count(), 4);
        // Re-ingesting replaces, never accumulates.
        idx.insert_sequence(1, &[30]);
        assert_eq!(idx.posting_count(), 2);
        assert_eq!(idx.matching_sequences(8, 1), Vec::<u64>::new());
        assert_eq!(idx.matching_sequences(30, 0), vec![1]);
        // Empty buckets fully unindex a sequence.
        idx.insert_sequence(2, &[]);
        assert_eq!(idx.sequence_count(), 1);
    }

    #[test]
    fn entries_dump_matches_contents() {
        let mut idx = InvertedIndex::new();
        idx.add(12, 2, 0);
        idx.add(10, 1, 0);
        idx.add(10, 1, 1);
        let entries = idx.entries();
        assert_eq!(
            entries,
            vec![
                (
                    10,
                    vec![
                        Posting { sequence: 1, position: 0 },
                        Posting { sequence: 1, position: 1 }
                    ]
                ),
                (12, vec![Posting { sequence: 2, position: 0 }]),
            ]
        );
    }

    #[test]
    fn stats_histogram_tracks_buckets() {
        let mut idx = InvertedIndex::new();
        idx.insert_sequence(1, &[8, 8, 9]);
        idx.insert_sequence(2, &[9]);
        let stats = idx.stats();
        assert_eq!(stats.sequences, 2);
        assert_eq!(stats.buckets, 2);
        assert_eq!(stats.postings, 4);
        assert_eq!(stats.histogram.get(&8), Some(&2));
        assert_eq!(stats.histogram.get(&9), Some(&2));
        assert_eq!(stats.estimate_matches(9, 0), 2);
        idx.remove_sequence(1);
        let stats = idx.stats();
        assert_eq!(stats.sequences, 1);
        assert_eq!(stats.histogram.get(&8), None, "emptied buckets drop out");
    }

    #[test]
    fn extreme_tolerances_saturate_instead_of_overflowing() {
        let mut idx = InvertedIndex::new();
        idx.add(10, 1, 0);
        idx.add(-7, 2, 0);
        assert_eq!(idx.lookup_range(5, i64::MAX).len(), 2, "unbounded range sees everything");
        assert_eq!(idx.range_with_keys(5, i64::MAX).len(), 2);
        assert!(idx.lookup_range(i64::MIN, 3).is_empty());
        assert!(idx.lookup_range(5, -1).is_empty(), "negative tolerance is an empty range");
    }

    #[test]
    fn negative_keys_allowed() {
        let mut idx = InvertedIndex::new();
        idx.add(-5, 3, 1);
        assert_eq!(idx.lookup_range(-6, 1).len(), 1);
    }
}
