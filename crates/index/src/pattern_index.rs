//! The slope-pattern index of §4.4.
//!
//! Stored sequences are kept as strings over the slope-sign alphabet; a
//! query pattern compiles to a DFA and the index returns, per sequence, the
//! positions where matches begin ("by using the index we get the positions
//! of the first point of all stored sequences that match that pattern").
//!
//! A 1-gram occurrence table accelerates scans: sequences lacking some
//! symbol that every match must contain are skipped without running the
//! DFA.

use crate::stats::{required_symbols, PatternStats};
use saq_pattern::{Dfa, Regex};
use std::collections::HashMap;

/// A per-sequence pattern-match result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHit {
    /// Sequence identifier.
    pub sequence: u64,
    /// Start offsets (in segments) of every match.
    pub positions: Vec<usize>,
}

/// Index over symbol strings (one per stored sequence representation).
#[derive(Debug, Clone, Default)]
pub struct PatternIndex {
    docs: Vec<(u64, Vec<u8>)>,
    ids: HashMap<u64, usize>,
    /// `contains[sym]` = sorted list of doc slots whose string contains sym.
    contains: HashMap<u8, Vec<usize>>,
}

impl PatternIndex {
    /// An empty index.
    pub fn new() -> Self {
        PatternIndex::default()
    }

    /// Inserts (or replaces) the symbol string of a sequence.
    pub fn insert(&mut self, sequence: u64, symbols: Vec<u8>) {
        match self.ids.get(&sequence) {
            Some(&slot) => {
                self.docs[slot].1 = symbols;
                self.rebuild_contains();
            }
            None => {
                let slot = self.docs.len();
                for &sym in symbols.iter() {
                    let list = self.contains.entry(sym).or_default();
                    if list.last() != Some(&slot) {
                        list.push(slot);
                    }
                }
                self.docs.push((sequence, symbols));
                self.ids.insert(sequence, slot);
            }
        }
    }

    /// Removes a sequence's symbol string; returns whether it was indexed.
    /// The vacated doc slot is back-filled by the last document, and only
    /// the occurrence lists of the two affected documents' symbols are
    /// patched — cost is proportional to those documents, not the index.
    pub fn remove(&mut self, sequence: u64) -> bool {
        let Some(slot) = self.ids.remove(&sequence) else {
            return false;
        };
        let (_, removed_symbols) = self.docs.swap_remove(slot);
        // Drop the vacated slot from the removed doc's symbol lists.
        for sym in distinct_symbols(&removed_symbols) {
            if let Some(list) = self.contains.get_mut(&sym) {
                if let Ok(i) = list.binary_search(&slot) {
                    list.remove(i);
                }
                if list.is_empty() {
                    self.contains.remove(&sym);
                }
            }
        }
        // Re-address the back-filled doc: it moved from the old last slot
        // (the largest slot number, so the tail of each sorted list) to
        // the vacated one.
        if slot < self.docs.len() {
            let last = self.docs.len();
            let (moved_id, moved_symbols) = &self.docs[slot];
            self.ids.insert(*moved_id, slot);
            for sym in distinct_symbols(moved_symbols) {
                if let Some(list) = self.contains.get_mut(&sym) {
                    if let Ok(i) = list.binary_search(&last) {
                        list.remove(i);
                    }
                    if let Err(i) = list.binary_search(&slot) {
                        list.insert(i, slot);
                    }
                }
            }
        }
        true
    }

    /// Snapshots per-symbol document and prefix counts for planning.
    pub fn stats(&self) -> PatternStats {
        let containing =
            self.contains.iter().map(|(&sym, list)| (sym, list.len() as u64)).collect();
        let mut prefixes = std::collections::BTreeMap::new();
        let mut empty_docs = 0;
        for (_, symbols) in &self.docs {
            match symbols.first() {
                Some(&first) => *prefixes.entry(first).or_insert(0) += 1,
                None => empty_docs += 1,
            }
        }
        PatternStats { docs: self.docs.len() as u64, empty_docs, containing, prefixes }
    }

    fn rebuild_contains(&mut self) {
        self.contains.clear();
        for (slot, (_, symbols)) in self.docs.iter().enumerate() {
            for &sym in symbols {
                let list = self.contains.entry(sym).or_default();
                if list.last() != Some(&slot) {
                    list.push(slot);
                }
            }
        }
    }

    /// Number of indexed sequences.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The stored symbol string of a sequence, if present.
    pub fn symbols_of(&self, sequence: u64) -> Option<&[u8]> {
        self.ids.get(&sequence).map(|&slot| self.docs[slot].1.as_slice())
    }

    /// Sequences whose *entire* symbol string matches the pattern — the
    /// goal-post query semantics (a 24-hour log with exactly two peaks).
    pub fn full_matches(&self, regex: &Regex) -> Vec<u64> {
        let dfa = regex.compile();
        let required = required_symbols(regex.ast());
        self.candidate_slots(&required)
            .into_iter()
            .filter(|&slot| dfa.is_match(&self.docs[slot].1))
            .map(|slot| self.docs[slot].0)
            .collect()
    }

    /// As [`PatternIndex::full_matches`] but restricted to a candidate id
    /// set, with the pattern already compiled: only the candidates' symbol
    /// strings are run through the DFA. This is the access path a planner
    /// takes when an earlier predicate has already narrowed the candidates
    /// below the index's own document count. Unknown ids are skipped;
    /// results keep the candidates' order.
    pub fn full_matches_among(&self, dfa: &Dfa, candidates: &[u64]) -> Vec<u64> {
        candidates
            .iter()
            .filter(|id| self.ids.get(id).is_some_and(|&slot| dfa.is_match(&self.docs[slot].1)))
            .copied()
            .collect()
    }

    /// Per-sequence start positions of every (possibly overlapping)
    /// occurrence of the pattern.
    pub fn scan(&self, regex: &Regex) -> Vec<PatternHit> {
        let dfa = regex.compile();
        let required = required_symbols(regex.ast());
        self.candidate_slots(&required)
            .into_iter()
            .filter_map(|slot| {
                let (id, symbols) = &self.docs[slot];
                let positions = dfa.match_starts(symbols);
                if positions.is_empty() {
                    None
                } else {
                    Some(PatternHit { sequence: *id, positions })
                }
            })
            .collect()
    }

    /// Like [`PatternIndex::scan`] but with a pre-compiled DFA and no
    /// pruning — used by benchmarks to isolate scan cost.
    pub fn scan_unpruned(&self, dfa: &Dfa) -> Vec<PatternHit> {
        self.docs
            .iter()
            .filter_map(|(id, symbols)| {
                let positions = dfa.match_starts(symbols);
                if positions.is_empty() {
                    None
                } else {
                    Some(PatternHit { sequence: *id, positions })
                }
            })
            .collect()
    }

    /// Doc slots containing every required symbol (sorted).
    fn candidate_slots(&self, required: &[u8]) -> Vec<usize> {
        if required.is_empty() {
            return (0..self.docs.len()).collect();
        }
        // Intersect the occurrence lists, smallest first.
        let mut lists: Vec<&Vec<usize>> = Vec::with_capacity(required.len());
        for sym in required {
            match self.contains.get(sym) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<usize> = lists[0].clone();
        for list in &lists[1..] {
            acc.retain(|slot| list.binary_search(slot).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

/// The distinct symbols of one document (slope alphabets are tiny, so a
/// linear-scan set is cheapest).
fn distinct_symbols(symbols: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for &s in symbols {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_pattern::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(&['u', 'd', 'f']).unwrap()
    }

    fn index_with(docs: &[(u64, &str)]) -> PatternIndex {
        let ab = ab();
        let mut idx = PatternIndex::new();
        for (id, text) in docs {
            idx.insert(*id, ab.encode(text).unwrap());
        }
        idx
    }

    #[test]
    fn goalpost_full_match() {
        let idx = index_with(&[
            (1, "uudd"),      // one peak
            (2, "uuddfuudd"), // two peaks
            (3, "udfudfud"),  // three peaks
            (4, "fudfduf"),   // u d f d u f: not two clean peaks
            (5, "fuddfudf"),  // two peaks with flats
        ]);
        let re = Regex::parse("f* u+ d+ f* u+ d+ f*", &ab()).unwrap();
        let mut hits = idx.full_matches(&re);
        hits.sort_unstable();
        assert_eq!(hits, vec![2, 5]);
    }

    #[test]
    fn full_matches_among_respects_candidates() {
        let idx = index_with(&[(1, "uudd"), (2, "uuddfuudd"), (3, "udfudfud"), (5, "fuddfudf")]);
        let re = Regex::parse("f* u+ d+ f* u+ d+ f*", &ab()).unwrap();
        let dfa = re.compile();
        assert_eq!(idx.full_matches_among(&dfa, &[1, 2, 3]), vec![2]);
        assert_eq!(idx.full_matches_among(&dfa, &[5, 2]), vec![5, 2], "keeps candidate order");
        assert_eq!(idx.full_matches_among(&dfa, &[42]), Vec::<u64>::new(), "unknown ids skipped");
        // Restricted and unrestricted paths agree on the full id set.
        let mut all = idx.full_matches_among(&dfa, &[1, 2, 3, 5]);
        all.sort_unstable();
        let mut full = idx.full_matches(&re);
        full.sort_unstable();
        assert_eq!(all, full);
    }

    #[test]
    fn scan_positions() {
        let idx = index_with(&[(7, "ffudffud")]);
        let re = Regex::parse("u+ d+", &ab()).unwrap();
        let hits = idx.scan(&re);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].sequence, 7);
        assert_eq!(hits[0].positions, vec![2, 6]);
    }

    #[test]
    fn pruning_skips_docs_missing_required_symbols() {
        let idx = index_with(&[(1, "ffff"), (2, "uuuu"), (3, "ud")]);
        let re = Regex::parse("u+ d+", &ab()).unwrap();
        let hits = idx.scan(&re);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].sequence, 3);
    }

    #[test]
    fn required_symbols_logic() {
        let re = Regex::parse("u+ d+ f*", &ab()).unwrap();
        assert_eq!(required_symbols(re.ast()), vec![0, 1]);
        let re2 = Regex::parse("u | d", &ab()).unwrap();
        assert!(required_symbols(re2.ast()).is_empty());
        let re3 = Regex::parse("(u|u d) u", &ab()).unwrap();
        assert_eq!(required_symbols(re3.ast()), vec![0]);
    }

    #[test]
    fn replace_reindexes() {
        let ab = ab();
        let mut idx = index_with(&[(1, "uuuu")]);
        let re = Regex::parse("d", &ab).unwrap();
        assert!(idx.scan(&re).is_empty());
        idx.insert(1, ab.encode("dd").unwrap());
        assert_eq!(idx.scan(&re).len(), 1);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.symbols_of(1).unwrap(), &[1, 1]);
    }

    #[test]
    fn remove_unindexes_and_backfills_slots() {
        let ab = ab();
        let mut idx = index_with(&[(1, "uudd"), (2, "ffff"), (3, "udud")]);
        assert!(idx.remove(1));
        assert!(!idx.remove(1), "second removal is a no-op");
        assert_eq!(idx.len(), 2);
        assert!(idx.symbols_of(1).is_none());
        // The back-filled slot still answers queries for the moved doc.
        assert_eq!(idx.symbols_of(3).unwrap(), ab.encode("udud").unwrap().as_slice());
        let re = Regex::parse("(u d)+", &ab).unwrap();
        assert_eq!(idx.full_matches(&re), vec![3]);
        let re_f = Regex::parse("f+", &ab).unwrap();
        assert_eq!(idx.full_matches(&re_f), vec![2]);
    }

    #[test]
    fn stats_count_docs_prefixes_and_containment() {
        let mut idx = index_with(&[(1, "uudd"), (2, "ffff"), (3, "dud")]);
        idx.insert(4, Vec::new());
        let stats = idx.stats();
        assert_eq!(stats.docs, 4);
        assert_eq!(stats.empty_docs, 1);
        assert_eq!(stats.containing.get(&0), Some(&2), "u in docs 1 and 3");
        assert_eq!(stats.containing.get(&2), Some(&1), "f only in doc 2");
        assert_eq!(stats.prefixes.get(&0), Some(&1));
        assert_eq!(stats.prefixes.get(&1), Some(&1));
        assert_eq!(stats.prefixes.get(&2), Some(&1));
        idx.remove(2);
        assert_eq!(idx.stats().containing.get(&2), None);
    }

    #[test]
    fn empty_index_and_missing_doc() {
        let idx = PatternIndex::new();
        assert!(idx.is_empty());
        let re = Regex::parse("u", &ab()).unwrap();
        assert!(idx.full_matches(&re).is_empty());
        assert!(idx.symbols_of(42).is_none());
    }

    #[test]
    fn unpruned_scan_agrees_with_pruned() {
        let idx = index_with(&[(1, "ududud"), (2, "ffff"), (3, "uddu")]);
        let re = Regex::parse("u d", &ab()).unwrap();
        let pruned = idx.scan(&re);
        let unpruned = idx.scan_unpruned(&re.compile());
        assert_eq!(pruned, unpruned);
    }
}
