//! Clone-on-write containers backing snapshot-isolated stores.
//!
//! A store that hands out immutable snapshots cannot mutate a plain
//! `HashMap` in place: every snapshot would either deep-copy the whole
//! map (O(n) per write) or observe the writer's changes. [`ShardedCowMap`]
//! is the middle ground — the id space is split across a fixed number of
//! buckets, each an `Arc<HashMap>`, so cloning the map is `BUCKETS` cheap
//! `Arc` clones and a write copies only the one bucket it touches
//! (`Arc::make_mut`). Snapshots that share the other buckets keep sharing
//! them, which bounds per-generation memory to O(n / BUCKETS) instead of
//! O(n) under single-id churn.

use std::collections::HashMap;
use std::sync::Arc;

/// Number of independently-shared buckets. A power of two so the bucket
/// of an id is a mask; 64 keeps the per-write copy small (1/64th of the
/// map) without making the empty map's footprint noticeable.
const BUCKETS: usize = 64;

/// One independently-shared bucket: values behind `Arc`, so even a
/// copied bucket shares the untouched values themselves.
type Bucket<V> = Arc<HashMap<u64, Arc<V>>>;

/// A `u64`-keyed map whose clones share storage, copying only the bucket
/// a write lands in.
#[derive(Debug)]
pub struct ShardedCowMap<V> {
    buckets: Box<[Bucket<V>]>,
    len: usize,
}

impl<V> Clone for ShardedCowMap<V> {
    fn clone(&self) -> Self {
        ShardedCowMap { buckets: self.buckets.clone(), len: self.len }
    }
}

impl<V> Default for ShardedCowMap<V> {
    fn default() -> Self {
        ShardedCowMap::new()
    }
}

impl<V> ShardedCowMap<V> {
    /// An empty map.
    pub fn new() -> ShardedCowMap<V> {
        let buckets = (0..BUCKETS).map(|_| Arc::new(HashMap::new())).collect();
        ShardedCowMap { buckets, len: 0 }
    }

    fn bucket(id: u64) -> usize {
        (id % BUCKETS as u64) as usize
    }

    /// Inserts (or replaces) a value, copying only the touched bucket.
    /// Returns the previous value under the id, if any.
    pub fn insert(&mut self, id: u64, value: V) -> Option<Arc<V>> {
        self.insert_arc(id, Arc::new(value))
    }

    /// [`ShardedCowMap::insert`] for a value already behind an `Arc`.
    pub fn insert_arc(&mut self, id: u64, value: Arc<V>) -> Option<Arc<V>> {
        let bucket = Arc::make_mut(&mut self.buckets[Self::bucket(id)]);
        let old = bucket.insert(id, value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a value, copying only the touched bucket.
    pub fn remove(&mut self, id: u64) -> Option<Arc<V>> {
        let slot = &mut self.buckets[Self::bucket(id)];
        if !slot.contains_key(&id) {
            // Don't unshare a bucket (or copy it at all) for a miss.
            return None;
        }
        let old = Arc::make_mut(slot).remove(&id);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Borrows the value under an id.
    pub fn get(&self, id: u64) -> Option<&V> {
        self.buckets[Self::bucket(id)].get(&id).map(|v| &**v)
    }

    /// The shared handle to the value under an id.
    pub fn get_arc(&self, id: u64) -> Option<Arc<V>> {
        self.buckets[Self::bucket(id)].get(&id).cloned()
    }

    /// Whether the id is present.
    pub fn contains(&self, id: u64) -> bool {
        self.buckets[Self::bucket(id)].contains_key(&id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(id, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.buckets.iter().flat_map(|b| b.iter().map(|(&id, v)| (id, &**v)))
    }

    /// All ids, ascending.
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.buckets.iter().flat_map(|b| b.keys().copied()).collect();
        ids.sort_unstable();
        ids
    }

    /// Whether any bucket's storage is shared with `other` (diagnostic —
    /// used by tests asserting clone-on-write actually shares).
    pub fn shares_storage_with(&self, other: &ShardedCowMap<V>) -> bool {
        self.buckets.iter().zip(other.buckets.iter()).any(|(a, b)| Arc::ptr_eq(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = ShardedCowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7 + BUCKETS as u64, "b"), None, "same bucket, distinct id");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(&"a"));
        assert!(m.contains(7 + BUCKETS as u64));
        assert_eq!(m.insert(7, "a2").as_deref(), Some(&"a"), "replace returns the old value");
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(7).as_deref(), Some(&"a2"));
        assert_eq!(m.remove(7), None, "double remove is a no-op");
        assert_eq!(m.len(), 1);
        assert_eq!(m.sorted_ids(), vec![7 + BUCKETS as u64]);
    }

    #[test]
    fn clones_are_isolated_from_later_writes() {
        let mut m = ShardedCowMap::new();
        for id in 0..200u64 {
            m.insert(id, id * 10);
        }
        let snap = m.clone();
        m.insert(3, 999);
        m.remove(4);
        assert_eq!(snap.get(3), Some(&30), "snapshot keeps the old value");
        assert_eq!(snap.get(4), Some(&40), "snapshot keeps the removed entry");
        assert_eq!(snap.len(), 200);
        assert_eq!(m.get(3), Some(&999));
        assert_eq!(m.len(), 199);
    }

    #[test]
    fn writes_copy_only_the_touched_bucket() {
        let mut m = ShardedCowMap::new();
        for id in 0..200u64 {
            m.insert(id, id);
        }
        let snap = m.clone();
        m.insert(3, 999);
        // Bucket 3 diverged; the other 63 buckets are still shared.
        let shared =
            m.buckets.iter().zip(snap.buckets.iter()).filter(|(a, b)| Arc::ptr_eq(a, b)).count();
        assert_eq!(shared, BUCKETS - 1);
        assert!(m.shares_storage_with(&snap));
    }

    #[test]
    fn untouched_values_stay_shared_across_a_bucket_copy() {
        let mut m: ShardedCowMap<Vec<u8>> = ShardedCowMap::new();
        m.insert(1, vec![1]);
        m.insert(1 + BUCKETS as u64, vec![2]);
        let snap = m.clone();
        m.insert(1, vec![9]); // copies bucket 1, which also holds 1+BUCKETS
        let a = m.get_arc(1 + BUCKETS as u64).unwrap();
        let b = snap.get_arc(1 + BUCKETS as u64).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "the copied bucket still shares untouched values");
    }
}
