//! The unified index layer: one abstraction owning *incremental*
//! maintenance of every index kept over stored sequence representations.
//!
//! Stores used to push insertions into each index by hand and had no
//! removal story at all. [`SequenceIndex`] is the maintenance contract —
//! insert a document, remove a document, report how many are indexed — and
//! [`IndexSet`] is the concrete bundle the paper's architecture calls for:
//! the slope-pattern index (§4.4) and the inverted interval file (§5.2,
//! Fig. 10) maintained together, plus the peak-count histogram that only
//! the set (not either member) can keep consistent across removals.

use crate::inverted::InvertedIndex;
use crate::pattern_index::PatternIndex;
use crate::stats::IndexStats;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Weak};

/// Everything the index layer needs to know about one stored sequence
/// representation. Borrowed views — the caller keeps ownership of the
/// entry the fields come from.
#[derive(Debug, Clone, Copy)]
pub struct IndexDoc<'a> {
    /// θ-quantized slope symbol ids (the pattern index's document).
    pub symbols: &'a [u8],
    /// Inter-peak interval buckets in position order (the inverted file's
    /// postings for this sequence).
    pub interval_buckets: &'a [i64],
    /// Number of peaks (drives the peak-count histogram).
    pub peak_count: usize,
}

/// Incremental index maintenance: the one mutation surface every index —
/// and the [`IndexSet`] bundling them — exposes to a store.
///
/// `insert_doc` is an upsert: indexing an id that is already present
/// replaces its old postings atomically (remove + insert), so callers
/// never have to track whether an id is new.
pub trait SequenceIndex {
    /// Inserts (or replaces) the document of a sequence.
    fn insert_doc(&mut self, id: u64, doc: &IndexDoc<'_>);

    /// Removes every trace of a sequence; returns whether it was indexed.
    fn remove_doc(&mut self, id: u64) -> bool;

    /// Number of indexed documents.
    fn doc_count(&self) -> usize;

    /// Whether nothing is indexed.
    fn is_empty(&self) -> bool {
        self.doc_count() == 0
    }
}

impl SequenceIndex for PatternIndex {
    fn insert_doc(&mut self, id: u64, doc: &IndexDoc<'_>) {
        self.insert(id, doc.symbols.to_vec());
    }

    fn remove_doc(&mut self, id: u64) -> bool {
        self.remove(id)
    }

    fn doc_count(&self) -> usize {
        self.len()
    }
}

impl SequenceIndex for InvertedIndex {
    fn insert_doc(&mut self, id: u64, doc: &IndexDoc<'_>) {
        self.insert_sequence(id, doc.interval_buckets);
    }

    fn remove_doc(&mut self, id: u64) -> bool {
        self.remove_sequence(id) > 0
    }

    fn doc_count(&self) -> usize {
        self.sequence_count()
    }
}

/// The store's full index complement, maintained as one unit: pattern
/// index + inverted interval file + peak-count histogram. All mutation
/// goes through [`SequenceIndex::insert_doc`] / [`SequenceIndex::remove_doc`],
/// which keeps every member consistent under arbitrary insert/remove
/// interleavings (property-tested against a from-scratch rebuild oracle
/// in `tests/prop_store_maintenance.rs`).
///
/// Every member lives behind an `Arc`, so cloning an `IndexSet` (how a
/// store snapshot captures the index layer) is four pointer copies, and a
/// mutation deep-copies only the members it touches (`Arc::make_mut`) —
/// snapshots taken earlier keep reading the superseded structures until
/// the last one drops.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    pattern: Arc<PatternIndex>,
    interval: Arc<InvertedIndex>,
    /// peak count → number of indexed documents with that many peaks.
    peak_counts: Arc<BTreeMap<usize, u64>>,
    /// id → its indexed peak count (needed to decrement the histogram on
    /// removal; neither member index remembers it).
    docs: Arc<HashMap<u64, usize>>,
}

impl IndexSet {
    /// An empty index set.
    pub fn new() -> IndexSet {
        IndexSet::default()
    }

    /// The slope-pattern index (§4.4).
    pub fn pattern(&self) -> &PatternIndex {
        &self.pattern
    }

    /// The inverted interval file (Fig. 10).
    pub fn interval(&self) -> &InvertedIndex {
        &self.interval
    }

    /// The live peak-count histogram.
    pub fn peak_count_histogram(&self) -> &BTreeMap<usize, u64> {
        &self.peak_counts
    }

    /// Snapshots every member's statistics for planning.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            pattern: self.pattern.stats(),
            interval: self.interval.stats(),
            peak_counts: (*self.peak_counts).clone(),
        }
    }

    /// A weak handle to this set's member structures, answering whether
    /// they are still reachable from *any* clone. Used by snapshot
    /// lifecycle tests to assert that dropping the last snapshot actually
    /// frees superseded index structures.
    pub fn probe(&self) -> IndexSetProbe {
        IndexSetProbe {
            pattern: Arc::downgrade(&self.pattern),
            interval: Arc::downgrade(&self.interval),
        }
    }
}

/// See [`IndexSet::probe`]. Holding a probe does not keep anything alive.
#[derive(Debug, Clone)]
pub struct IndexSetProbe {
    pattern: Weak<PatternIndex>,
    interval: Weak<InvertedIndex>,
}

impl IndexSetProbe {
    /// Whether the probed structures are still reachable from some
    /// `IndexSet` clone (a mutated clone counts only if the mutation left
    /// that member shared).
    pub fn is_live(&self) -> bool {
        self.pattern.upgrade().is_some() || self.interval.upgrade().is_some()
    }
}

impl SequenceIndex for IndexSet {
    fn insert_doc(&mut self, id: u64, doc: &IndexDoc<'_>) {
        self.remove_doc(id);
        Arc::make_mut(&mut self.pattern).insert_doc(id, doc);
        Arc::make_mut(&mut self.interval).insert_doc(id, doc);
        *Arc::make_mut(&mut self.peak_counts).entry(doc.peak_count).or_insert(0) += 1;
        Arc::make_mut(&mut self.docs).insert(id, doc.peak_count);
    }

    fn remove_doc(&mut self, id: u64) -> bool {
        if !self.docs.contains_key(&id) {
            // Don't unshare any member for a miss.
            return false;
        }
        let peaks = Arc::make_mut(&mut self.docs).remove(&id).expect("presence checked above");
        Arc::make_mut(&mut self.pattern).remove_doc(id);
        Arc::make_mut(&mut self.interval).remove_doc(id);
        let histogram = Arc::make_mut(&mut self.peak_counts);
        if let Some(n) = histogram.get_mut(&peaks) {
            *n -= 1;
            if *n == 0 {
                histogram.remove(&peaks);
            }
        }
        true
    }

    fn doc_count(&self) -> usize {
        self.docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_pattern::{Alphabet, Regex};

    fn ab() -> Alphabet {
        Alphabet::new(&['u', 'd', 'f']).unwrap()
    }

    fn doc<'a>(symbols: &'a [u8], buckets: &'a [i64], peaks: usize) -> IndexDoc<'a> {
        IndexDoc { symbols, interval_buckets: buckets, peak_count: peaks }
    }

    #[test]
    fn insert_populates_every_member() {
        let ab = ab();
        let mut set = IndexSet::new();
        let syms = ab.encode("uudd").unwrap();
        set.insert_doc(1, &doc(&syms, &[], 1));
        let syms2 = ab.encode("uddfud").unwrap();
        set.insert_doc(2, &doc(&syms2, &[8], 2));
        assert_eq!(set.doc_count(), 2);
        assert_eq!(set.pattern().len(), 2);
        assert_eq!(set.interval().sequence_count(), 1, "id 1 has no intervals");
        assert_eq!(set.peak_count_histogram().get(&1), Some(&1));
        assert_eq!(set.peak_count_histogram().get(&2), Some(&1));
        let re = Regex::parse("u+ d+", &ab).unwrap();
        assert_eq!(set.pattern().full_matches(&re), vec![1]);
        assert_eq!(set.interval().matching_sequences(8, 0), vec![2]);
    }

    #[test]
    fn remove_strips_every_member() {
        let ab = ab();
        let mut set = IndexSet::new();
        let syms = ab.encode("ud").unwrap();
        set.insert_doc(5, &doc(&syms, &[10, 12], 3));
        assert!(set.remove_doc(5));
        assert!(set.is_empty());
        assert_eq!(set.pattern().len(), 0);
        assert_eq!(set.interval().posting_count(), 0);
        assert!(set.peak_count_histogram().is_empty());
        assert!(!set.remove_doc(5), "second removal is a no-op");
    }

    #[test]
    fn insert_is_an_upsert() {
        let ab = ab();
        let mut set = IndexSet::new();
        let syms = ab.encode("uudd").unwrap();
        set.insert_doc(1, &doc(&syms, &[9], 2));
        let new_syms = ab.encode("ff").unwrap();
        set.insert_doc(1, &doc(&new_syms, &[], 0));
        assert_eq!(set.doc_count(), 1);
        assert_eq!(set.pattern().symbols_of(1).unwrap(), new_syms.as_slice());
        assert_eq!(set.interval().posting_count(), 0, "old postings dropped");
        assert_eq!(set.peak_count_histogram().get(&2), None);
        assert_eq!(set.peak_count_histogram().get(&0), Some(&1));
    }

    #[test]
    fn clones_share_members_until_mutated() {
        let ab = ab();
        let mut set = IndexSet::new();
        let syms = ab.encode("uudd").unwrap();
        set.insert_doc(1, &doc(&syms, &[8], 2));
        let snap = set.clone();
        assert!(std::sync::Arc::ptr_eq(&set.pattern, &snap.pattern), "clone shares storage");
        let syms2 = ab.encode("ff").unwrap();
        set.insert_doc(2, &doc(&syms2, &[], 0));
        assert!(!std::sync::Arc::ptr_eq(&set.pattern, &snap.pattern), "mutation unshares");
        // The snapshot still sees the pre-mutation state.
        assert_eq!(snap.doc_count(), 1);
        assert_eq!(snap.pattern().len(), 1);
        assert_eq!(snap.peak_count_histogram().get(&0), None);
        assert_eq!(set.doc_count(), 2);
    }

    #[test]
    fn probe_reports_superseded_members_freed() {
        let ab = ab();
        let mut set = IndexSet::new();
        let syms = ab.encode("ud").unwrap();
        set.insert_doc(1, &doc(&syms, &[], 1));
        let snap = set.clone();
        let probe = snap.probe();
        set.insert_doc(2, &doc(&syms, &[], 1)); // unshares every member
        assert!(probe.is_live(), "the snapshot still pins the old structures");
        drop(snap);
        assert!(!probe.is_live(), "dropping the last snapshot frees them");
        assert_eq!(set.doc_count(), 2, "the live set is unaffected");
    }

    #[test]
    fn stats_reflect_live_state() {
        let ab = ab();
        let mut set = IndexSet::new();
        let a = ab.encode("uudd").unwrap();
        let b = ab.encode("fud").unwrap();
        set.insert_doc(1, &doc(&a, &[8, 9], 3));
        set.insert_doc(2, &doc(&b, &[8], 2));
        let stats = set.stats();
        assert_eq!(stats.pattern.docs, 2);
        assert_eq!(stats.pattern.prefixes.get(&0), Some(&1), "one doc starts with u");
        assert_eq!(stats.interval.postings, 3);
        assert_eq!(stats.interval.histogram.get(&8), Some(&2));
        assert_eq!(stats.estimate_peak_count(2, 1), 2);
        set.remove_doc(1);
        let stats = set.stats();
        assert_eq!(stats.pattern.docs, 1);
        assert_eq!(stats.interval.postings, 1);
        assert_eq!(stats.estimate_peak_count(3, 0), 0);
    }
}
