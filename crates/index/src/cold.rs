//! Cold-start index paging: serve [`IndexDoc`]s out of a durable
//! segment instead of recomputing them from raw sequences.
//!
//! A freshly reopened store has its entries on disk but its indexes
//! nowhere: rebuilding them means re-deriving every document (symbol
//! string, interval buckets, peak count) from every stored sequence —
//! exactly the work compaction already did once. The durable layer
//! therefore persists *encoded documents* next to the entries, and this
//! module is the index-side consumer: [`OwnedDoc`] is the owning
//! (de)serializable form of [`IndexDoc`], [`DocPager`] abstracts "who
//! can produce the document for an id" (in production, a B-tree
//! segment reader), and [`SegmentIndexSet`] is a [`SequenceIndex`]
//! that starts with every document cold in the pager and hydrates
//! them into a real [`IndexSet`] on demand — so a query that needs
//! twelve documents pages in twelve, not the archive.
//!
//! A pager is allowed to *refuse* an id (return `None`): documents go
//! stale the moment a sequence is mutated after compaction, and the
//! contract is that refusal only ever costs the caller a recompute,
//! never correctness. [`SegmentIndexSet::hydrate`] reports refused ids
//! back so the caller can index them from source.

use crate::index_set::{IndexDoc, IndexSet, SequenceIndex};
use saq_durable::codec::{self, Cursor};
use saq_durable::Result;
use std::collections::BTreeSet;
use std::sync::Arc;

/// An owning [`IndexDoc`]: the form that crosses the storage boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedDoc {
    /// θ-quantized slope symbol ids.
    pub symbols: Vec<u8>,
    /// Inter-peak interval buckets in position order.
    pub interval_buckets: Vec<i64>,
    /// Number of peaks.
    pub peak_count: usize,
}

impl OwnedDoc {
    /// Captures a borrowed document.
    pub fn from_doc(doc: &IndexDoc<'_>) -> OwnedDoc {
        OwnedDoc {
            symbols: doc.symbols.to_vec(),
            interval_buckets: doc.interval_buckets.to_vec(),
            peak_count: doc.peak_count,
        }
    }

    /// The borrowed view every [`SequenceIndex`] consumes.
    pub fn as_doc(&self) -> IndexDoc<'_> {
        IndexDoc {
            symbols: &self.symbols,
            interval_buckets: &self.interval_buckets,
            peak_count: self.peak_count,
        }
    }

    /// Hand-rolled binary encoding (the vendored serde derives are
    /// no-ops): symbols as a length-prefixed byte string, buckets as a
    /// count plus `i64` two's-complement bit patterns, then the peak
    /// count.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_bytes(&mut out, &self.symbols);
        codec::put_u32(&mut out, self.interval_buckets.len() as u32);
        for &bucket in &self.interval_buckets {
            codec::put_u64(&mut out, bucket as u64);
        }
        codec::put_u64(&mut out, self.peak_count as u64);
        out
    }

    /// Decodes [`OwnedDoc::encode`] output, rejecting trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<OwnedDoc> {
        let mut c = Cursor::new(bytes, "index doc");
        let symbols = c.get_bytes()?.to_vec();
        let count = c.get_u32()? as usize;
        let mut interval_buckets = Vec::with_capacity(count.min(bytes.len()));
        for _ in 0..count {
            interval_buckets.push(c.get_u64()? as i64);
        }
        let peak_count = c.get_u64()? as usize;
        c.finish()?;
        Ok(OwnedDoc { symbols, interval_buckets, peak_count })
    }
}

/// A source of index documents by id — typically a durable segment
/// reader, but anything that can produce (or decline to produce) the
/// exact document for an id qualifies. Refusal (`None`) must be safe:
/// callers fall back to recomputing from the stored sequence.
pub trait DocPager: Send + Sync {
    /// The document for `id`, or `None` if this pager cannot vouch for
    /// it (unknown id, or known stale).
    fn doc(&self, id: u64) -> Option<OwnedDoc>;

    /// Every id this pager can currently serve.
    fn ids(&self) -> Vec<u64>;
}

/// A [`SequenceIndex`] whose documents start cold in a [`DocPager`] and
/// are hydrated into a warm [`IndexSet`] on demand.
///
/// Construction is O(ids): nothing is decoded until
/// [`SegmentIndexSet::hydrate`] pulls specific ids in. Mutations behave
/// like any index — [`SequenceIndex::insert_doc`] supersedes a cold
/// document, [`SequenceIndex::remove_doc`] drops one — so the wrapper
/// can stand wherever an [`IndexSet`] does, with
/// [`SequenceIndex::doc_count`] spanning both temperatures.
pub struct SegmentIndexSet {
    pager: Arc<dyn DocPager>,
    warm: IndexSet,
    cold: BTreeSet<u64>,
}

impl SegmentIndexSet {
    /// A set whose every document starts cold in `pager`.
    pub fn new(pager: Arc<dyn DocPager>) -> SegmentIndexSet {
        let cold = pager.ids().into_iter().collect();
        SegmentIndexSet { pager, warm: IndexSet::new(), cold }
    }

    /// The warm, queryable index over everything hydrated so far.
    pub fn warm(&self) -> &IndexSet {
        &self.warm
    }

    /// Documents still cold (pageable but not yet hydrated).
    pub fn cold_count(&self) -> usize {
        self.cold.len()
    }

    /// Pages the documents for `ids` into the warm set. Returns the ids
    /// that could **not** be served — unknown to the pager, or refused
    /// as stale — which the caller must index from source (via
    /// [`SequenceIndex::insert_doc`]) to keep `doc_count` honest.
    pub fn hydrate(&mut self, ids: impl IntoIterator<Item = u64>) -> Vec<u64> {
        let mut unserved = Vec::new();
        for id in ids {
            if !self.cold.remove(&id) {
                if !self.warm_has(id) {
                    unserved.push(id);
                }
                continue;
            }
            match self.pager.doc(id) {
                Some(doc) => self.warm.insert_doc(id, &doc.as_doc()),
                None => unserved.push(id),
            }
        }
        unserved
    }

    /// Hydrates every cold document; returns the refused ids.
    pub fn hydrate_all(&mut self) -> Vec<u64> {
        let all: Vec<u64> = self.cold.iter().copied().collect();
        self.hydrate(all)
    }

    fn warm_has(&self, id: u64) -> bool {
        // The peak histogram's doc map is private; the pattern index
        // answers membership for anything inserted through IndexSet.
        self.warm.pattern().symbols_of(id).is_some()
    }
}

impl SequenceIndex for SegmentIndexSet {
    fn insert_doc(&mut self, id: u64, doc: &IndexDoc<'_>) {
        self.cold.remove(&id);
        self.warm.insert_doc(id, doc);
    }

    fn remove_doc(&mut self, id: u64) -> bool {
        let was_cold = self.cold.remove(&id);
        self.warm.remove_doc(id) || was_cold
    }

    fn doc_count(&self) -> usize {
        self.warm.doc_count() + self.cold.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn doc(tag: u8, buckets: &[i64], peaks: usize) -> OwnedDoc {
        OwnedDoc { symbols: vec![tag, tag], interval_buckets: buckets.to_vec(), peak_count: peaks }
    }

    /// A pager over a fixed map that refuses a configurable id set.
    struct MapPager {
        docs: HashMap<u64, OwnedDoc>,
        refuse: BTreeSet<u64>,
    }

    impl DocPager for MapPager {
        fn doc(&self, id: u64) -> Option<OwnedDoc> {
            if self.refuse.contains(&id) {
                return None;
            }
            self.docs.get(&id).cloned()
        }

        fn ids(&self) -> Vec<u64> {
            self.docs.keys().copied().collect()
        }
    }

    fn pager(n: u64, refuse: &[u64]) -> Arc<MapPager> {
        let docs =
            (0..n).map(|id| (id, doc(id as u8 % 3, &[id as i64 + 4], id as usize % 4))).collect();
        Arc::new(MapPager { docs, refuse: refuse.iter().copied().collect() })
    }

    #[test]
    fn encode_decode_round_trips() {
        for d in [
            doc(1, &[4, -9, i64::MAX], 3),
            doc(0, &[], 0),
            OwnedDoc { symbols: vec![], interval_buckets: vec![i64::MIN], peak_count: 7 },
        ] {
            assert_eq!(OwnedDoc::decode(&d.encode()).unwrap(), d);
        }
        let mut bytes = doc(1, &[5], 1).encode();
        bytes.push(0);
        assert!(OwnedDoc::decode(&bytes).is_err(), "trailing bytes rejected");
        assert!(OwnedDoc::decode(&bytes[..3]).is_err(), "truncation rejected");
    }

    #[test]
    fn hydration_is_lazy_and_partial() {
        let mut set = SegmentIndexSet::new(pager(10, &[]));
        assert_eq!(set.doc_count(), 10);
        assert_eq!(set.cold_count(), 10);
        assert_eq!(set.warm().doc_count(), 0);
        let unserved = set.hydrate([3, 4]);
        assert!(unserved.is_empty());
        assert_eq!(set.warm().doc_count(), 2);
        assert_eq!(set.cold_count(), 8);
        assert_eq!(set.doc_count(), 10, "temperature never changes the count");
        assert_eq!(set.warm().interval().matching_sequences(7, 0), vec![3]);
        // Re-hydrating a warm id is a no-op, not a refusal.
        assert!(set.hydrate([3]).is_empty());
    }

    #[test]
    fn refused_and_unknown_ids_are_reported_back() {
        let mut set = SegmentIndexSet::new(pager(6, &[2, 5]));
        let mut unserved = set.hydrate([0, 2, 5, 77]);
        unserved.sort_unstable();
        assert_eq!(unserved, vec![2, 5, 77]);
        // The caller indexes the refused ids from source; counts mend.
        let d = doc(1, &[100], 2);
        set.insert_doc(2, &d.as_doc());
        set.insert_doc(5, &d.as_doc());
        assert_eq!(set.doc_count(), 6);
        assert_eq!(set.warm().doc_count(), 3);
    }

    #[test]
    fn hydrate_all_matches_an_eager_build() {
        let p = pager(20, &[]);
        let mut lazy = SegmentIndexSet::new(Arc::clone(&p) as Arc<dyn DocPager>);
        assert!(lazy.hydrate_all().is_empty());
        let mut eager = IndexSet::new();
        for id in p.ids() {
            eager.insert_doc(id, &p.doc(id).unwrap().as_doc());
        }
        assert_eq!(lazy.warm().stats().pattern.docs, eager.stats().pattern.docs);
        assert_eq!(lazy.warm().stats().interval.postings, eager.stats().interval.postings);
        assert_eq!(lazy.warm().peak_count_histogram(), eager.peak_count_histogram());
    }

    #[test]
    fn mutations_supersede_cold_documents() {
        let mut set = SegmentIndexSet::new(pager(4, &[]));
        // Upsert over a cold id: the stored doc must never resurface.
        let fresh = doc(2, &[40], 3);
        set.insert_doc(1, &fresh.as_doc());
        assert_eq!(set.doc_count(), 4);
        assert!(set.hydrate([1]).is_empty(), "warm id needs no paging");
        assert_eq!(set.warm().interval().matching_sequences(40, 0), vec![1]);
        assert!(set.warm().interval().matching_sequences(5, 0).is_empty());
        // Removal spans temperatures.
        assert!(set.remove_doc(0), "cold removal");
        assert!(set.remove_doc(1), "warm removal");
        assert!(!set.remove_doc(99));
        assert_eq!(set.doc_count(), 2);
    }
}
