//! Per-index statistics for selectivity estimation.
//!
//! Each index structure can snapshot the distribution of what it stores —
//! posting-list sizes, per-symbol document/prefix counts, interval
//! histograms — into a cheap, detachable [`IndexStats`] value. A query
//! planner consumes the snapshot to estimate how many sequences a leaf
//! predicate will match *before* choosing an evaluation order, without
//! holding a borrow on the live indexes.
//!
//! Estimates are upper bounds on the true cardinality wherever the
//! underlying filter is sound (required-symbol containment, first-symbol
//! prefixes, posting counts per bucket); they are estimates, not answers —
//! executing the plan still produces exact results.

use saq_pattern::Ast;
use std::collections::BTreeMap;

/// Statistics of a [`crate::PatternIndex`]: document counts per symbol.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternStats {
    /// Number of indexed documents (symbol strings).
    pub docs: u64,
    /// Documents with an empty symbol string.
    pub empty_docs: u64,
    /// Per symbol: number of documents containing it at least once.
    pub containing: BTreeMap<u8, u64>,
    /// Per symbol: number of documents whose string *starts* with it.
    pub prefixes: BTreeMap<u8, u64>,
}

impl PatternStats {
    /// Estimated number of documents whose whole string matches the
    /// pattern: the tightest of the containment bounds (every match must
    /// contain every required symbol) and the prefix bound (every
    /// non-empty match must start with one of the language's possible
    /// first symbols).
    pub fn estimate_full_matches(&self, ast: &Ast) -> u64 {
        let mut est = self.docs;
        for sym in required_symbols(ast) {
            est = est.min(self.containing.get(&sym).copied().unwrap_or(0));
        }
        let (firsts, nullable) = first_symbols(ast);
        let prefix_bound: u64 =
            firsts.iter().map(|s| self.prefixes.get(s).copied().unwrap_or(0)).sum::<u64>()
                + if nullable { self.empty_docs } else { 0 };
        est.min(prefix_bound)
    }
}

/// Statistics of a [`crate::InvertedIndex`]: the interval histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalStats {
    /// Number of distinct sequences with at least one posting.
    pub sequences: u64,
    /// Number of distinct bucket keys.
    pub buckets: u64,
    /// Total postings across all buckets.
    pub postings: u64,
    /// Posting-list size per bucket key — the interval histogram.
    pub histogram: BTreeMap<i64, u64>,
}

impl IntervalStats {
    /// Total postings with bucket key in `[key - tolerance, key + tolerance]`.
    pub fn postings_in(&self, key: i64, tolerance: i64) -> u64 {
        if tolerance < 0 {
            return 0;
        }
        let lo = key.saturating_sub(tolerance);
        let hi = key.saturating_add(tolerance);
        self.histogram.range(lo..=hi).map(|(_, n)| n).sum()
    }

    /// Estimated number of distinct sequences with a posting in
    /// `[key ± tolerance]`: the in-range posting count, capped by the
    /// number of indexed sequences (a sound upper bound — each matching
    /// sequence contributes at least one in-range posting).
    pub fn estimate_matches(&self, key: i64, tolerance: i64) -> u64 {
        self.postings_in(key, tolerance).min(self.sequences)
    }
}

/// The combined statistics snapshot of an [`crate::IndexSet`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Slope-pattern index statistics.
    pub pattern: PatternStats,
    /// Inverted interval-file statistics.
    pub interval: IntervalStats,
    /// Histogram of per-document peak counts (maintained by the
    /// [`crate::IndexSet`], not by either member index).
    pub peak_counts: BTreeMap<usize, u64>,
}

impl IndexStats {
    /// Estimated number of documents with `count ± tolerance` peaks.
    pub fn estimate_peak_count(&self, count: usize, tolerance: usize) -> u64 {
        let lo = count.saturating_sub(tolerance);
        let hi = count.saturating_add(tolerance);
        self.peak_counts.range(lo..=hi).map(|(_, n)| n).sum()
    }
}

/// Symbols that *every* string in the pattern's language must contain — a
/// sound containment filter (shared with the pattern index's candidate
/// pruning).
pub(crate) fn required_symbols(ast: &Ast) -> Vec<u8> {
    fn go(ast: &Ast) -> Vec<u8> {
        match ast {
            Ast::Epsilon => Vec::new(),
            Ast::Symbol(s) => vec![*s],
            Ast::Concat(a, b) => {
                let mut out = go(a);
                for s in go(b) {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
                out
            }
            Ast::Alt(a, b) => {
                // Only symbols required by *both* branches are required.
                let left = go(a);
                let right = go(b);
                left.into_iter().filter(|s| right.contains(s)).collect()
            }
            // Zero repetitions allowed: nothing is required.
            Ast::Star(_) | Ast::Optional(_) => Vec::new(),
            Ast::Plus(a) => go(a),
        }
    }
    let mut out = go(ast);
    out.sort_unstable();
    out.dedup();
    out
}

/// The possible first symbols of the pattern's language, plus whether the
/// language accepts the empty string (standard FIRST/nullable computation).
fn first_symbols(ast: &Ast) -> (Vec<u8>, bool) {
    fn merge(into: &mut Vec<u8>, from: Vec<u8>) {
        for s in from {
            if !into.contains(&s) {
                into.push(s);
            }
        }
    }
    fn go(ast: &Ast) -> (Vec<u8>, bool) {
        match ast {
            Ast::Epsilon => (Vec::new(), true),
            Ast::Symbol(s) => (vec![*s], false),
            Ast::Concat(a, b) => {
                let (mut fa, na) = go(a);
                let (fb, nb) = go(b);
                if na {
                    merge(&mut fa, fb);
                }
                (fa, na && nb)
            }
            Ast::Alt(a, b) => {
                let (mut fa, na) = go(a);
                let (fb, nb) = go(b);
                merge(&mut fa, fb);
                (fa, na || nb)
            }
            Ast::Star(a) | Ast::Optional(a) => (go(a).0, true),
            Ast::Plus(a) => go(a),
        }
    }
    let (mut firsts, nullable) = go(ast);
    firsts.sort_unstable();
    (firsts, nullable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_pattern::{Alphabet, Regex};

    fn ast(pattern: &str) -> Ast {
        let ab = Alphabet::new(&['u', 'd', 'f']).unwrap();
        Regex::parse(pattern, &ab).unwrap().ast().clone()
    }

    #[test]
    fn first_symbols_and_nullability() {
        let (firsts, nullable) = first_symbols(&ast("u+ d+"));
        assert_eq!(firsts, vec![0]);
        assert!(!nullable);
        let (firsts, nullable) = first_symbols(&ast("f* u d"));
        assert_eq!(firsts, vec![0, 2], "f* may be empty, so u is also a first");
        assert!(!nullable);
        let (_, nullable) = first_symbols(&ast("u*"));
        assert!(nullable);
    }

    #[test]
    fn pattern_estimates_bound_by_containment_and_prefix() {
        let stats = PatternStats {
            docs: 10,
            empty_docs: 0,
            containing: [(0u8, 6u64), (1, 4), (2, 9)].into_iter().collect(),
            prefixes: [(0u8, 2u64), (1, 3), (2, 5)].into_iter().collect(),
        };
        // `u+ d+`: containment bound min(6, 4) = 4, prefix bound (starts
        // with u) = 2 — the prefix bound is tighter.
        assert_eq!(stats.estimate_full_matches(&ast("u+ d+")), 2);
        // `f* u+ d+`: first symbols {f, u} → 5 + 2 = 7; containment 4 wins.
        assert_eq!(stats.estimate_full_matches(&ast("f* u+ d+")), 4);
        // A symbol nothing contains.
        let mut no_d = stats.clone();
        no_d.containing.remove(&1);
        assert_eq!(no_d.estimate_full_matches(&ast("d")), 0);
    }

    #[test]
    fn interval_estimates_cap_at_sequence_count() {
        let stats = IntervalStats {
            sequences: 3,
            buckets: 3,
            postings: 12,
            histogram: [(8i64, 5u64), (9, 4), (20, 3)].into_iter().collect(),
        };
        assert_eq!(stats.postings_in(8, 1), 9);
        assert_eq!(stats.estimate_matches(8, 1), 3, "capped by distinct sequences");
        assert_eq!(stats.estimate_matches(20, 0), 3);
        assert_eq!(stats.estimate_matches(40, 2), 0);
        assert_eq!(stats.postings_in(8, -1), 0, "negative tolerance is empty");
    }

    #[test]
    fn peak_count_histogram_sums_range() {
        let stats = IndexStats {
            peak_counts: [(1usize, 7u64), (2, 2), (3, 1)].into_iter().collect(),
            ..IndexStats::default()
        };
        assert_eq!(stats.estimate_peak_count(2, 0), 2);
        assert_eq!(stats.estimate_peak_count(2, 1), 10);
        assert_eq!(stats.estimate_peak_count(0, 0), 0);
        assert_eq!(stats.estimate_peak_count(0, 5), 10);
    }
}
