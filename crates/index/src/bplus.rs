//! A B+tree with arena-allocated nodes and linked leaves.
//!
//! Fig. 10 of the paper shows "a B-Tree structure which points to the
//! postings file"; this is that structure. Keys live in the leaves, internal
//! nodes hold separators, and leaves are singly linked for range scans
//! (`range` powers the R–R interval query `n ± ε`).

/// Maximum keys a node may hold before splitting; the tree's order.
const DEFAULT_ORDER: usize = 8;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// Separator keys; `children[i]` holds keys `< keys[i]`,
        /// `children[i+1]` holds keys `>= keys[i]`.
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: Option<usize>,
    },
}

/// An order-configurable B+tree.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    len: usize,
    order: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        BPlusTree::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// An empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree whose nodes split beyond `order` keys (`order >= 3`).
    ///
    /// # Panics
    /// Panics if `order < 3` (caller bug).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+tree order must be at least 3");
        let nodes = vec![Node::Leaf { keys: Vec::new(), values: Vec::new(), next: None }];
        BPlusTree { nodes, root: 0, len: 0, order }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => {
                    node = children[0];
                    h += 1;
                }
                Node::Leaf { .. } => return h,
            }
        }
    }

    /// Inserts `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.insert_rec(self.root, key, value) {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Inserted => {
                self.len += 1;
                None
            }
            InsertOutcome::Split { sep, right } => {
                self.len += 1;
                let new_root = Node::Internal { keys: vec![sep], children: vec![self.root, right] };
                self.nodes.push(new_root);
                self.root = self.nodes.len() - 1;
                None
            }
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let leaf = self.find_leaf(key);
        if let Node::Leaf { keys, values, .. } = &self.nodes[leaf] {
            keys.binary_search(key).ok().map(|i| &values[i])
        } else {
            unreachable!("find_leaf returns a leaf")
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        if let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf] {
            keys.binary_search(key).ok().map(|i| &mut values[i])
        } else {
            unreachable!("find_leaf returns a leaf")
        }
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// All entries with `lo <= key <= hi`, in key order — a linked-leaf walk.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut leaf = Some(self.find_leaf(lo));
        while let Some(id) = leaf {
            if let Node::Leaf { keys, values, next } = &self.nodes[id] {
                for (k, v) in keys.iter().zip(values) {
                    if k > hi {
                        return out;
                    }
                    if k >= lo {
                        out.push((k, v));
                    }
                }
                leaf = *next;
            } else {
                unreachable!("leaf chain contains only leaves")
            }
        }
        out
    }

    /// All entries in key order.
    pub fn iter(&self) -> Vec<(&K, &V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut node = self.root;
        // Descend to the leftmost leaf.
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
        }
        let mut leaf = Some(node);
        while let Some(id) = leaf {
            if let Node::Leaf { keys, values, next } = &self.nodes[id] {
                out.extend(keys.iter().zip(values.iter()));
                leaf = *next;
            }
        }
        out
    }

    fn find_leaf(&self, key: &K) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx];
                }
                Node::Leaf { .. } => return node,
            }
        }
    }

    fn insert_rec(&mut self, node: usize, key: K, value: V) -> InsertOutcome<K, V> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, values, .. } => match keys.binary_search(&key) {
                Ok(i) => InsertOutcome::Replaced(std::mem::replace(&mut values[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() > self.order {
                        self.split_leaf(node)
                    } else {
                        InsertOutcome::Inserted
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= &key);
                let child = children[idx];
                match self.insert_rec(child, key, value) {
                    InsertOutcome::Split { sep, right } => {
                        if let Node::Internal { keys, children } = &mut self.nodes[node] {
                            let pos = keys.partition_point(|k| k <= &sep);
                            keys.insert(pos, sep);
                            children.insert(pos + 1, right);
                            if keys.len() > self.order {
                                self.split_internal(node)
                            } else {
                                InsertOutcome::Inserted
                            }
                        } else {
                            unreachable!("node type cannot change mid-insert")
                        }
                    }
                    other => other,
                }
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> InsertOutcome<K, V> {
        let new_id = self.nodes.len();
        if let Node::Leaf { keys, values, next } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let right_keys: Vec<K> = keys.split_off(mid);
            let right_values: Vec<V> = values.split_off(mid);
            let sep = right_keys[0].clone();
            let right = Node::Leaf { keys: right_keys, values: right_values, next: *next };
            *next = Some(new_id);
            self.nodes.push(right);
            InsertOutcome::Split { sep, right: new_id }
        } else {
            unreachable!("split_leaf on a leaf")
        }
    }

    fn split_internal(&mut self, node: usize) -> InsertOutcome<K, V> {
        let new_id = self.nodes.len();
        if let Node::Internal { keys, children } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            // The middle key moves up; right node takes keys after it.
            let sep = keys[mid].clone();
            let right_keys: Vec<K> = keys.split_off(mid + 1);
            keys.pop(); // remove the promoted separator
            let right_children: Vec<usize> = children.split_off(mid + 1);
            let right = Node::Internal { keys: right_keys, children: right_children };
            self.nodes.push(right);
            InsertOutcome::Split { sep, right: new_id }
        } else {
            unreachable!("split_internal on an internal node")
        }
    }

    /// Removes a key, returning its value if present.
    ///
    /// Deletion is *lazy* (as in most LSM/posting-file systems): the entry
    /// leaves its leaf immediately, but nodes are not rebalanced or merged.
    /// Search and range scans remain correct; space is reclaimed only by
    /// rebuilding. This matches the paper's workload, where representations
    /// are append-mostly and queries read-heavy.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let leaf = self.find_leaf(key);
        if let Node::Leaf { keys, values, .. } = &mut self.nodes[leaf] {
            match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    let v = values.remove(i);
                    self.len -= 1;
                    Some(v)
                }
                Err(_) => None,
            }
        } else {
            unreachable!("find_leaf returns a leaf")
        }
    }

    /// Validates structural invariants (test/debug helper): key ordering
    /// within nodes, separator correctness, and leaf-chain ordering.
    pub fn check_invariants(&self) -> bool {
        // Leaf chain must be globally sorted.
        let entries = self.iter();
        entries.windows(2).all(|w| w[0].0 < w[1].0) && entries.len() == self.len
    }
}

enum InsertOutcome<K, V> {
    Inserted,
    Replaced(V),
    Split { sep: K, right: usize },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, &str> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.height(), 1);
        assert!(t.range(&0, &10).is_empty());
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.insert(5, "FIVE"), Some("five"));
        assert_eq!(t.get(&5), Some(&"FIVE"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn grows_beyond_one_leaf() {
        let mut t = BPlusTree::with_order(3);
        for k in 0..50 {
            t.insert(k, k * 10);
        }
        assert_eq!(t.len(), 50);
        assert!(t.height() > 1);
        for k in 0..50 {
            assert_eq!(t.get(&k), Some(&(k * 10)), "key {k}");
        }
        assert!(t.check_invariants());
    }

    #[test]
    fn reverse_and_shuffled_insertion() {
        let mut t = BPlusTree::with_order(4);
        // Deterministic shuffle: multiply by coprime modulo 101.
        for i in 0..101u64 {
            let k = (i * 37) % 101;
            t.insert(k, k);
        }
        assert_eq!(t.len(), 101);
        assert!(t.check_invariants());
        let all = t.iter();
        assert_eq!(all.len(), 101);
        assert_eq!(*all[0].0, 0);
        assert_eq!(*all[100].0, 100);
    }

    #[test]
    fn range_inclusive_semantics() {
        let mut t = BPlusTree::with_order(3);
        for k in (0..40).step_by(2) {
            t.insert(k, ());
        }
        let r = t.range(&10, &20);
        let keys: Vec<i32> = r.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        // Bounds not present in the tree.
        let r2 = t.range(&11, &15);
        let keys2: Vec<i32> = r2.iter().map(|(k, _)| **k).collect();
        assert_eq!(keys2, vec![12, 14]);
        // Inverted range is empty.
        assert!(t.range(&20, &10).is_empty());
    }

    #[test]
    fn range_spanning_many_leaves() {
        let mut t = BPlusTree::with_order(3);
        for k in 0..200 {
            t.insert(k, k);
        }
        let r = t.range(&50, &150);
        assert_eq!(r.len(), 101);
        assert_eq!(*r[0].0, 50);
        assert_eq!(*r[100].0, 150);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        t.insert(1, vec![1]);
        t.get_mut(&1).unwrap().push(2);
        assert_eq!(t.get(&1), Some(&vec![1, 2]));
        assert!(t.get_mut(&99).is_none());
    }

    #[test]
    fn contains_key() {
        let mut t = BPlusTree::new();
        t.insert("a", 1);
        assert!(t.contains_key(&"a"));
        assert!(!t.contains_key(&"b"));
    }

    #[test]
    fn iter_is_sorted_after_heavy_churn() {
        let mut t = BPlusTree::with_order(5);
        for i in 0..1000u64 {
            let k = (i * 7919) % 1000;
            t.insert(k, i);
        }
        assert_eq!(t.len(), 1000);
        let keys: Vec<u64> = t.iter().into_iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "order")]
    fn tiny_order_rejected() {
        let _ = BPlusTree::<i32, ()>::with_order(2);
    }

    #[test]
    fn remove_basics() {
        let mut t = BPlusTree::with_order(3);
        for k in 0..30 {
            t.insert(k, k * 10);
        }
        assert_eq!(t.remove(&7), Some(70));
        assert_eq!(t.remove(&7), None);
        assert_eq!(t.remove(&99), None);
        assert_eq!(t.len(), 29);
        assert_eq!(t.get(&7), None);
        assert_eq!(t.get(&8), Some(&80));
        assert!(t.check_invariants());
    }

    #[test]
    fn remove_then_range_skips_deleted() {
        let mut t = BPlusTree::with_order(3);
        for k in 0..20 {
            t.insert(k, ());
        }
        for k in (0..20).step_by(2) {
            assert!(t.remove(&k).is_some());
        }
        let keys: Vec<i32> = t.range(&0, &19).iter().map(|(k, _)| **k).collect();
        assert_eq!(keys, (1..20).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn reinsert_after_remove() {
        let mut t = BPlusTree::with_order(4);
        for k in 0..50u64 {
            t.insert(k, k);
        }
        for k in 10..40u64 {
            t.remove(&k);
        }
        for k in 10..40u64 {
            assert_eq!(t.insert(k, k + 1000), None);
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.get(&25), Some(&1025));
        assert!(t.check_invariants());
    }

    #[test]
    fn drain_everything() {
        let mut t = BPlusTree::with_order(3);
        for k in 0..40 {
            t.insert(k, k);
        }
        for k in 0..40 {
            assert_eq!(t.remove(&k), Some(k));
        }
        assert!(t.is_empty());
        assert!(t.iter().is_empty());
        assert!(t.range(&0, &100).is_empty());
        // The tree is usable after being drained.
        t.insert(5, 5);
        assert_eq!(t.get(&5), Some(&5));
    }

    #[test]
    fn string_keys_work() {
        let mut t = BPlusTree::with_order(3);
        for w in ["pear", "apple", "fig", "date", "cherry", "banana", "kiwi"] {
            t.insert(w.to_string(), w.len());
        }
        assert_eq!(t.get(&"fig".to_string()), Some(&3));
        let r = t.range(&"b".to_string(), &"d".to_string());
        let keys: Vec<&str> = r.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["banana", "cherry"]);
    }
}
