//! # saq-index
//!
//! Index structures over function-series representations:
//!
//! * [`BPlusTree`] — an order-configurable B+tree with linked leaves, built
//!   from scratch (the "B-Tree structure" of Fig. 10),
//! * [`InvertedIndex`] — the inverted-file organization of §5.2/Fig. 10:
//!   a B+tree over bucket keys pointing into posting lists of
//!   `(sequence id, position)` pairs,
//! * [`PatternIndex`] — the slope-sign pattern index of §4.4, answering
//!   "positions of the first point of all stored sequences matching a
//!   pattern" with a DFA scan over stored symbol strings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bplus;
pub mod inverted;
pub mod pattern_index;

pub use bplus::BPlusTree;
pub use inverted::{InvertedIndex, Posting};
pub use pattern_index::{PatternHit, PatternIndex};
