//! # saq-index
//!
//! Index structures over function-series representations:
//!
//! * [`BPlusTree`] — an order-configurable B+tree with linked leaves, built
//!   from scratch (the "B-Tree structure" of Fig. 10),
//! * [`InvertedIndex`] — the inverted-file organization of §5.2/Fig. 10:
//!   a B+tree over bucket keys pointing into posting lists of
//!   `(sequence id, position)` pairs,
//! * [`PatternIndex`] — the slope-sign pattern index of §4.4, answering
//!   "positions of the first point of all stored sequences matching a
//!   pattern" with a DFA scan over stored symbol strings,
//! * [`IndexSet`] — the unified maintenance layer: every index a store
//!   keeps, mutated together through the [`SequenceIndex`] trait
//!   (incremental insert *and* remove), with per-index statistics
//!   ([`IndexStats`]) snapshotted for selectivity-driven planning,
//! * [`SegmentIndexSet`] — the cold-start form: documents page in from a
//!   durable segment ([`DocPager`]) on demand instead of being recomputed
//!   from raw sequences at open.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bplus;
pub mod cold;
pub mod cow;
pub mod index_set;
pub mod inverted;
pub mod pattern_index;
pub mod stats;

pub use bplus::BPlusTree;
pub use cold::{DocPager, OwnedDoc, SegmentIndexSet};
pub use cow::ShardedCowMap;
pub use index_set::{IndexDoc, IndexSet, IndexSetProbe, SequenceIndex};
pub use inverted::{InvertedIndex, Posting};
pub use pattern_index::{PatternHit, PatternIndex};
pub use stats::{IndexStats, IntervalStats, PatternStats};
