//! The unified request/response surface shared by every engine and the
//! `saqd` server.
//!
//! Historically each entry point grew its own shape — `execute` for
//! expressions, `evaluate` for classic specs, `execute_saql` for text,
//! `run`/`run_snapshot` for engine batches — and a networked server would
//! have needed one wire message per method. [`QueryRequest`] collapses
//! them: one value names the query (SAQL text or a built [`QueryExpr`]),
//! an optional snapshot pin, and which extras (stats, explain) the caller
//! wants back; one [`QueryResponse`] carries everything an engine can
//! say about a run. `QueryEngine::request` is the single entry point —
//! the old methods survive as thin deprecated shims over it.

use crate::algebra::{ExecStats, QueryExpr};
use crate::error::{Error, Result};
use crate::query::QueryOutcome;
use std::borrow::Cow;
use std::fmt;
use std::str::FromStr;

/// A `(instance, generation)` pair naming one immutable snapshot of a
/// store or archive. Requests may *pin* to a ref; an engine positioned at
/// a different snapshot refuses with [`Error::SnapshotMismatch`] rather
/// than silently answering from other data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotRef {
    /// The store instance the snapshot belongs to.
    pub instance: u64,
    /// The mutation generation within that instance.
    pub generation: u64,
}

impl SnapshotRef {
    /// A ref naming `instance` at `generation`.
    pub fn new(instance: u64, generation: u64) -> SnapshotRef {
        SnapshotRef { instance, generation }
    }
}

/// Prints `instance.generation` — the wire protocol's `snapshot:`/`pin:`
/// header value; [`FromStr`] parses it back.
impl fmt::Display for SnapshotRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.instance, self.generation)
    }
}

impl FromStr for SnapshotRef {
    type Err = Error;

    fn from_str(s: &str) -> Result<SnapshotRef> {
        let (instance, generation) = s
            .split_once('.')
            .ok_or_else(|| Error::Protocol(format!("malformed snapshot ref `{s}`")))?;
        let parse = |part: &str| {
            part.parse::<u64>()
                .map_err(|_| Error::Protocol(format!("malformed snapshot ref `{s}`")))
        };
        Ok(SnapshotRef::new(parse(instance)?, parse(generation)?))
    }
}

/// What a request asks: SAQL text (parsed by the engine, so parse errors
/// flow through the same [`Result`] as execution errors) or an
/// already-built expression.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A SAQL query (see `docs/SAQL.md`).
    Saql(String),
    /// A built algebra expression.
    Expr(QueryExpr),
}

/// One query, addressed to any [`crate::algebra::QueryEngine`]: the query
/// body, an optional snapshot pin, and which extras to compute.
///
/// ```
/// use saq_core::request::QueryRequest;
/// use saq_core::algebra::{QueryEngine as _, StoreEngine};
/// use saq_core::store::SequenceStore;
/// use saq_sequence::generators::{goalpost, GoalpostSpec};
///
/// let mut store = SequenceStore::default();
/// let id = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
/// let req = QueryRequest::saql("peaks = 2 and interval = 10 tol 3").with_explain();
/// let resp = StoreEngine::new(&store).request(&req).unwrap();
/// assert_eq!(resp.outcome.exact, vec![id]);
/// assert!(resp.explain.unwrap().contains("And"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query itself.
    pub query: QueryBody,
    /// Refuse to run unless the engine serves exactly this snapshot.
    pub pin: Option<SnapshotRef>,
    /// Return execution counters in [`QueryResponse::stats`].
    pub want_stats: bool,
    /// Return the physical plan rendering in [`QueryResponse::explain`].
    pub want_explain: bool,
}

impl QueryRequest {
    /// A request carrying SAQL text.
    pub fn saql(text: impl Into<String>) -> QueryRequest {
        QueryRequest {
            query: QueryBody::Saql(text.into()),
            pin: None,
            want_stats: false,
            want_explain: false,
        }
    }

    /// A request carrying a built expression.
    pub fn expr(expr: QueryExpr) -> QueryRequest {
        QueryRequest {
            query: QueryBody::Expr(expr),
            pin: None,
            want_stats: false,
            want_explain: false,
        }
    }

    /// Pins the request to one snapshot.
    pub fn pinned(mut self, snapshot: SnapshotRef) -> QueryRequest {
        self.pin = Some(snapshot);
        self
    }

    /// Asks for execution counters.
    pub fn with_stats(mut self) -> QueryRequest {
        self.want_stats = true;
        self
    }

    /// Asks for the plan explanation.
    pub fn with_explain(mut self) -> QueryRequest {
        self.want_explain = true;
        self
    }

    /// The request's expression: parses SAQL bodies (borrowing built
    /// ones), surfacing parse failures as [`Error::Saql`] with the caret
    /// diagnostic intact.
    pub fn resolve(&self) -> Result<Cow<'_, QueryExpr>> {
        match &self.query {
            QueryBody::Saql(text) => Ok(Cow::Owned(crate::lang::saql::parse(text)?)),
            QueryBody::Expr(expr) => Ok(Cow::Borrowed(expr)),
        }
    }

    /// Checks this request's pin against the snapshot an engine is
    /// actually serving: `Ok` when unpinned or exactly matched,
    /// [`Error::SnapshotMismatch`] on a different generation, and
    /// [`Error::BadConfig`] when the engine cannot name its snapshot at
    /// all (`current == None`).
    pub fn verify_pin(&self, current: Option<SnapshotRef>) -> Result<()> {
        let Some(requested) = self.pin else { return Ok(()) };
        match current {
            Some(current) if current == requested => Ok(()),
            Some(current) => Err(Error::SnapshotMismatch { requested, current }),
            None => Err(Error::BadConfig(
                "this engine does not expose snapshot identities; remove the pin".into(),
            )),
        }
    }
}

/// Everything an engine can say about one executed request. Fields the
/// request didn't ask for stay `None` — over the wire they cost nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Exact and approximate matches.
    pub outcome: QueryOutcome,
    /// Execution counters, when [`QueryRequest::want_stats`] was set.
    pub stats: Option<ExecStats>,
    /// The physical plan rendering, when [`QueryRequest::want_explain`]
    /// was set.
    pub explain: Option<String>,
    /// The snapshot the run was pinned to, when the engine exposes one.
    pub snapshot: Option<SnapshotRef>,
}

impl QueryResponse {
    /// All matching ids — exact then approximate, the flattened view most
    /// callers want.
    pub fn ids(&self) -> Vec<u64> {
        self.outcome.all_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_ref_round_trips_through_display() {
        let r = SnapshotRef::new(42, 7);
        assert_eq!(r.to_string(), "42.7");
        assert_eq!(r.to_string().parse::<SnapshotRef>().unwrap(), r);
        assert!("42".parse::<SnapshotRef>().is_err());
        assert!("a.b".parse::<SnapshotRef>().is_err());
        assert!("1.2.3".parse::<SnapshotRef>().is_err());
    }

    #[test]
    fn resolve_parses_saql_and_borrows_exprs() {
        let req = QueryRequest::saql("peaks = 2");
        assert_eq!(*req.resolve().unwrap(), QueryExpr::peak_count(2, 0));
        let expr = QueryExpr::peak_count(3, 1);
        let req = QueryRequest::expr(expr.clone());
        assert!(matches!(req.resolve().unwrap(), Cow::Borrowed(e) if *e == expr));
        let bad = QueryRequest::saql("peaks 2");
        assert_eq!(bad.resolve().unwrap_err().code(), 7);
    }

    #[test]
    fn verify_pin_semantics() {
        let unpinned = QueryRequest::saql("peaks = 2");
        unpinned.verify_pin(None).unwrap();
        unpinned.verify_pin(Some(SnapshotRef::new(1, 1))).unwrap();

        let pinned = unpinned.clone().pinned(SnapshotRef::new(1, 1));
        pinned.verify_pin(Some(SnapshotRef::new(1, 1))).unwrap();
        let err = pinned.verify_pin(Some(SnapshotRef::new(1, 2))).unwrap_err();
        assert!(matches!(err, Error::SnapshotMismatch { .. }), "{err}");
        let err = pinned.verify_pin(None).unwrap_err();
        assert!(matches!(err, Error::BadConfig(_)), "{err}");
    }
}
