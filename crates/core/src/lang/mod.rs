//! Textual query languages over the paper's generalized approximate
//! queries — the §6 future work ("Define a query language that supports
//! generalized approximate queries").
//!
//! Two entry points share one grammar and one parser:
//!
//! * [`saql`] — **SAQL**, the full algebra: `and`/`or`/`not` with
//!   precedence and parentheses, `limit`/`topk` truncations, id ranges,
//!   value bands, and the feature clauses below. See `docs/SAQL.md`.
//! * [`parse_query`] / [`run_query`] — the original clause language, kept
//!   as a compatibility shim over SAQL's conjunctive feature subset:
//!   clauses joined by `and`, in the constraint-per-dimension style the
//!   paper sketches (the user states the shape and per-dimension error
//!   tolerances).
//!
//! Clause grammar (case-insensitive keywords, `#`-comments):
//!
//! ```text
//! query     := clause ('and' clause)*
//! clause    := shape | peaks | interval | steepness
//! shape     := 'shape' STRING                  -- slope pattern, both notations
//! peaks     := 'peaks' '=' INT ('tol' INT)?
//! interval  := 'interval' '=' INT ('tol' INT)?
//! steepness := 'steepness' ('all' | 'any') '>=' FLOAT ('slack' FLOAT)?
//! ```
//!
//! Example: `shape "0* 1+ (-1)+ 0*" and peaks = 1 tol 0`.
//!
//! A conjunctive query is evaluated clause by clause; a sequence is an
//! **exact** result if exact in every clause, and **approximate** if it
//! matches every clause with at least one within-tolerance deviation (the
//! total deviation is the sum across dimensions — each dimension carries
//! its own metric, per §2.2).

pub mod saql;

use crate::algebra::{Pred, QueryExpr, StoreEngine};
use crate::error::{Error, Result};
use crate::query::{ApproximateMatch, QueryOutcome, QuerySpec};
use crate::store::SequenceStore;
use std::collections::HashMap;

/// A parsed conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    clauses: Vec<QuerySpec>,
}

impl ParsedQuery {
    /// The parsed clauses, in source order.
    pub fn clauses(&self) -> &[QuerySpec] {
        &self.clauses
    }

    /// Lowers the clauses to a conjunctive algebra expression (a single
    /// clause becomes a bare leaf).
    pub fn into_expr(self) -> QueryExpr {
        let mut leaves = self.clauses.into_iter().map(QueryExpr::feature);
        let first = leaves.next().expect("parser rejects empty queries");
        leaves.fold(first, QueryExpr::and)
    }
}

/// Parses the textual clause language into clauses.
///
/// This is a shim over the SAQL parser ([`saql::parse`]) restricted to its
/// original subset: a conjunction of feature clauses. Queries that use the
/// wider algebra — `or`, `not`, parentheses, `limit`/`topk`, `id`/`band`
/// leaves — parse fine as SAQL but are rejected here with a pointer to
/// [`saql::parse`], which returns the full [`QueryExpr`].
pub fn parse_query(text: &str) -> Result<ParsedQuery> {
    let expr = saql::parse(text)?;
    let clauses = conjunctive_feature_clauses(&expr).ok_or_else(|| {
        Error::BadConfig(
            "parse_query covers the conjunctive clause subset (feature clauses joined by \
             `and`); use lang::saql::parse for the full algebra"
                .into(),
        )
    })?;
    Ok(ParsedQuery { clauses })
}

/// Extracts the clause list when `expr` is a flat conjunction of feature
/// leaves (or a single feature leaf); `None` for anything wider.
fn conjunctive_feature_clauses(expr: &QueryExpr) -> Option<Vec<QuerySpec>> {
    let feature = |child: &QueryExpr| match child {
        QueryExpr::Leaf(Pred::Feature(spec)) => Some(spec.clone()),
        _ => None,
    };
    match expr {
        QueryExpr::And(children) => children.iter().map(feature).collect(),
        leaf => Some(vec![feature(leaf)?]),
    }
}

/// Parses and evaluates a conjunctive query against a store.
///
/// Clauses lower to a conjunctive [`QueryExpr`] executed by the
/// planner-backed [`StoreEngine`], so shape and interval clauses are
/// served by the store's indexes and the remaining clauses only scan the
/// already-narrowed candidates.
pub fn run_query(store: &SequenceStore, text: &str) -> Result<QueryOutcome> {
    use crate::algebra::QueryEngine as _;
    StoreEngine::new(store).execute(&parse_query(text)?.into_expr())
}

/// Combines per-clause outcomes conjunctively.
pub fn conjoin(outcomes: &[QueryOutcome]) -> QueryOutcome {
    if outcomes.is_empty() {
        return QueryOutcome::default();
    }
    // tier: Some(total deviation) if matched, None if not; 0.0 = exact.
    let mut tally: HashMap<u64, (usize, f64, bool)> = HashMap::new();
    for outcome in outcomes {
        for id in &outcome.exact {
            let e = tally.entry(*id).or_insert((0, 0.0, false));
            e.0 += 1;
        }
        for m in &outcome.approximate {
            let e = tally.entry(m.id).or_insert((0, 0.0, false));
            e.0 += 1;
            e.1 += m.deviation;
            e.2 = true;
        }
    }
    let total = outcomes.len();
    let mut exact = Vec::new();
    let mut approximate = Vec::new();
    for (id, (hits, dev, any_approx)) in tally {
        if hits == total {
            if any_approx {
                approximate.push(ApproximateMatch { id, deviation: dev });
            } else {
                exact.push(id);
            }
        }
    }
    exact.sort_unstable();
    approximate.sort_by(|a, b| {
        a.deviation.partial_cmp(&b.deviation).expect("finite deviations").then(a.id.cmp(&b.id))
    });
    QueryOutcome { exact, approximate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn corpus() -> (SequenceStore, Vec<u64>) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        for seq in [
            peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }),
            goalpost(GoalpostSpec::default()),
            peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() }),
        ] {
            ids.push(store.insert(&seq).unwrap());
        }
        (store, ids)
    }

    #[test]
    fn parses_every_clause_kind() {
        let q = parse_query(
            r#"shape "0* 1+ (-1)+ 0*" and peaks = 2 tol 1 and interval = 136 tol 3
               and steepness all >= 2.0 slack 0.25 and steepness any >= 5"#,
        )
        .unwrap();
        assert_eq!(q.clauses().len(), 5);
        assert!(matches!(q.clauses()[0], QuerySpec::Shape { .. }));
        assert!(matches!(q.clauses()[1], QuerySpec::PeakCount { count: 2, tolerance: 1 }));
        assert!(matches!(q.clauses()[2], QuerySpec::PeakInterval { interval: 136, epsilon: 3 }));
        assert!(matches!(q.clauses()[3], QuerySpec::MinPeakSteepness { .. }));
        assert!(matches!(q.clauses()[4], QuerySpec::HasSteepPeak { .. }));
    }

    #[test]
    fn comments_and_case_insensitivity() {
        let q = parse_query("PEAKS = 2 # the goal-post count\n").unwrap();
        assert_eq!(q.clauses().len(), 1);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (text, needle) in [
            ("", "empty"),
            ("shape pattern", "quoted"),
            ("peaks 2", "expected `=`"),
            ("peaks = 2.5", "integer"),
            ("steepness maybe >= 1", "`all` or `any`"),
            ("bogus = 1", "unknown clause"),
            ("peaks = 2 peaks = 3", "expected `and`"),
            (r#"shape "unterminated"#, "unterminated"),
        ] {
            let err = parse_query(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }

    #[test]
    fn full_algebra_queries_are_deferred_to_saql() {
        // These parse as SAQL but exceed the clause subset.
        for text in ["peaks = 1 or peaks = 2", "not peaks = 2", "peaks = 2 limit 3", "id in [0..9]"]
        {
            let err = parse_query(text).unwrap_err().to_string();
            assert!(err.contains("saql"), "`{text}` -> `{err}`");
            assert!(saql::parse(text).is_ok(), "`{text}` must still be valid SAQL");
        }
    }

    #[test]
    fn single_clause_runs_like_evaluate() {
        let (store, ids) = corpus();
        let out = run_query(&store, r#"shape "0* 1+ (-1)+ 0* 1+ (-1)+ 0*""#).unwrap();
        assert_eq!(out.exact, vec![ids[1]]);
    }

    #[test]
    fn conjunction_intersects() {
        let (store, ids) = corpus();
        // Two peaks AND an inter-peak interval near 10h: only the goalpost.
        let out = run_query(&store, "peaks = 2 and interval = 10 tol 2").unwrap();
        assert_eq!(out.exact, vec![ids[1]]);
        // Two peaks (tol 1) AND interval near 8: the 3-peak sequence
        // (interval-exact, count off by one) surfaces as approximate.
        let out = run_query(&store, "peaks = 2 tol 1 and interval = 8 tol 1").unwrap();
        assert!(out.approximate.iter().any(|m| m.id == ids[2]), "{out:?}");
        assert!(!out.exact.contains(&ids[2]));
    }

    #[test]
    fn conjunction_requires_all_clauses() {
        let (store, ids) = corpus();
        // One peak AND three peaks: unsatisfiable.
        let out = run_query(&store, "peaks = 1 and peaks = 3").unwrap();
        assert!(out.exact.is_empty() && out.approximate.is_empty());
        // One peak alone matches the single-peak sequence.
        let out = run_query(&store, "peaks = 1").unwrap();
        assert_eq!(out.exact, vec![ids[0]]);
    }

    #[test]
    fn deviations_sum_across_dimensions() {
        let (store, ids) = corpus();
        // Count tol 2 + interval tol 3: the 3-peak sequence deviates by 1
        // in count and 2 in interval when asked for interval = 10.
        let out = run_query(&store, "peaks = 2 tol 2 and interval = 10 tol 3").unwrap();
        if let Some(m) = out.approximate.iter().find(|m| m.id == ids[2]) {
            assert!(m.deviation >= 1.0, "{m:?}");
        }
    }

    #[test]
    fn conjoin_empty_is_empty() {
        assert_eq!(conjoin(&[]), QueryOutcome::default());
    }
}
