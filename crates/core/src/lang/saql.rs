//! **SAQL** — the textual surface for the *full* query algebra.
//!
//! The classic clause language ([`crate::lang::parse_query`]) covers flat
//! conjunctions of feature clauses; SAQL covers every [`QueryExpr`] shape:
//! `and` / `or` / `not` with conventional precedence and parentheses,
//! trailing `limit n` / `topk k` truncations, id-range leaves
//! (`id in [lo..hi]`), value-band leaves (`band [t:v, …] delta δ slack s`)
//! and the feature leaves of the clause language unchanged. A parsed
//! expression lowers onto the existing [`Planner`] / [`QueryEngine`](crate::algebra::QueryEngine)
//! machinery — SAQL adds no execution semantics of its own.
//!
//! ## Grammar
//!
//! Keywords are case-insensitive; `#` starts a comment to end of line.
//! The full EBNF, the precedence table and worked examples live in
//! `docs/SAQL.md`.
//!
//! ```text
//! query     := expr
//! expr      := or-expr { ('limit' | 'topk') UINT }      # loosest
//! or-expr   := and-expr { 'or' and-expr }
//! and-expr  := not-expr { 'and' not-expr }
//! not-expr  := 'not' not-expr | primary
//! primary   := '(' expr ')' | leaf
//! leaf      := 'shape' STRING
//!            | 'peaks' '=' UINT [ 'tol' UINT ]
//!            | 'interval' '=' INT [ 'tol' INT ]
//!            | 'steepness' ('all' | 'any') '>=' FLOAT [ 'slack' FLOAT ]
//!            | 'id' 'in' '[' UINT '..' UINT ']'
//!            | 'band' '[' [ point { ',' point } ] ']' 'delta' FLOAT [ 'slack' FLOAT ]
//! point     := FLOAT ':' FLOAT                          # timestamp : value
//! ```
//!
//! `limit`/`topk` bind loosest (`a and b limit 3` truncates the whole
//! conjunction, as in SQL), `or` binds looser than `and`, and `not` binds
//! tightest of the operators. `not not x` is **not** simplified: `Not`
//! flattens tiers (its result is all-exact), so double negation keeps
//! `x`'s ids but deliberately forgets its deviations.
//!
//! ## Round-tripping
//!
//! [`QueryExpr::to_saql`] (also [`print()`]) renders an expression back to
//! SAQL such that `parse(print(e)) == e` exactly — structurally identical
//! trees, bit-identical numbers (floats print in Rust's shortest
//! round-trip form) — property-tested in `tests/prop_saql.rs`. The two
//! shapes no text can distinguish are single-operand `And`/`Or` wrappers,
//! which print as their operand (the planner's normalizer unwraps them
//! anyway, so plans and results are unchanged).
//!
//! ## Errors
//!
//! Every parse error carries the byte [`Span`] of the offending token;
//! [`SaqlError::render`] turns it into a caret diagnostic:
//!
//! ```text
//! error: expected `=`, got `2`
//!   | peaks 2 and interval = 8
//!   |       ^
//! ```
//!
//! ## Example
//!
//! ```
//! use saq_core::algebra::{QueryEngine as _, StoreEngine};
//! use saq_core::lang::saql;
//! use saq_core::store::SequenceStore;
//! use saq_sequence::generators::{goalpost, GoalpostSpec};
//!
//! let mut store = SequenceStore::default();
//! let id = store.insert(&goalpost(GoalpostSpec::default())).unwrap();
//!
//! let expr = saql::parse(
//!     r#"shape "0* 1+ (-1)+ 0* 1+ (-1)+ 0*" and interval = 10 tol 3
//!        and not id in [1000..2000] topk 5"#,
//! )
//! .unwrap();
//! assert_eq!(StoreEngine::new(&store).execute(&expr).unwrap().exact, vec![id]);
//! // …and back: the printed form parses to the identical tree.
//! let printed = expr.to_saql().unwrap();
//! assert_eq!(saql::parse(&printed).unwrap(), expr);
//! ```

use crate::algebra::{PhysicalPlan, Planner, Pred, QueryExpr};
use crate::error::{Error, Result};
use crate::query::QuerySpec;
use saq_sequence::{Point, Sequence};
use std::fmt;
use std::fmt::Write as _;

/// Parser recursion limit: parenthesis/`not` nesting deeper than this is
/// rejected with a clean error instead of risking stack exhaustion.
pub const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Spans and errors
// ---------------------------------------------------------------------------

/// A half-open byte range `start..end` into the query source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

/// A SAQL parse error: a message plus the [`Span`] it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaqlError {
    message: String,
    span: Span,
}

impl SaqlError {
    fn new(message: impl Into<String>, span: Span) -> SaqlError {
        SaqlError { message: message.into(), span }
    }

    /// The human-readable message (without source context).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The byte span of the offending token (empty at end of input).
    pub fn span(&self) -> Span {
        self.span
    }

    /// Renders a caret diagnostic against the original source text:
    /// the message, the offending line, and a `^^^` underline.
    pub fn render(&self, source: &str) -> String {
        let start = self.span.start.min(source.len());
        let end = self.span.end.clamp(start, source.len());
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[start..].find('\n').map_or(source.len(), |i| start + i);
        let line = &source[line_start..line_end];
        let col = source[line_start..start].chars().count();
        let width = source[start..end.max(start).min(line_end)].chars().count().max(1);
        let mut out = format!("error: {}\n", self.message);
        let _ = writeln!(out, "  | {line}");
        let _ = write!(out, "  | {}{}", " ".repeat(col), "^".repeat(width));
        out
    }
}

impl fmt::Display for SaqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}..{}", self.message, self.span.start, self.span.end)
    }
}

impl std::error::Error for SaqlError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// A bare word, lowercased (keywords are case-insensitive).
    Word(String),
    /// A double-quoted string (no escapes, matching the clause language).
    Str(String),
    /// A numeric literal, kept as its raw lexeme so integer contexts can
    /// parse it with full `u64`/`i64` precision.
    Number(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Eq,
    Ge,
    DotDot,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Str(_) => "a string".into(),
            Tok::Number(n) => format!("`{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::DotDot => "`..`".into(),
        }
    }
}

type Lexed = (Tok, Span);

fn lex(text: &str) -> std::result::Result<Vec<Lexed>, SaqlError> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SaqlError::new(
                        "unterminated string literal",
                        Span::new(start, bytes.len()),
                    ));
                }
                out.push((Tok::Str(text[start + 1..i].to_string()), Span::new(start, i + 1)));
                i += 1;
            }
            b'(' => {
                out.push((Tok::LParen, Span::new(i, i + 1)));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, Span::new(i, i + 1)));
                i += 1;
            }
            b'[' => {
                out.push((Tok::LBracket, Span::new(i, i + 1)));
                i += 1;
            }
            b']' => {
                out.push((Tok::RBracket, Span::new(i, i + 1)));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, Span::new(i, i + 1)));
                i += 1;
            }
            b':' => {
                out.push((Tok::Colon, Span::new(i, i + 1)));
                i += 1;
            }
            b'=' => {
                out.push((Tok::Eq, Span::new(i, i + 1)));
                i += 1;
            }
            b'>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push((Tok::Ge, Span::new(i, i + 2)));
                i += 2;
            }
            b'.' if bytes.get(i + 1) == Some(&b'.') => {
                out.push((Tok::DotDot, Span::new(i, i + 2)));
                i += 2;
            }
            _ if b.is_ascii_digit()
                || b == b'.'
                || (b == b'-' && next_starts_number(bytes, i + 1)) =>
            {
                let (tok, span) = lex_number(text, i)?;
                i = span.end;
                out.push((tok, span));
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Word(text[start..i].to_lowercase()), Span::new(start, i)));
            }
            _ => {
                let ch_len = text[i..].chars().next().map_or(1, char::len_utf8);
                return Err(SaqlError::new(
                    format!("unexpected character `{}`", &text[i..i + ch_len]),
                    Span::new(i, i + ch_len),
                ));
            }
        }
    }
    Ok(out)
}

fn next_starts_number(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i) {
        Some(b) if b.is_ascii_digit() => true,
        // `-.5`: a dot starts a number only when a digit follows (`..` is
        // the range token).
        Some(b'.') => bytes.get(i + 1).is_some_and(u8::is_ascii_digit),
        _ => false,
    }
}

/// Lexes one numeric literal starting at `start`: optional sign, digits,
/// at most one fraction, optional exponent. The lexeme is kept raw so the
/// parser can apply full-precision integer parsing where the grammar
/// demands integers. Trailing garbage that would silently split into two
/// adjacent tokens (`12.3.4`, `1x`) is rejected here, with a span covering
/// the whole malformed run.
fn lex_number(text: &str, start: usize) -> std::result::Result<Lexed, SaqlError> {
    let bytes = text.as_bytes();
    let mut i = start;
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    // One fraction part — but never swallow the `..` range token.
    if bytes.get(i) == Some(&b'.') && bytes.get(i + 1) != Some(&b'.') {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        if bytes.get(j).is_some_and(u8::is_ascii_digit) {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let malformed = match bytes.get(i) {
        Some(b'.') if bytes.get(i + 1) != Some(&b'.') => true,
        Some(b) if b.is_ascii_alphanumeric() || *b == b'_' => true,
        _ => false,
    };
    if malformed {
        let mut j = i;
        while j < bytes.len()
            && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'.' || bytes[j] == b'_')
        {
            j += 1;
        }
        return Err(SaqlError::new(
            format!("malformed number `{}`", &text[start..j]),
            Span::new(start, j),
        ));
    }
    let lexeme = &text[start..i];
    if !lexeme.bytes().any(|b| b.is_ascii_digit()) {
        return Err(SaqlError::new(
            format!("malformed number `{lexeme}`"),
            Span::new(start, i.max(start + 1)),
        ));
    }
    Ok((Tok::Number(lexeme.to_string()), Span::new(start, i)))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a SAQL query into a [`QueryExpr`], with span-carrying errors.
///
/// Use [`parse`] when an ordinary [`crate::Error`] (rendering the caret
/// diagnostic through its `Display`) is more convenient.
pub fn parse_spanned(text: &str) -> std::result::Result<QueryExpr, SaqlError> {
    let tokens = lex(text)?;
    if tokens.is_empty() {
        return Err(SaqlError::new("empty query", Span::new(text.len(), text.len())));
    }
    let mut p = Parser { tokens, pos: 0, eof: text.len() };
    let expr = p.expr(0)?;
    if let Some((tok, span)) = p.peek_with_span() {
        return Err(SaqlError::new(
            format!(
                "expected `and`, `or`, `limit`, `topk`, or end of input, got {}",
                tok.describe()
            ),
            span,
        ));
    }
    Ok(expr)
}

/// Parses a SAQL query into a [`QueryExpr`].
///
/// On failure the returned [`Error::Saql`] carries the structured
/// [`SaqlError`] plus the query text; its `Display` embeds the caret
/// diagnostic of [`SaqlError::render`], so it can be shown to a user
/// directly.
pub fn parse(text: &str) -> Result<QueryExpr> {
    parse_spanned(text).map_err(|e| Error::Saql { error: e, query: text.to_string() })
}

/// Parses a SAQL query and plans it in one step — the convenience engines
/// use to accept textual queries (see
/// [`QueryEngine::execute_saql`](crate::algebra::QueryEngine::execute_saql)).
///
/// ```
/// use saq_core::algebra::{IndexCaps, Planner};
/// use saq_core::lang::saql;
///
/// let planner = Planner::new(IndexCaps::all());
/// let (expr, plan) = saql::parse_and_plan("shape \"1+ (-1)+\" and peaks = 1", &planner).unwrap();
/// assert_eq!(plan.leaf_count(), 2);
/// assert!(plan.explain().contains("pattern-index"));
/// assert_eq!(saql::parse(&expr.to_saql().unwrap()).unwrap(), expr);
/// ```
pub fn parse_and_plan(text: &str, planner: &Planner) -> Result<(QueryExpr, PhysicalPlan)> {
    let expr = parse(text)?;
    let plan = planner.plan(&expr)?;
    Ok((expr, plan))
}

struct Parser {
    tokens: Vec<Lexed>,
    pos: usize,
    eof: usize,
}

type PResult<T> = std::result::Result<T, SaqlError>;

impl Parser {
    fn eof_span(&self) -> Span {
        Span::new(self.eof, self.eof)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek_with_span(&self) -> Option<(&Tok, Span)> {
        self.tokens.get(self.pos).map(|(t, s)| (t, *s))
    }

    fn next(&mut self, expected: &str) -> PResult<(Tok, Span)> {
        match self.tokens.get(self.pos) {
            Some((t, s)) => {
                self.pos += 1;
                Ok((t.clone(), *s))
            }
            None => Err(SaqlError::new(
                format!("expected {expected}, got end of input"),
                self.eof_span(),
            )),
        }
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> PResult<Span> {
        let (t, span) = self.next(what)?;
        if t == tok {
            Ok(span)
        } else {
            Err(SaqlError::new(format!("expected {what}, got {}", t.describe()), span))
        }
    }

    /// `expr := or-expr { ('limit' | 'topk') UINT }`
    fn expr(&mut self, depth: usize) -> PResult<QueryExpr> {
        let mut expr = self.or_expr(depth)?;
        loop {
            if self.eat_word("limit") {
                expr = QueryExpr::Limit(Box::new(expr), self.uint("a `limit` count")? as usize);
            } else if self.eat_word("topk") {
                expr = QueryExpr::TopK(Box::new(expr), self.uint("a `topk` count")? as usize);
            } else {
                return Ok(expr);
            }
        }
    }

    /// `or-expr := and-expr { 'or' and-expr }`
    fn or_expr(&mut self, depth: usize) -> PResult<QueryExpr> {
        let mut operands = vec![self.and_expr(depth)?];
        while self.eat_word("or") {
            operands.push(self.and_expr(depth)?);
        }
        Ok(if operands.len() == 1 {
            operands.pop().expect("one operand")
        } else {
            QueryExpr::Or(operands)
        })
    }

    /// `and-expr := not-expr { 'and' not-expr }`
    fn and_expr(&mut self, depth: usize) -> PResult<QueryExpr> {
        let mut operands = vec![self.not_expr(depth)?];
        while self.eat_word("and") {
            operands.push(self.not_expr(depth)?);
        }
        Ok(if operands.len() == 1 {
            operands.pop().expect("one operand")
        } else {
            QueryExpr::And(operands)
        })
    }

    /// `not-expr := 'not' not-expr | primary`
    fn not_expr(&mut self, depth: usize) -> PResult<QueryExpr> {
        if depth >= MAX_DEPTH {
            let span = self.peek_with_span().map_or(self.eof_span(), |(_, s)| s);
            return Err(SaqlError::new(
                format!("query nested deeper than {MAX_DEPTH} levels"),
                span,
            ));
        }
        if self.eat_word("not") {
            Ok(QueryExpr::Not(Box::new(self.not_expr(depth + 1)?)))
        } else {
            self.primary(depth)
        }
    }

    /// `primary := '(' expr ')' | leaf`
    fn primary(&mut self, depth: usize) -> PResult<QueryExpr> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let inner = self.expr(depth + 1)?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(inner);
        }
        self.leaf()
    }

    fn leaf(&mut self) -> PResult<QueryExpr> {
        let (tok, span) = self.next("a clause")?;
        let head = match tok {
            Tok::Word(w) => w,
            other => {
                return Err(SaqlError::new(
                    format!("expected a clause, got {}", other.describe()),
                    span,
                ))
            }
        };
        match head.as_str() {
            "shape" => {
                let (tok, span) = self.next("a quoted pattern")?;
                match tok {
                    Tok::Str(pattern) => Ok(QueryExpr::feature(QuerySpec::Shape { pattern })),
                    other => Err(SaqlError::new(
                        format!("`shape` expects a quoted pattern, got {}", other.describe()),
                        span,
                    )),
                }
            }
            "peaks" => {
                self.expect(Tok::Eq, "`=`")?;
                let count = self.uint("a peak count")? as usize;
                let tolerance =
                    if self.eat_word("tol") { self.uint("a tolerance")? as usize } else { 0 };
                Ok(QueryExpr::feature(QuerySpec::PeakCount { count, tolerance }))
            }
            "interval" => {
                self.expect(Tok::Eq, "`=`")?;
                let interval = self.int("an interval")?;
                let epsilon = if self.eat_word("tol") { self.int("a tolerance")? } else { 0 };
                Ok(QueryExpr::feature(QuerySpec::PeakInterval { interval, epsilon }))
            }
            "steepness" => {
                let (tok, span) = self.next("`all` or `any`")?;
                let universal = match tok {
                    Tok::Word(w) if w == "all" => true,
                    Tok::Word(w) if w == "any" => false,
                    other => {
                        return Err(SaqlError::new(
                            format!("`steepness` expects `all` or `any`, got {}", other.describe()),
                            span,
                        ))
                    }
                };
                self.expect(Tok::Ge, "`>=`")?;
                let steepness = self.float("a steepness")?;
                let slack = if self.eat_word("slack") { self.float("a slack")? } else { 0.0 };
                Ok(QueryExpr::feature(if universal {
                    QuerySpec::MinPeakSteepness { steepness, slack }
                } else {
                    QuerySpec::HasSteepPeak { steepness, slack }
                }))
            }
            "id" => {
                if !self.eat_word("in") {
                    let span = self.peek_with_span().map_or(self.eof_span(), |(_, s)| s);
                    return Err(SaqlError::new("`id` expects `in [lo..hi]`", span));
                }
                self.expect(Tok::LBracket, "`[`")?;
                let lo_span = self.peek_with_span().map_or(self.eof_span(), |(_, s)| s);
                let lo = self.uint("a lower id bound")?;
                self.expect(Tok::DotDot, "`..`")?;
                let hi_span = self.peek_with_span().map_or(self.eof_span(), |(_, s)| s);
                let hi = self.uint("an upper id bound")?;
                self.expect(Tok::RBracket, "`]`")?;
                if lo > hi {
                    return Err(SaqlError::new(
                        format!(
                            "reversed id range: lower bound {lo} exceeds upper bound {hi} \
                             (did you mean `[{hi}..{lo}]`?)"
                        ),
                        Span::new(lo_span.start, hi_span.end),
                    ));
                }
                Ok(QueryExpr::id_range(lo, hi))
            }
            "band" => self.band(),
            other => Err(SaqlError::new(
                format!(
                    "unknown clause `{other}` (expected `shape`, `peaks`, `interval`, \
                     `steepness`, `id`, `band`, `not`, or `(`)"
                ),
                span,
            )),
        }
    }

    /// `band '[' [ t ':' v { ',' t ':' v } ] ']' 'delta' FLOAT [ 'slack' FLOAT ]`
    fn band(&mut self) -> PResult<QueryExpr> {
        let open = self.expect(Tok::LBracket, "`[`")?;
        let mut points = Vec::new();
        if !matches!(self.peek(), Some(Tok::RBracket)) {
            loop {
                let t = self.float("a timestamp")?;
                self.expect(Tok::Colon, "`:`")?;
                let v = self.float("a value")?;
                points.push(Point::new(t, v));
                if !matches!(self.peek(), Some(Tok::Comma)) {
                    break;
                }
                self.pos += 1;
            }
        }
        let close = self.expect(Tok::RBracket, "`]` or `,`")?;
        let query = Sequence::new(points).map_err(|e| {
            SaqlError::new(format!("invalid band samples: {e}"), Span::new(open.start, close.end))
        })?;
        if !self.eat_word("delta") {
            let span = self.peek_with_span().map_or(self.eof_span(), |(_, s)| s);
            return Err(SaqlError::new("`band` expects `delta <width>` after its samples", span));
        }
        let delta = self.float("a delta")?;
        let slack = if self.eat_word("slack") { self.float("a slack")? } else { 0.0 };
        Ok(QueryExpr::value_band(query, delta, slack))
    }

    /// A non-negative integer, parsed from the raw lexeme at full `u64`
    /// precision (so id bounds survive beyond 2⁵³).
    fn uint(&mut self, what: &str) -> PResult<u64> {
        let (tok, span) = self.next(what)?;
        match tok {
            Tok::Number(raw) => raw.parse::<u64>().map_err(|e| {
                let msg = if *e.kind() == std::num::IntErrorKind::PosOverflow {
                    format!("integer `{raw}` for {what} exceeds the maximum ({})", u64::MAX)
                } else {
                    format!("expected a non-negative integer for {what}, got `{raw}`")
                };
                SaqlError::new(msg, span)
            }),
            other => Err(SaqlError::new(
                format!("expected {what} (a non-negative integer), got {}", other.describe()),
                span,
            )),
        }
    }

    fn int(&mut self, what: &str) -> PResult<i64> {
        let (tok, span) = self.next(what)?;
        match tok {
            Tok::Number(raw) => raw.parse::<i64>().map_err(|e| {
                let msg = match e.kind() {
                    std::num::IntErrorKind::PosOverflow | std::num::IntErrorKind::NegOverflow => {
                        format!(
                            "integer `{raw}` for {what} is outside the supported range \
                             ({}..={})",
                            i64::MIN,
                            i64::MAX
                        )
                    }
                    _ => format!("expected an integer for {what}, got `{raw}`"),
                };
                SaqlError::new(msg, span)
            }),
            other => Err(SaqlError::new(
                format!("expected {what} (an integer), got {}", other.describe()),
                span,
            )),
        }
    }

    fn float(&mut self, what: &str) -> PResult<f64> {
        let (tok, span) = self.next(what)?;
        match tok {
            Tok::Number(raw) => match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(v),
                _ => Err(SaqlError::new(
                    format!("expected a finite number for {what}, got `{raw}`"),
                    span,
                )),
            },
            other => Err(SaqlError::new(
                format!("expected {what} (a number), got {}", other.describe()),
                span,
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Unparser
// ---------------------------------------------------------------------------

/// Renders an expression as SAQL text such that parsing it back yields a
/// structurally identical tree (`parse(print(e)) == e`).
///
/// Errors on the shapes no query can denote: empty `And`/`Or` operand
/// lists (which every planner rejects too), shape patterns containing a
/// `"` (the string syntax has no escapes), and non-finite numeric
/// parameters (the parser only accepts finite numbers; leaf validation
/// rejects them at plan time anyway). Single-operand `And`/`Or` wrappers
/// print as their operand — the one lossy case, and a plan-neutral one
/// (normalization unwraps them).
pub fn print(expr: &QueryExpr) -> Result<String> {
    let mut out = String::new();
    fmt_expr(expr, &mut out, 0)?;
    Ok(out)
}

impl QueryExpr {
    /// Renders this expression as SAQL text (see [`print()`]).
    pub fn to_saql(&self) -> Result<String> {
        print(self)
    }
}

/// Binding strength: truncations (0) < `or` (1) < `and` (2) < `not` (3) <
/// atoms (4). A node prints parenthesized whenever its own level is below
/// what its context requires.
fn level(expr: &QueryExpr) -> usize {
    match expr {
        QueryExpr::Limit(..) | QueryExpr::TopK(..) => 0,
        QueryExpr::Or(cs) if cs.len() != 1 => 1,
        QueryExpr::And(cs) if cs.len() != 1 => 2,
        // Single-operand wrappers print as their operand.
        QueryExpr::Or(cs) | QueryExpr::And(cs) => level(&cs[0]),
        QueryExpr::Not(_) => 3,
        QueryExpr::Leaf(_) => 4,
    }
}

fn fmt_expr(expr: &QueryExpr, out: &mut String, min_level: usize) -> Result<()> {
    if level(expr) < min_level {
        out.push('(');
        fmt_expr(expr, out, 0)?;
        out.push(')');
        return Ok(());
    }
    match expr {
        QueryExpr::Leaf(pred) => fmt_leaf(pred, out),
        QueryExpr::And(children) | QueryExpr::Or(children) => {
            let (joiner, child_level) =
                if matches!(expr, QueryExpr::And(_)) { (" and ", 3) } else { (" or ", 2) };
            match children.as_slice() {
                [] => Err(Error::BadConfig(
                    "cannot print an `And`/`Or` with no operands as SAQL".into(),
                )),
                [only] => fmt_expr(only, out, min_level),
                many => {
                    for (i, child) in many.iter().enumerate() {
                        if i > 0 {
                            out.push_str(joiner);
                        }
                        fmt_expr(child, out, child_level)?;
                    }
                    Ok(())
                }
            }
        }
        QueryExpr::Not(child) => {
            out.push_str("not ");
            fmt_expr(child, out, 3)
        }
        QueryExpr::Limit(child, n) => {
            fmt_expr(child, out, 0)?;
            let _ = write!(out, " limit {n}");
            Ok(())
        }
        QueryExpr::TopK(child, k) => {
            fmt_expr(child, out, 0)?;
            let _ = write!(out, " topk {k}");
            Ok(())
        }
    }
}

fn fmt_leaf(pred: &Pred, out: &mut String) -> Result<()> {
    match pred {
        Pred::Feature(QuerySpec::Shape { pattern }) => {
            if pattern.contains('"') {
                return Err(Error::BadConfig(format!(
                    "shape pattern {pattern:?} contains `\"`, which SAQL strings cannot escape"
                )));
            }
            let _ = write!(out, "shape \"{pattern}\"");
        }
        Pred::Feature(QuerySpec::PeakCount { count, tolerance }) => {
            let _ = write!(out, "peaks = {count}");
            if *tolerance != 0 {
                let _ = write!(out, " tol {tolerance}");
            }
        }
        Pred::Feature(QuerySpec::PeakInterval { interval, epsilon }) => {
            let _ = write!(out, "interval = {interval}");
            if *epsilon != 0 {
                let _ = write!(out, " tol {epsilon}");
            }
        }
        Pred::Feature(QuerySpec::MinPeakSteepness { steepness, slack }) => {
            let _ = write!(out, "steepness all >= {}", finite(*steepness, "steepness")?);
            if *slack != 0.0 {
                let _ = write!(out, " slack {}", finite(*slack, "slack")?);
            }
        }
        Pred::Feature(QuerySpec::HasSteepPeak { steepness, slack }) => {
            let _ = write!(out, "steepness any >= {}", finite(*steepness, "steepness")?);
            if *slack != 0.0 {
                let _ = write!(out, " slack {}", finite(*slack, "slack")?);
            }
        }
        Pred::IdRange { lo, hi } => {
            let _ = write!(out, "id in [{lo}..{hi}]");
        }
        Pred::ValueBand { query, delta, slack } => {
            // Band samples are finite by `Sequence`'s construction
            // invariant; only the parameters need checking.
            out.push_str("band [");
            for (i, p) in query.points().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}:{}", p.t, p.v);
            }
            let _ = write!(out, "] delta {}", finite(*delta, "delta")?);
            if *slack != 0.0 {
                let _ = write!(out, " slack {}", finite(*slack, "slack")?);
            }
        }
    }
    Ok(())
}

/// SAQL numbers must be finite (the parser rejects `nan`/`inf`), so
/// printing a non-finite parameter would silently produce unparseable
/// text — error instead, per [`print()`]'s contract.
fn finite(v: f64, what: &str) -> Result<f64> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(Error::BadConfig(format!("cannot print non-finite {what} ({v}) as SAQL")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{IndexCaps, QueryEngine as _, StoreEngine};
    use crate::store::{SequenceStore, StoreConfig};
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    const GOALPOST: &str = "0* 1+ (-1)+ 0* 1+ (-1)+ 0*";

    fn roundtrip(expr: &QueryExpr) {
        let text = print(expr).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(&back, expr, "round-trip through `{text}`");
    }

    #[test]
    fn parses_every_leaf_kind() {
        for (text, expect) in [
            ("shape \"1+ (-1)+\"", QueryExpr::shape("1+ (-1)+")),
            ("peaks = 2 tol 1", QueryExpr::peak_count(2, 1)),
            ("PEAKS = 2", QueryExpr::peak_count(2, 0)),
            ("interval = -3 tol 2", QueryExpr::peak_interval(-3, 2)),
            ("steepness all >= 2.5 slack 0.25", QueryExpr::min_steepness(2.5, 0.25)),
            ("steepness any >= 5", QueryExpr::has_steep_peak(5.0, 0.0)),
            ("id in [3..17]", QueryExpr::id_range(3, 17)),
            (
                "band [0:98.6, 1:101.5, 2.5:-7] delta 0.5 slack 1",
                QueryExpr::value_band(
                    Sequence::new(vec![
                        Point::new(0.0, 98.6),
                        Point::new(1.0, 101.5),
                        Point::new(2.5, -7.0),
                    ])
                    .unwrap(),
                    0.5,
                    1.0,
                ),
            ),
            ("band [] delta 1", QueryExpr::value_band(Sequence::new(vec![]).unwrap(), 1.0, 0.0)),
        ] {
            assert_eq!(parse_spanned(text).unwrap(), expect, "`{text}`");
        }
    }

    #[test]
    fn precedence_and_parens() {
        // `or` looser than `and`, `not` tighter than both, truncations loosest.
        let a = || QueryExpr::peak_count(1, 0);
        let b = || QueryExpr::peak_count(2, 0);
        let c = || QueryExpr::peak_count(3, 0);
        assert_eq!(
            parse_spanned("peaks = 1 or peaks = 2 and peaks = 3").unwrap(),
            a().or(b().and(c())),
        );
        assert_eq!(
            parse_spanned("(peaks = 1 or peaks = 2) and peaks = 3").unwrap(),
            a().or(b()).and(c()),
        );
        assert_eq!(parse_spanned("not peaks = 1 and peaks = 2").unwrap(), a().negate().and(b()),);
        assert_eq!(parse_spanned("not (peaks = 1 and peaks = 2)").unwrap(), a().and(b()).negate(),);
        assert_eq!(
            parse_spanned("peaks = 1 and peaks = 2 limit 3").unwrap(),
            a().and(b()).limit(3),
        );
        assert_eq!(
            parse_spanned("(peaks = 1 limit 3) or peaks = 2").unwrap(),
            a().limit(3).or(b()),
        );
        assert_eq!(parse_spanned("peaks = 1 limit 3 topk 2").unwrap(), a().limit(3).top_k(2),);
    }

    #[test]
    fn flat_chains_parse_as_flat_nodes() {
        // `a and b and c` must build And([a, b, c]), exactly like the
        // chained constructor, so printed trees re-parse identically.
        let expr = parse_spanned("peaks = 1 and peaks = 2 and peaks = 3").unwrap();
        assert_eq!(
            expr,
            QueryExpr::peak_count(1, 0)
                .and(QueryExpr::peak_count(2, 0))
                .and(QueryExpr::peak_count(3, 0))
        );
        match &expr {
            QueryExpr::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_is_preserved() {
        // `Not` flattens tiers, so `not not x` must keep both nodes.
        let expr = parse_spanned("not not peaks = 2").unwrap();
        assert_eq!(expr, QueryExpr::peak_count(2, 0).negate().negate());
        roundtrip(&expr);
    }

    #[test]
    fn deeply_nested_parens_parse_up_to_the_depth_cap() {
        let deep = |n: usize| format!("{}peaks = 1{}", "(".repeat(n), ")".repeat(n));
        let ok = parse_spanned(&deep(100)).unwrap();
        assert_eq!(ok, QueryExpr::peak_count(1, 0));
        let err = parse_spanned(&deep(MAX_DEPTH + 8)).unwrap_err();
        assert!(err.message().contains("nested deeper"), "{err}");
    }

    #[test]
    fn limit_zero_and_topk_zero_parse_and_run() {
        let (store, _) = corpus();
        for text in ["peaks = 2 limit 0", "peaks = 2 topk 0"] {
            let expr = parse_spanned(text).unwrap();
            roundtrip(&expr);
            let out = StoreEngine::new(&store).execute(&expr).unwrap();
            assert!(out.exact.is_empty() && out.approximate.is_empty(), "`{text}` -> {out:?}");
        }
    }

    #[test]
    fn malformed_inputs_error_with_useful_spans() {
        for (text, needle) in [
            ("", "empty query"),
            ("   # only a comment", "empty query"),
            ("peaks = 12.3.4", "malformed number"),
            ("peaks = 1x", "malformed number"),
            ("peaks = -", "unexpected character `-`"),
            ("peaks = 2.5", "non-negative integer"),
            ("peaks = -2", "non-negative integer"),
            ("steepness all >= 1e999", "finite number"),
            ("peaks = 2 limit", "got end of input"),
            ("(peaks = 2", "expected `)`"),
            ("peaks = 2)", "end of input, got `)`"),
            ("id in [5..]", "expected an upper id bound"),
            ("id [5..9]", "`id` expects `in"),
            ("band [0:1] slack 2", "expects `delta"),
            ("band [1:0, 0:1] delta 1", "invalid band samples"),
            ("shape 'x'", "unexpected character `'`"),
            (r#"shape "unterminated"#, "unterminated string"),
            ("bogus = 1", "unknown clause `bogus`"),
            ("peaks = 2 peaks = 3", "expected `and`, `or`, `limit`, `topk`"),
            ("id in [9..5]", "reversed id range: lower bound 9 exceeds upper bound 5"),
            ("id in [18446744073709551616..5]", "exceeds the maximum (18446744073709551615)"),
            ("peaks = 99999999999999999999", "exceeds the maximum"),
            ("interval = 99999999999999999999", "outside the supported range"),
        ] {
            let err = parse_spanned(text).unwrap_err();
            assert!(err.message().contains(needle), "`{text}` -> `{}`", err.message());
            // Every span lies inside the source (or is the EOF marker).
            assert!(err.span().start <= err.span().end && err.span().end <= text.len().max(1));
        }
    }

    #[test]
    fn caret_diagnostics_point_at_the_offending_token() {
        let text = "peaks 2 and interval = 8";
        let err = parse_spanned(text).unwrap_err();
        let rendered = err.render(text);
        assert!(rendered.contains("expected `=`"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line, "  |       ^", "{rendered}");

        // Multi-line sources point at the right line.
        let text = "peaks = 2\nand bogus = 1";
        let err = parse_spanned(text).unwrap_err();
        let rendered = err.render(text);
        assert!(rendered.contains("| and bogus = 1"), "{rendered}");
        assert!(rendered.lines().last().unwrap().contains("^^^^^"), "{rendered}");
    }

    #[test]
    fn numeric_edge_cases_point_at_the_literal() {
        // A reversed range underlines the whole `lo..hi` region and
        // suggests the swapped form.
        let text = "id in [9..5]";
        let err = parse_spanned(text).unwrap_err();
        let rendered = err.render(text);
        assert!(rendered.contains("did you mean `[5..9]`?"), "{rendered}");
        assert_eq!(rendered.lines().last().unwrap(), "  |        ^^^^", "{rendered}");

        // An oversized literal underlines exactly that literal; equal
        // bounds and the extremes stay accepted.
        let text = "id in [0..18446744073709551616]";
        let err = parse_spanned(text).unwrap_err();
        assert_eq!(&text[err.span().start..err.span().end], "18446744073709551616");
        assert_eq!(parse("id in [7..7]").unwrap(), QueryExpr::id_range(7, 7));
        assert_eq!(
            parse("id in [0..18446744073709551615]").unwrap(),
            QueryExpr::id_range(0, u64::MAX)
        );
    }

    #[test]
    fn print_round_trips_compound_expressions() {
        let band = QueryExpr::value_band(
            Sequence::from_samples(&[98.6, 101.5, 98.4]).unwrap(),
            0.75,
            0.25,
        );
        let exprs = [
            QueryExpr::shape(GOALPOST).and(QueryExpr::peak_interval(10, 3)).top_k(5),
            QueryExpr::peak_count(2, 1)
                .or(QueryExpr::peak_count(3, 0))
                .and(QueryExpr::id_range(0, 99).negate()),
            QueryExpr::peak_count(1, 0).limit(3).or(QueryExpr::has_steep_peak(1.0, 0.3).limit(2)),
            QueryExpr::min_steepness(0.5, 0.125).negate().negate(),
            band.clone().and(QueryExpr::peak_count(2, 0)).limit(4).top_k(2),
            QueryExpr::And(vec![
                QueryExpr::peak_count(1, 0).and(QueryExpr::peak_count(2, 0)),
                QueryExpr::peak_count(3, 0),
            ]),
            QueryExpr::id_range(0, u64::MAX),
        ];
        for expr in &exprs {
            roundtrip(expr);
        }
        // Spot-check rendering shapes.
        assert_eq!(
            exprs[1].to_saql().unwrap(),
            "(peaks = 2 tol 1 or peaks = 3) and not id in [0..99]"
        );
        assert_eq!(
            exprs[5].to_saql().unwrap(),
            "(peaks = 1 and peaks = 2) and peaks = 3",
            "nested And keeps its structure via parens"
        );
    }

    #[test]
    fn print_rejects_undenotable_shapes() {
        assert!(print(&QueryExpr::And(vec![])).is_err());
        assert!(print(&QueryExpr::Or(vec![])).is_err());
        assert!(print(&QueryExpr::shape("say \"hi\"")).is_err());
        // Non-finite parameters would print as text the parser rejects.
        assert!(print(&QueryExpr::min_steepness(f64::NAN, 0.0)).is_err());
        assert!(print(&QueryExpr::has_steep_peak(1.0, f64::INFINITY)).is_err());
        assert!(print(&QueryExpr::value_band(
            Sequence::from_samples(&[1.0]).unwrap(),
            f64::NEG_INFINITY,
            0.0
        ))
        .is_err());
        // Single-operand wrappers are plan-neutral and print as the child.
        let single = QueryExpr::And(vec![QueryExpr::peak_count(1, 0)]);
        assert_eq!(print(&single).unwrap(), "peaks = 1");
    }

    fn corpus() -> (SequenceStore, Vec<u64>) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        for seq in [
            peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() }),
            goalpost(GoalpostSpec::default()),
            peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() }),
        ] {
            ids.push(store.insert(&seq).unwrap());
        }
        (store, ids)
    }

    // The deprecated shim must stay byte-identical to the unified path.
    #[test]
    #[allow(deprecated)]
    fn execute_saql_matches_the_constructed_expression() {
        let (store, ids) = corpus();
        let engine = StoreEngine::new(&store);
        let text = format!("shape \"{GOALPOST}\" or peaks = 3 topk 2");
        let via_text = engine.execute_saql(&text).unwrap();
        let via_expr = engine
            .execute(&QueryExpr::shape(GOALPOST).or(QueryExpr::peak_count(3, 0)).top_k(2))
            .unwrap();
        assert_eq!(via_text, via_expr);
        assert!(via_text.all_ids().contains(&ids[1]));
    }

    #[test]
    fn parse_and_plan_surfaces_plan_errors() {
        let planner = Planner::new(IndexCaps::all());
        // Parses fine, but the pattern is invalid — planning must fail.
        assert!(parse_and_plan("shape \"((\"", &planner).is_err());
        // Inverted id ranges parse but fail validation.
        assert!(parse_and_plan("id in [9..2]", &planner).is_err());
    }
}
