//! Incremental re-representation for streaming appends.
//!
//! The paper's data arrives over time — "sequences are recorded over
//! long periods" — yet the batch pipeline re-breaks a whole sequence on
//! every change. This module exploits a property of the online breaker
//! (§5.1) to do better: [`OnlineBreaker`] decides every breakpoint from
//! the points of the *current* segment alone (its regression state,
//! scale, and window all reset at each break), so once a segment is
//! closed, no later point can reopen it. Only the final segment of a
//! representation is still "open" — the breaker might yet extend or
//! split it as points arrive.
//!
//! [`append_entry`] therefore splices: it keeps every closed segment of
//! the stored representation verbatim, re-breaks only from the open
//! segment's first point across the appended points, refits just those
//! suffix segments, and re-derives the (cheap, O(#segments)) symbol
//! string and peak table from the spliced series. By the segment-locality
//! argument above, the result is **byte-identical** to running
//! [`StoredEntry::compute`] on the extended sequence from scratch — the
//! invariant `tests/prop_streaming.rs` locks down against a rebuild
//! oracle at every generation.

use crate::error::{Error, Result};
use crate::repr::LinearSeries;
use crate::store::{derive_features, BreakerKind, StoreConfig, StoredEntry};
use crate::{brk::OnlineBreaker, Breaker};
use saq_curves::RegressionFitter;
use saq_sequence::{Point, Sequence};

/// How much work one [`append_entry`] splice actually did — the counters
/// the streaming experiments assert stay asymptotically below a batch
/// re-run (`exp_streaming`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpliceReport {
    /// Index of the first re-broken point (the open segment's start).
    pub splice_index: usize,
    /// Closed segments reused verbatim from the stored representation.
    pub reused_segments: usize,
    /// Points the breaker re-examined: the open suffix plus the appended
    /// points. A batch re-run would examine the whole extended sequence.
    pub rebroken_points: usize,
    /// Total points after the append.
    pub total_points: usize,
}

impl SpliceReport {
    /// A report for a path that recomputed everything (offline breaker).
    fn full(total_points: usize) -> SpliceReport {
        SpliceReport {
            splice_index: 0,
            reused_segments: 0,
            rebroken_points: total_points,
            total_points,
        }
    }
}

/// Extends a stored entry with `points`, re-breaking only the affected
/// suffix when `config.breaker` is [`BreakerKind::Online`] (see the
/// module docs for why that is sound). Returns the new entry and the
/// work report. The entry must retain its raw sequence (`keep_raw`), the
/// appended timestamps must continue strictly increasing, and `points`
/// must be non-empty.
pub fn append_entry(
    entry: &StoredEntry,
    points: &[Point],
    config: &StoreConfig,
) -> Result<(StoredEntry, SpliceReport)> {
    if points.is_empty() {
        return Err(Error::EmptyInput);
    }
    let raw = entry.raw.as_ref().ok_or_else(|| {
        Error::BadConfig(
            "append_points needs keep_raw: the raw sequence is what gets extended".into(),
        )
    })?;
    // Validates the new chunk (finite, strictly increasing) and the
    // boundary (first new timestamp after the last stored one).
    let extended = raw.concat(&Sequence::new(points.to_vec())?)?;
    extend_entry(entry, extended, config)
}

/// As [`append_entry`], for entries *without* a retained raw sequence:
/// the caller supplies the whole extended sequence (the stored points
/// followed by the new ones) from its own raw tier — this is how a
/// `keep_raw: false` representation store rides a raw archive's append.
/// The prefix is checked against the stored representation's length and
/// final point; a mismatched prefix is rejected, since splicing it would
/// silently misattribute segments.
pub fn extend_entry(
    entry: &StoredEntry,
    extended: Sequence,
    config: &StoreConfig,
) -> Result<(StoredEntry, SpliceReport)> {
    let stored = entry.series.original_len();
    if extended.len() <= stored {
        return Err(Error::BadConfig(format!(
            "extended sequence has {} points but the stored representation covers {stored}",
            extended.len()
        )));
    }
    let last = entry.series.segments().last().expect("series are never empty").end;
    let boundary = extended.points()[stored - 1];
    if boundary.t != last.t {
        return Err(Error::BadConfig(format!(
            "extended sequence diverges from the stored prefix at point {} (t {} vs {})",
            stored - 1,
            boundary.t,
            last.t
        )));
    }

    if config.breaker != BreakerKind::Online {
        // No stable suffix to splice at: recompute the whole sequence.
        let next = StoredEntry::compute(&extended, config)?;
        return Ok((next, SpliceReport::full(extended.len())));
    }

    // The open segment starts the re-broken suffix; everything before it
    // is closed and final.
    let segments = entry.series.segments();
    let splice = segments.last().map_or(0, |open| open.start_index);
    let reused = segments.len().saturating_sub(1);

    // Re-break the suffix exactly as a from-scratch run would cover it:
    // the breaker's state at the open segment's first point is the fresh
    // state it resets to at every break.
    let suffix = Sequence::new(extended.points()[splice..].to_vec())?;
    let ranges = OnlineBreaker::new(config.epsilon).break_ranges(&suffix);
    let refit = LinearSeries::build(&suffix, &ranges, &RegressionFitter)?;

    // Splice: closed prefix segments verbatim, suffix segments shifted
    // into the extended sequence's index space.
    let mut spliced = segments[..reused].to_vec();
    spliced.extend(refit.segments().iter().cloned().map(|mut seg| {
        seg.start_index += splice;
        seg.end_index += splice;
        seg
    }));
    let series = LinearSeries::from_segments(spliced, extended.len())?;
    let (symbols, peaks) = derive_features(&series, config.theta);

    let report = SpliceReport {
        splice_index: splice,
        reused_segments: reused,
        rebroken_points: suffix.len(),
        total_points: extended.len(),
    };
    let next = StoredEntry { series, symbols, peaks, raw: config.keep_raw.then_some(extended) };
    Ok((next, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, GoalpostSpec};

    fn walk(seed: u64, n: usize, t0: f64) -> Vec<Point> {
        // A deterministic random walk; xorshift keeps it dependency-free.
        let mut state = seed | 1;
        let mut v = 0.0f64;
        (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v += ((state % 1000) as f64 / 500.0) - 1.0;
                Point::new(t0 + i as f64, v)
            })
            .collect()
    }

    #[test]
    fn splice_matches_from_scratch_compute() {
        let config = StoreConfig::streaming();
        let base = walk(7, 40, 0.0);
        let mut entry =
            StoredEntry::compute(&Sequence::new(base.clone()).unwrap(), &config).unwrap();
        let mut all = base;
        for wave in 0..12 {
            let next = walk(1000 + wave, 1 + (wave as usize * 7) % 23, all.len() as f64);
            all.extend_from_slice(&next);
            let (spliced, report) = append_entry(&entry, &next, &config).unwrap();
            let oracle =
                StoredEntry::compute(&Sequence::new(all.clone()).unwrap(), &config).unwrap();
            assert_eq!(spliced.series, oracle.series, "wave {wave}: series splice diverged");
            assert_eq!(spliced.symbols, oracle.symbols, "wave {wave}");
            assert_eq!(spliced.peaks, oracle.peaks, "wave {wave}");
            assert_eq!(spliced.raw.as_ref().unwrap().points(), all.as_slice());
            assert!(report.rebroken_points <= all.len());
            assert_eq!(report.total_points, all.len());
            entry = spliced;
        }
        // After enough waves the splice must actually be reusing work.
        assert!(entry.series.segment_count() > 2);
    }

    #[test]
    fn splice_reuses_closed_segments() {
        let config = StoreConfig::streaming();
        let base = walk(3, 300, 0.0);
        let entry = StoredEntry::compute(&Sequence::new(base.clone()).unwrap(), &config).unwrap();
        let tail = walk(99, 5, 300.0);
        let (_, report) = append_entry(&entry, &tail, &config).unwrap();
        assert_eq!(report.reused_segments, entry.series.segment_count() - 1);
        assert!(
            report.rebroken_points < 305 / 2,
            "suffix re-break must not touch the whole sequence: {report:?}"
        );
        assert_eq!(report.splice_index + report.rebroken_points, 305);
    }

    #[test]
    fn offline_config_falls_back_to_full_recompute() {
        let config = StoreConfig::default();
        let seq = goalpost(GoalpostSpec::default());
        let entry = StoredEntry::compute(&seq, &config).unwrap();
        let tail = [Point::new(seq.points().last().unwrap().t + 1.0, 0.5)];
        let (next, report) = append_entry(&entry, &tail, &config).unwrap();
        let mut all = seq.points().to_vec();
        all.extend_from_slice(&tail);
        let oracle = StoredEntry::compute(&Sequence::new(all).unwrap(), &config).unwrap();
        assert_eq!(next.series, oracle.series);
        assert_eq!(report.reused_segments, 0);
        assert_eq!(report.rebroken_points, report.total_points);
    }

    #[test]
    fn append_rejects_bad_input() {
        let config = StoreConfig::streaming();
        let seq = goalpost(GoalpostSpec::default());
        let entry = StoredEntry::compute(&seq, &config).unwrap();
        assert!(append_entry(&entry, &[], &config).is_err(), "empty appends rejected");
        let stale = [Point::new(0.0, 1.0)];
        assert!(append_entry(&entry, &stale, &config).is_err(), "non-monotonic time rejected");
        let rawless = StoredEntry { raw: None, ..entry.clone() };
        let fresh = [Point::new(1e9, 1.0)];
        assert!(append_entry(&rawless, &fresh, &config).is_err(), "keep_raw required");
    }
}
