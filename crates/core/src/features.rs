//! Feature extraction from representations (§5.2).
//!
//! "Find the peaks in the sequences... by examining the slopes of the
//! representing functions." A peak is a rising segment immediately followed
//! by a descending segment (pattern `1+ (-1)+` over slope signs, taking the
//! segments adjacent to the apex). [`PeakTable`] is Table 1: per peak, the
//! rising and descending functions with the start/end points of their
//! subsequences; the peak's location is the endpoint with the larger
//! amplitude ("the one with the larger amplitude is where the peak actually
//! occurred").

use crate::alphabet::{series_symbols, SlopeSymbol};
use crate::repr::{FunctionSeries, Segment};
use saq_curves::Curve;
use saq_sequence::Point;

/// One detected peak: the rising/descending segments flanking the apex
/// (Table 1 row).
#[derive(Debug, Clone, PartialEq)]
pub struct Peak<C> {
    /// Index (within the series) of the rising segment adjacent to the apex.
    pub rising_segment: usize,
    /// Index of the descending segment adjacent to the apex.
    pub descending_segment: usize,
    /// The rising function.
    pub rising: C,
    /// Start point of the rising subsequence (Table 1's `RStart`).
    pub r_start: Point,
    /// End point of the rising subsequence (`REnd`).
    pub r_end: Point,
    /// The descending function.
    pub descending: C,
    /// Start point of the descending subsequence (`DStart`).
    pub d_start: Point,
    /// End point of the descending subsequence (`DEnd`).
    pub d_end: Point,
}

impl<C: Curve> Peak<C> {
    /// The apex: whichever of `REnd` / `DStart` has the larger amplitude
    /// (they differ when the breakpoint was assigned to one side).
    pub fn apex(&self) -> Point {
        if self.r_end.v >= self.d_start.v {
            self.r_end
        } else {
            self.d_start
        }
    }

    /// Time of the apex.
    pub fn time(&self) -> f64 {
        self.apex().t
    }

    /// Amplitude of the apex.
    pub fn amplitude(&self) -> f64 {
        self.apex().v
    }

    /// Steepness: the smaller of |rising slope| and |descending slope| —
    /// one of the query dimensions §2.2 mentions ("the steepness of the
    /// slopes").
    pub fn steepness(&self) -> f64 {
        let up = self.rising.derivative(0.5 * (self.r_start.t + self.r_end.t)).abs();
        let down = self.descending.derivative(0.5 * (self.d_start.t + self.d_end.t)).abs();
        up.min(down)
    }
}

/// All peaks of a representation — Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakTable<C> {
    /// Detected peaks in time order.
    pub peaks: Vec<Peak<C>>,
}

impl<C: Curve + Clone> PeakTable<C> {
    /// Extracts peaks from a representation: scans the θ-quantized slope
    /// symbols for `Up+ Down+` runs and takes the segments adjacent to each
    /// apex.
    pub fn extract(series: &FunctionSeries<C>, theta: f64) -> PeakTable<C> {
        let symbols = series_symbols(series, theta);
        let segs = series.segments();
        let mut peaks = Vec::new();
        let mut i = 0;
        while i < symbols.len() {
            if symbols[i] == SlopeSymbol::Up {
                // Extend the rising run.
                let mut j = i;
                while j + 1 < symbols.len() && symbols[j + 1] == SlopeSymbol::Up {
                    j += 1;
                }
                // The apex may be isolated in a single-sample Flat segment
                // (its slope is undefined); look past at most one such
                // singleton for the Down run.
                let mut after = j + 1;
                if after < symbols.len()
                    && symbols[after] == SlopeSymbol::Flat
                    && segs[after].len() == 1
                {
                    after += 1;
                }
                if after < symbols.len() && symbols[after] == SlopeSymbol::Down {
                    let mut k = after;
                    while k + 1 < symbols.len() && symbols[k + 1] == SlopeSymbol::Down {
                        k += 1;
                    }
                    peaks.push(make_peak(segs, j, after));
                    i = k + 1;
                    continue;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }
        PeakTable { peaks }
    }

    /// Number of peaks.
    pub fn len(&self) -> usize {
        self.peaks.len()
    }

    /// Whether no peaks were found.
    pub fn is_empty(&self) -> bool {
        self.peaks.is_empty()
    }

    /// Apex times, in order.
    pub fn times(&self) -> Vec<f64> {
        self.peaks.iter().map(Peak::time).collect()
    }

    /// "For each pair of successive peaks, find the difference in time
    /// between them. The result is a sequence of distances between peaks."
    /// (§5.2, step 4 — the R–R intervals for ECGs.)
    pub fn intervals(&self) -> Vec<f64> {
        self.times().windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Intervals rounded to integer buckets for the inverted-file index.
    pub fn interval_buckets(&self) -> Vec<i64> {
        self.intervals().iter().map(|&d| d.round() as i64).collect()
    }
}

fn make_peak<C: Curve + Clone>(segs: &[Segment<C>], up: usize, down: usize) -> Peak<C> {
    Peak {
        rising_segment: up,
        descending_segment: down,
        rising: segs[up].curve.clone(),
        r_start: segs[up].start,
        r_end: segs[up].end,
        descending: segs[down].curve.clone(),
        d_start: segs[down].start,
        d_end: segs[down].end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::DEFAULT_THETA;
    use crate::brk::{Breaker, LinearInterpolationBreaker};
    use saq_curves::RegressionFitter;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};
    use saq_sequence::Sequence;

    fn linear_series(seq: &Sequence, eps: f64) -> FunctionSeries<saq_curves::Line> {
        let ranges = LinearInterpolationBreaker::new(eps).break_ranges(seq);
        FunctionSeries::build(seq, &ranges, &RegressionFitter).unwrap()
    }

    #[test]
    fn goalpost_has_two_peaks() {
        let log = goalpost(GoalpostSpec::default());
        let series = linear_series(&log, 1.0);
        let table = PeakTable::extract(&series, DEFAULT_THETA);
        assert_eq!(table.len(), 2, "times {:?}", table.times());
        // Apexes near t=8 and t=18.
        let times = table.times();
        assert!((times[0] - 8.0).abs() < 2.0, "{times:?}");
        assert!((times[1] - 18.0).abs() < 2.0, "{times:?}");
        // Interval ~10 hours.
        let ivs = table.intervals();
        assert_eq!(ivs.len(), 1);
        assert!((ivs[0] - 10.0).abs() < 3.0, "{ivs:?}");
    }

    #[test]
    fn three_peak_series() {
        let log = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        let series = linear_series(&log, 1.0);
        let table = PeakTable::extract(&series, DEFAULT_THETA);
        assert_eq!(table.len(), 3);
        let buckets = table.interval_buckets();
        assert_eq!(buckets.len(), 2);
        for b in buckets {
            assert!((b - 8).abs() <= 2, "bucket {b}");
        }
    }

    #[test]
    fn flat_sequence_has_no_peaks() {
        let s = Sequence::from_samples(&[1.0; 30]).unwrap();
        let series = linear_series(&s, 0.5);
        let table = PeakTable::extract(&series, DEFAULT_THETA);
        assert!(table.is_empty());
        assert!(table.intervals().is_empty());
    }

    #[test]
    fn rising_only_is_not_a_peak() {
        let s = Sequence::from_samples(&(0..30).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        let series = linear_series(&s, 0.5);
        assert!(PeakTable::extract(&series, DEFAULT_THETA).is_empty());
    }

    #[test]
    fn valley_is_not_a_peak() {
        // V shape: down then up.
        let vals: Vec<f64> =
            (0..=20).map(|i| if i <= 10 { 10.0 - i as f64 } else { i as f64 - 10.0 }).collect();
        let s = Sequence::from_samples(&vals).unwrap();
        let series = linear_series(&s, 0.5);
        assert!(PeakTable::extract(&series, DEFAULT_THETA).is_empty());
    }

    #[test]
    fn apex_picks_larger_amplitude_endpoint() {
        let log = goalpost(GoalpostSpec::default());
        let series = linear_series(&log, 1.0);
        let table = PeakTable::extract(&series, DEFAULT_THETA);
        for p in &table.peaks {
            assert!(p.apex().v >= p.r_end.v.min(p.d_start.v));
            assert!(p.amplitude() >= 100.0, "fever peaks are high");
            assert!(p.steepness() > DEFAULT_THETA);
            // Rising segment is immediately before the descending one.
            assert_eq!(p.rising_segment + 1, p.descending_segment);
        }
    }

    #[test]
    fn flats_between_peaks_are_tolerated() {
        // Peaks separated by long flat stretches.
        let log =
            peaks(PeaksSpec { duration: 48.0, centers: vec![8.0, 40.0], ..PeaksSpec::default() });
        let series = linear_series(&log, 1.0);
        let table = PeakTable::extract(&series, DEFAULT_THETA);
        assert_eq!(table.len(), 2, "times {:?}", table.times());
        assert!((table.intervals()[0] - 32.0).abs() < 4.0);
    }
}
