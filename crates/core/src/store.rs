//! The representation store: what the paper's "database" holds (§4.4).
//!
//! "The stored sequences are represented as sequences of linear functions"
//! with two index structures maintained over them: the slope-sign pattern
//! index (§4.4) and the inverted-file index over inter-peak intervals
//! (§5.2, Fig. 10). Raw sequences may optionally be retained ("we don't
//! propose discarding the actual sequences; they can be stored archivally").

use crate::alphabet::{series_symbols, DEFAULT_THETA};
use crate::brk::{Breaker, LinearInterpolationBreaker, OnlineBreaker};
use crate::error::{Error, Result};
use crate::features::PeakTable;
use crate::repr::LinearSeries;
use parking_lot::RwLock;
use saq_curves::{Line, RegressionFitter};
use saq_index::{IndexDoc, IndexSet, IndexSetProbe, IndexStats, SequenceIndex as _, ShardedCowMap};
use saq_sequence::Sequence;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes stores within a process so a `(instance, generation)`
/// pair never collides across two different stores.
static NEXT_STORE_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Which breaking algorithm the ingestion pipeline runs.
///
/// The two produce different (both valid) segmentations; what matters
/// for streaming is *suffix stability*: [`BreakerKind::Online`] decides
/// each breakpoint from the points of the current segment only, so a
/// closed segment is final and appending points can re-break just the
/// open suffix ([`crate::streaming::append_entry`]) byte-identically to
/// a from-scratch run. The recursive offline template has no such
/// property — appending under it recomputes the whole sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerKind {
    /// The offline recursive interpolation template (Fig. 8) — the
    /// batch default used throughout the paper's experiments.
    #[default]
    Offline,
    /// The single-pass sliding-window breaker (§5.1) — suffix-stable,
    /// required for incremental appends.
    Online,
}

impl BreakerKind {
    /// A stable integer tag for persistence stamps (durable index
    /// documents record which breaker derived them, next to the ε/θ bit
    /// patterns). Never reorder: 0 is on disk in every pre-tag manifest.
    pub fn tag(self) -> u64 {
        match self {
            BreakerKind::Offline => 0,
            BreakerKind::Online => 1,
        }
    }
}

/// Configuration of the ingestion pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Breaking tolerance ε.
    pub epsilon: f64,
    /// Slope-quantization threshold θ (the paper uses 0.25).
    pub theta: f64,
    /// Whether to retain the raw sequences alongside representations.
    pub keep_raw: bool,
    /// Which breaking algorithm ingestion runs (default offline).
    pub breaker: BreakerKind,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            epsilon: 1.0,
            theta: DEFAULT_THETA,
            keep_raw: true,
            breaker: BreakerKind::default(),
        }
    }
}

impl StoreConfig {
    /// The default configuration with the suffix-stable online breaker —
    /// what a streaming ingest wants (see [`BreakerKind`]).
    pub fn streaming() -> StoreConfig {
        StoreConfig { breaker: BreakerKind::Online, ..StoreConfig::default() }
    }
}

/// Everything stored for one ingested sequence.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// The piecewise-linear representation.
    pub series: LinearSeries,
    /// θ-quantized slope symbol ids.
    pub symbols: Vec<u8>,
    /// The peaks table (Table 1).
    pub peaks: PeakTable<Line>,
    /// The raw sequence, if retained.
    pub raw: Option<Sequence>,
}

impl StoredEntry {
    /// Runs the full ingestion pipeline on one sequence: break → represent
    /// (regression lines) → quantize slopes → extract peaks. This is the
    /// single source of truth shared by [`SequenceStore::insert`] and the
    /// batch engine's on-demand feature computation, so a sequence always
    /// yields the same representation regardless of which path touched it.
    pub fn compute(seq: &Sequence, config: &StoreConfig) -> Result<StoredEntry> {
        if seq.is_empty() {
            return Err(Error::EmptyInput);
        }
        let ranges = match config.breaker {
            BreakerKind::Offline => {
                LinearInterpolationBreaker::new(config.epsilon).break_ranges(seq)
            }
            BreakerKind::Online => OnlineBreaker::new(config.epsilon).break_ranges(seq),
        };
        let series = LinearSeries::build(seq, &ranges, &RegressionFitter)?;
        let (symbols, peaks) = derive_features(&series, config.theta);
        Ok(StoredEntry { series, symbols, peaks, raw: config.keep_raw.then(|| seq.clone()) })
    }
}

/// Derives the indexed artifacts from a representation: θ-quantized slope
/// symbols and the peaks table. Single-sample segments have no defined
/// slope; their Flat symbol would split e.g. a `u+ d+` peak at its apex,
/// so they are dropped from the indexed symbol string. Shared by
/// [`StoredEntry::compute`] and the streaming splice
/// ([`crate::streaming::append_entry`]), so both paths always derive the
/// same features from the same series.
pub(crate) fn derive_features(series: &LinearSeries, theta: f64) -> (Vec<u8>, PeakTable<Line>) {
    let symbols: Vec<u8> = series_symbols(series, theta)
        .into_iter()
        .zip(series.segments())
        .filter(|(sym, seg)| !(seg.len() == 1 && *sym == crate::alphabet::SlopeSymbol::Flat))
        .map(|(sym, _)| sym.id())
        .collect();
    let peaks = PeakTable::extract(series, theta);
    (symbols, peaks)
}

/// A store of sequence representations with the paper's two indexes,
/// maintained as one [`IndexSet`]: every mutation — [`SequenceStore::insert`],
/// [`SequenceStore::remove`], [`SequenceStore::reinsert`] — routes through
/// the set's incremental insert/remove, so the indexes can never drift
/// from the entry map.
///
/// Both the entry map and the index set are clone-on-write, and every
/// mutation advances a generation counter, so [`SequenceStore::snapshot`]
/// is cheap (a few `Arc` clones) and hands out a [`StoreSnapshot`] —
/// an immutable view pinned to `(instance, generation)` that later
/// writes can never tear.
#[derive(Debug)]
pub struct SequenceStore {
    config: StoreConfig,
    next_id: u64,
    instance: u64,
    generation: u64,
    entries: ShardedCowMap<StoredEntry>,
    indexes: IndexSet,
}

impl Default for SequenceStore {
    fn default() -> Self {
        SequenceStore::new(StoreConfig::default()).expect("default config is valid")
    }
}

impl SequenceStore {
    /// An empty store with the given configuration.
    pub fn new(config: StoreConfig) -> Result<SequenceStore> {
        if !(config.epsilon.is_finite() && config.epsilon >= 0.0) {
            return Err(Error::BadConfig("epsilon must be finite and >= 0".into()));
        }
        if !(config.theta.is_finite() && config.theta >= 0.0) {
            return Err(Error::BadConfig("theta must be finite and >= 0".into()));
        }
        Ok(SequenceStore {
            config,
            next_id: 1,
            instance: NEXT_STORE_INSTANCE.fetch_add(1, Ordering::Relaxed),
            generation: 0,
            entries: ShardedCowMap::new(),
            indexes: IndexSet::new(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// A process-unique id for this store, so `(instance, generation)`
    /// identifies a snapshot globally.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// The mutation counter: bumped by every successful
    /// [`SequenceStore::insert`] / [`SequenceStore::remove`] /
    /// [`SequenceStore::reinsert`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// An immutable view of the store pinned to the current
    /// `(instance, generation)`: a few `Arc` clones, no entry or index
    /// copying. Later mutations clone-on-write only what they touch; the
    /// snapshot keeps the superseded structures alive until dropped.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            config: self.config,
            instance: self.instance,
            generation: self.generation,
            entries: self.entries.clone(),
            indexes: self.indexes.clone(),
        }
    }

    /// Ingests a sequence: break → represent (regression lines) → quantize
    /// slopes → extract peaks → index. Returns the assigned id.
    pub fn insert(&mut self, seq: &Sequence) -> Result<u64> {
        let entry = StoredEntry::compute(seq, &self.config)?;
        let id = self.next_id;
        self.next_id += 1;
        self.index_entry(id, &entry);
        self.entries.insert(id, entry);
        self.generation += 1;
        Ok(id)
    }

    /// Removes a stored sequence, unindexing it everywhere; returns the
    /// evicted entry. Ids are never reused.
    pub fn remove(&mut self, id: u64) -> Result<StoredEntry> {
        let entry = self.entries.remove(id).ok_or(Error::UnknownSequence { id })?;
        self.indexes.remove_doc(id);
        self.generation += 1;
        // Snapshots may still share the entry; clone only in that case.
        Ok(Arc::try_unwrap(entry).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Extends the sequence stored under `id` with freshly arrived
    /// points, re-representing it and swapping its index postings — the
    /// streaming ingest path. Under [`BreakerKind::Online`] only the
    /// open suffix is re-broken and refitted
    /// ([`crate::streaming::append_entry`]); the offline breaker has no
    /// stable suffix, so the whole extended sequence is recomputed.
    /// Either way the resulting entry is byte-identical to re-ingesting
    /// the extended sequence from scratch. Requires `keep_raw` (the raw
    /// points are what gets extended); fails, leaving the store
    /// untouched, on unknown ids, non-monotonic timestamps, or an empty
    /// `points`. Returns how much work the splice did.
    pub fn append_points(
        &mut self,
        id: u64,
        points: &[saq_sequence::Point],
    ) -> Result<crate::streaming::SpliceReport> {
        let entry = self.entries.get(id).ok_or(Error::UnknownSequence { id })?;
        let (next, report) = crate::streaming::append_entry(entry, points, &self.config)?;
        self.index_entry(id, &next);
        self.entries.insert(id, next);
        self.generation += 1;
        Ok(report)
    }

    /// As [`SequenceStore::append_points`], for stores built with
    /// `keep_raw: false`: the caller supplies the whole extended
    /// sequence (stored prefix + new points) from its own raw tier —
    /// the [`crate::streaming::extend_entry`] contract. This is how a
    /// tiered store's local representation tier rides the raw archive's
    /// append without retaining raw copies of its own.
    pub fn append_extended(
        &mut self,
        id: u64,
        extended: Sequence,
    ) -> Result<crate::streaming::SpliceReport> {
        let entry = self.entries.get(id).ok_or(Error::UnknownSequence { id })?;
        let (next, report) = crate::streaming::extend_entry(entry, extended, &self.config)?;
        self.index_entry(id, &next);
        self.entries.insert(id, next);
        self.generation += 1;
        Ok(report)
    }

    /// Replaces the sequence stored under an existing id, re-running the
    /// ingestion pipeline and incrementally swapping its index postings.
    /// Fails (leaving the store untouched) on unknown ids — fresh data
    /// goes through [`SequenceStore::insert`].
    pub fn reinsert(&mut self, id: u64, seq: &Sequence) -> Result<()> {
        if !self.entries.contains(id) {
            return Err(Error::UnknownSequence { id });
        }
        let entry = StoredEntry::compute(seq, &self.config)?;
        self.index_entry(id, &entry);
        self.entries.insert(id, entry);
        self.generation += 1;
        Ok(())
    }

    /// Routes one entry's index mutation through the [`IndexSet`] (an
    /// upsert: old postings of `id`, if any, are dropped first).
    fn index_entry(&mut self, id: u64, entry: &StoredEntry) {
        let buckets = entry.peaks.interval_buckets();
        self.indexes.insert_doc(
            id,
            &IndexDoc {
                symbols: &entry.symbols,
                interval_buckets: &buckets,
                peak_count: entry.peaks.len(),
            },
        );
    }

    /// Number of stored sequences.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entry for an id.
    pub fn get(&self, id: u64) -> Result<&StoredEntry> {
        self.entries.get(id).ok_or(Error::UnknownSequence { id })
    }

    /// All stored ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.sorted_ids()
    }

    /// The slope-pattern index (§4.4).
    pub fn pattern_index(&self) -> &saq_index::PatternIndex {
        self.indexes.pattern()
    }

    /// The inverted-file interval index (Fig. 10).
    pub fn interval_index(&self) -> &saq_index::InvertedIndex {
        self.indexes.interval()
    }

    /// The unified index layer over the stored representations.
    pub fn index_set(&self) -> &IndexSet {
        &self.indexes
    }

    /// Snapshots the per-index statistics (posting-list sizes, per-symbol
    /// prefix counts, interval and peak-count histograms) that drive the
    /// planner's cardinality estimates.
    pub fn index_stats(&self) -> IndexStats {
        self.indexes.stats()
    }

    /// Aggregate compression across all stored representations.
    pub fn total_compression(&self) -> crate::repr::CompressionReport {
        let mut original = 0;
        let mut segments = 0;
        let mut parameters = 0;
        for (_, e) in self.entries.iter() {
            let r = e.series.compression();
            original += r.original_points;
            segments += r.segments;
            parameters += r.parameters;
        }
        crate::repr::CompressionReport { original_points: original, segments, parameters }
    }
}

/// An immutable view of a [`SequenceStore`] pinned to the
/// `(instance, generation)` it was taken at. Entries, indexes, and
/// statistics all read the pinned state, no matter what the live store
/// does afterwards — this is what makes lock-free readers under live
/// writers sound: a query evaluated against a snapshot can never observe
/// a torn mutation.
///
/// Snapshots are cheap to take ([`SequenceStore::snapshot`]) and to clone
/// (shared storage), and implement the full query surface: the algebra's
/// `QueryEngine` is implemented directly on `StoreSnapshot`.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    config: StoreConfig,
    instance: u64,
    generation: u64,
    entries: ShardedCowMap<StoredEntry>,
    indexes: IndexSet,
}

impl StoreSnapshot {
    /// The configuration of the store this snapshot came from.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The instance id of the originating store.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// The generation this snapshot is pinned to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of sequences visible at the pinned generation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entry for an id at the pinned generation.
    pub fn get(&self, id: u64) -> Result<&StoredEntry> {
        self.entries.get(id).ok_or(Error::UnknownSequence { id })
    }

    /// All ids visible at the pinned generation, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.entries.sorted_ids()
    }

    /// The slope-pattern index at the pinned generation.
    pub fn pattern_index(&self) -> &saq_index::PatternIndex {
        self.indexes.pattern()
    }

    /// The inverted-file interval index at the pinned generation.
    pub fn interval_index(&self) -> &saq_index::InvertedIndex {
        self.indexes.interval()
    }

    /// The unified index layer at the pinned generation.
    pub fn index_set(&self) -> &IndexSet {
        &self.indexes
    }

    /// Per-index statistics at the pinned generation (byte-identical no
    /// matter how far the live store has moved on).
    pub fn index_stats(&self) -> IndexStats {
        self.indexes.stats()
    }

    /// A weak handle answering whether this snapshot's index structures
    /// are still reachable anywhere (see [`IndexSet::probe`]).
    pub fn index_probe(&self) -> IndexSetProbe {
        self.indexes.probe()
    }
}

/// A thread-safe handle to a shared store (readers don't block each other;
/// the paper's physician workload is read-heavy).
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<RwLock<SequenceStore>>,
}

impl SharedStore {
    /// Wraps a store for shared use.
    pub fn new(store: SequenceStore) -> SharedStore {
        SharedStore { inner: Arc::new(RwLock::new(store)) }
    }

    /// Ingests a sequence under the write lock.
    pub fn insert(&self, seq: &Sequence) -> Result<u64> {
        self.inner.write().insert(seq)
    }

    /// Removes a sequence under the write lock.
    pub fn remove(&self, id: u64) -> Result<StoredEntry> {
        self.inner.write().remove(id)
    }

    /// Replaces a sequence under the write lock.
    pub fn reinsert(&self, id: u64, seq: &Sequence) -> Result<()> {
        self.inner.write().reinsert(id, seq)
    }

    /// Runs a closure with read access.
    pub fn read<R>(&self, f: impl FnOnce(&SequenceStore) -> R) -> R {
        f(&self.inner.read())
    }

    /// Captures an immutable snapshot under a brief read lock; the
    /// returned view needs no locking at all and is unaffected by writes
    /// that land after it.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.inner.read().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn store() -> SequenceStore {
        SequenceStore::new(StoreConfig::default()).unwrap()
    }

    #[test]
    fn insert_assigns_increasing_ids() {
        let mut s = store();
        let log = goalpost(GoalpostSpec::default());
        let a = s.insert(&log).unwrap();
        let b = s.insert(&log).unwrap();
        assert!(b > a);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), vec![a, b]);
    }

    #[test]
    fn empty_sequence_rejected() {
        let mut s = store();
        let empty = Sequence::new(vec![]).unwrap();
        assert!(matches!(s.insert(&empty), Err(Error::EmptyInput)));
    }

    #[test]
    fn entry_holds_all_artifacts() {
        let mut s = store();
        let log = goalpost(GoalpostSpec::default());
        let id = s.insert(&log).unwrap();
        let e = s.get(id).unwrap();
        assert!(e.series.segment_count() >= 4);
        assert!(!e.symbols.is_empty());
        assert_eq!(e.peaks.len(), 2);
        assert!(e.raw.is_some());
        assert!(s.get(999).is_err());
    }

    #[test]
    fn keep_raw_false_drops_raw() {
        let mut s =
            SequenceStore::new(StoreConfig { keep_raw: false, ..StoreConfig::default() }).unwrap();
        let id = s.insert(&goalpost(GoalpostSpec::default())).unwrap();
        assert!(s.get(id).unwrap().raw.is_none());
    }

    #[test]
    fn interval_index_populated() {
        let mut s = store();
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        let id = s.insert(&three).unwrap();
        // Two intervals of ~8h each.
        let hits = s.interval_index().matching_sequences(8, 2);
        assert_eq!(hits, vec![id]);
    }

    #[test]
    fn remove_unindexes_everywhere() {
        let mut s = store();
        let two = goalpost(GoalpostSpec::default());
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        let a = s.insert(&two).unwrap();
        let b = s.insert(&three).unwrap();
        assert_eq!(s.interval_index().matching_sequences(8, 1), vec![b]);
        let evicted = s.remove(b).unwrap();
        assert_eq!(evicted.peaks.len(), 3);
        assert_eq!(s.len(), 1);
        assert!(s.get(b).is_err());
        assert!(s.pattern_index().symbols_of(b).is_none());
        assert!(s.interval_index().matching_sequences(8, 1).is_empty());
        assert!(s.remove(b).is_err(), "double remove errors");
        // The survivor is untouched.
        assert!(s.pattern_index().symbols_of(a).is_some());
        // Ids are never reused.
        let c = s.insert(&two).unwrap();
        assert!(c > b);
    }

    #[test]
    fn reinsert_swaps_representation_and_postings() {
        let mut s = store();
        let id = s.insert(&goalpost(GoalpostSpec::default())).unwrap();
        assert_eq!(s.get(id).unwrap().peaks.len(), 2);
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        s.reinsert(id, &three).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id).unwrap().peaks.len(), 3);
        assert_eq!(s.interval_index().matching_sequences(8, 2), vec![id]);
        assert_eq!(s.index_stats().estimate_peak_count(2, 0), 0, "old histogram slot vacated");
        assert!(s.reinsert(999, &three).is_err(), "reinsert needs an existing id");
        // A failed recompute leaves the store untouched.
        let empty = Sequence::new(vec![]).unwrap();
        assert!(s.reinsert(id, &empty).is_err());
        assert_eq!(s.get(id).unwrap().peaks.len(), 3);
    }

    #[test]
    fn index_stats_follow_mutations() {
        let mut s = store();
        let a = s.insert(&goalpost(GoalpostSpec::default())).unwrap();
        let stats = s.index_stats();
        assert_eq!(stats.pattern.docs, 1);
        assert_eq!(stats.estimate_peak_count(2, 0), 1);
        assert!(stats.interval.postings >= 1);
        s.remove(a).unwrap();
        assert_eq!(s.index_stats(), saq_index::IndexStats::default());
    }

    #[test]
    fn bad_config_rejected() {
        assert!(SequenceStore::new(StoreConfig { epsilon: f64::NAN, ..StoreConfig::default() })
            .is_err());
        assert!(SequenceStore::new(StoreConfig { theta: -1.0, ..StoreConfig::default() }).is_err());
    }

    #[test]
    fn total_compression_aggregates() {
        let mut s = store();
        s.insert(&goalpost(GoalpostSpec::default())).unwrap();
        s.insert(&goalpost(GoalpostSpec::default())).unwrap();
        let r = s.total_compression();
        assert_eq!(r.original_points, 98);
        assert!(r.ratio() > 1.0);
    }

    #[test]
    fn shared_store_concurrent_reads() {
        let shared = SharedStore::new(store());
        let log = goalpost(GoalpostSpec::default());
        let id = shared.insert(&log).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.read(|st| st.get(id).unwrap().peaks.len()))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    }
}
