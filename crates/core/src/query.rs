//! Generalized approximate queries (§2.2) over a [`SequenceStore`].
//!
//! A query specifies a value-independent pattern; the answer set `S` is
//! closed under feature-preserving transformations. A result is **exact** if
//! it is a member of `S`, and **approximate** if it deviates from the
//! specified features along one or more dimensions within per-dimension
//! metric tolerances ("each dimension corresponds to some feature").

use crate::alphabet::parse_slope_pattern;
use crate::error::Result;
use crate::store::{SequenceStore, StoredEntry};

/// A generalized approximate query.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// A shape query: the stored sequence's entire slope string must match
    /// the pattern (e.g. the goal-post query `0* 1+ (-1)+ 0* 1+ (-1)+ 0*`).
    Shape {
        /// Pattern in either `u/d/f` or the paper's `1/-1/0` notation.
        pattern: String,
    },
    /// "Exactly `count` peaks", with an approximation tolerance on the count
    /// dimension (0 = exact only).
    PeakCount {
        /// Desired number of peaks.
        count: usize,
        /// Allowed deviation in the count dimension.
        tolerance: usize,
    },
    /// "Distance exactly `n` between successive peaks" — the R–R interval
    /// query of §5.2, answered through the inverted-file index; `epsilon` is
    /// the paper's ± tolerance on the distance dimension.
    PeakInterval {
        /// Target interval (in time units, bucketed to integers).
        interval: i64,
        /// The ± tolerance ε.
        epsilon: i64,
    },
    /// Minimum steepness of every peak's flanks — the "steepness of the
    /// slopes" dimension of §2.2, with a relative tolerance.
    MinPeakSteepness {
        /// Required steepness (absolute slope).
        steepness: f64,
        /// Fractional slack for approximate matches (e.g. 0.2 = 20% shy).
        slack: f64,
    },
    /// "Sudden vigorous activity" (§1's seismic query): at least one peak
    /// whose flanks reach the required steepness.
    HasSteepPeak {
        /// Required steepness (absolute slope) of some peak.
        steepness: f64,
        /// Fractional slack for approximate matches.
        slack: f64,
    },
}

/// One approximate match and how far it deviates from the exact feature.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproximateMatch {
    /// Sequence id.
    pub id: u64,
    /// Deviation in the query's feature dimension (metric, ≥ 0); e.g. peak
    /// count off by `deviation`, or interval off by `deviation` time units.
    pub deviation: f64,
}

/// The result of evaluating a query: exact members of `S`, plus approximate
/// matches within tolerance (exact matches are *not* repeated there).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutcome {
    /// Ids whose features match exactly (members of the query's set `S`).
    pub exact: Vec<u64>,
    /// Ids within the approximation tolerance, with their deviations,
    /// sorted by increasing deviation then id.
    pub approximate: Vec<ApproximateMatch>,
}

impl QueryOutcome {
    /// All matching ids, exact first.
    pub fn all_ids(&self) -> Vec<u64> {
        let mut out = self.exact.clone();
        out.extend(self.approximate.iter().map(|m| m.id));
        out
    }
}

/// How a single stored sequence relates to a query's answer set `S`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SequenceMatch {
    /// A member of the exact answer set.
    Exact,
    /// Within the approximation tolerance, at the given deviation.
    Approximate(f64),
}

/// A query prepared for repeated per-sequence evaluation: the shape
/// pattern, if any, is compiled to a DFA once so matching a sequence is a
/// linear scan of its symbol string.
///
/// [`PreparedQuery::matches`] is the per-sequence semantics that both the
/// store-level [`evaluate`] and the batch engine's sharded executor agree
/// on; index-assisted paths (pattern index, inverted interval file) are
/// accelerations of exactly this predicate.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    spec: QuerySpec,
    dfa: Option<saq_pattern::Dfa>,
}

impl PreparedQuery {
    /// Prepares a query, compiling its pattern when it has one. Fails on
    /// unparsable patterns.
    pub fn new(spec: &QuerySpec) -> Result<PreparedQuery> {
        let dfa = match spec {
            QuerySpec::Shape { pattern } => Some(parse_slope_pattern(pattern)?.compile()),
            _ => None,
        };
        Ok(PreparedQuery { spec: spec.clone(), dfa })
    }

    /// The underlying query.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Evaluates one stored entry: `None` means no match, otherwise exact
    /// membership or an approximate match with its deviation.
    pub fn matches(&self, entry: &StoredEntry) -> Option<SequenceMatch> {
        match &self.spec {
            QuerySpec::Shape { .. } => {
                let dfa = self.dfa.as_ref().expect("prepared shape query holds a DFA");
                dfa.is_match(&entry.symbols).then_some(SequenceMatch::Exact)
            }
            QuerySpec::PeakCount { count, tolerance } => {
                let dev = entry.peaks.len().abs_diff(*count);
                if dev == 0 {
                    Some(SequenceMatch::Exact)
                } else if dev <= *tolerance {
                    Some(SequenceMatch::Approximate(dev as f64))
                } else {
                    None
                }
            }
            QuerySpec::PeakInterval { interval, epsilon } => {
                // Mirrors the inverted-file path: postings arrive in
                // position order, an id is exact if *any* in-band interval
                // hits the target dead-on, and otherwise its deviation is
                // the first in-band interval's.
                let mut first_in_band = None;
                let mut exact = false;
                for bucket in entry.peaks.interval_buckets() {
                    let dev = (bucket - interval).abs();
                    if dev <= *epsilon {
                        exact |= dev == 0;
                        first_in_band.get_or_insert(dev);
                    }
                }
                if exact {
                    Some(SequenceMatch::Exact)
                } else {
                    first_in_band.map(|dev| SequenceMatch::Approximate(dev as f64))
                }
            }
            QuerySpec::MinPeakSteepness { steepness, slack } => {
                steepness_match(entry, *steepness, *slack, f64::min, f64::INFINITY)
            }
            QuerySpec::HasSteepPeak { steepness, slack } => {
                steepness_match(entry, *steepness, *slack, f64::max, f64::NEG_INFINITY)
            }
        }
    }
}

/// Evaluates a query against a store.
///
/// Since the query-algebra redesign this is a thin back-compat shim: the
/// spec is lowered to a single-leaf [`crate::algebra::QueryExpr`] and run
/// through the planner-backed [`crate::algebra::StoreEngine`], which
/// serves shape leaves from the pattern index and interval leaves from the
/// inverted file exactly as this function always did.
pub fn evaluate(store: &SequenceStore, query: &QuerySpec) -> Result<QueryOutcome> {
    use crate::algebra::{QueryEngine as _, QueryExpr};
    let req = crate::request::QueryRequest::expr(QueryExpr::from(query.clone()));
    Ok(crate::algebra::StoreEngine::new(store).request(&req)?.outcome)
}

/// Shared body of the two steepness dimensions: `fold`/`init` select the
/// universal (min over peaks) or existential (max over peaks) reading.
fn steepness_match(
    entry: &StoredEntry,
    steepness: f64,
    slack: f64,
    fold: fn(f64, f64) -> f64,
    init: f64,
) -> Option<SequenceMatch> {
    if entry.peaks.is_empty() {
        return None;
    }
    let measure = entry.peaks.peaks.iter().map(|p| p.steepness()).fold(init, fold);
    if measure >= steepness {
        Some(SequenceMatch::Exact)
    } else if measure >= steepness * (1.0 - slack) {
        Some(SequenceMatch::Approximate(steepness - measure))
    } else {
        None
    }
}

/// Sorts approximate matches into the canonical result order — increasing
/// deviation, then id. The one definition shared by the store evaluator and
/// the batch engine's merge, so "identical outcomes" cannot drift.
pub fn sort_approximate_matches(matches: &mut [ApproximateMatch]) {
    matches.sort_by(|a, b| {
        a.deviation.partial_cmp(&b.deviation).expect("finite deviations").then(a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use saq_sequence::generators::{goalpost, peaks, GoalpostSpec, PeaksSpec};

    fn sort_outcome(outcome: &mut QueryOutcome) {
        outcome.exact.sort_unstable();
        sort_approximate_matches(&mut outcome.approximate);
    }

    /// Store with one 1-peak, two 2-peak, one 3-peak sequences.
    fn corpus() -> (SequenceStore, Vec<u64>) {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        let mut ids = Vec::new();
        let one = peaks(PeaksSpec { centers: vec![12.0], ..PeaksSpec::default() });
        let two_a = goalpost(GoalpostSpec::default());
        let two_b = goalpost(GoalpostSpec { peak1: 6.0, peak2: 16.0, ..GoalpostSpec::default() });
        let three = peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() });
        for s in [&one, &two_a, &two_b, &three] {
            ids.push(store.insert(s).unwrap());
        }
        (store, ids)
    }

    #[test]
    fn shape_query_goalpost() {
        let (store, ids) = corpus();
        let out =
            evaluate(&store, &QuerySpec::Shape { pattern: "0* 1+ (-1)+ 0* 1+ (-1)+ 0*".into() })
                .unwrap();
        assert_eq!(out.exact, vec![ids[1], ids[2]]);
        assert!(out.approximate.is_empty());
    }

    #[test]
    fn shape_query_bad_pattern_errors() {
        let (store, _) = corpus();
        assert!(evaluate(&store, &QuerySpec::Shape { pattern: "((".into() }).is_err());
    }

    #[test]
    fn peak_count_exact_and_approximate() {
        let (store, ids) = corpus();
        let out = evaluate(&store, &QuerySpec::PeakCount { count: 2, tolerance: 1 }).unwrap();
        assert_eq!(out.exact, vec![ids[1], ids[2]]);
        let approx_ids: Vec<u64> = out.approximate.iter().map(|m| m.id).collect();
        assert_eq!(approx_ids, vec![ids[0], ids[3]]);
        for m in &out.approximate {
            assert_eq!(m.deviation, 1.0);
        }
        // Zero tolerance drops the approximate tier.
        let strict = evaluate(&store, &QuerySpec::PeakCount { count: 2, tolerance: 0 }).unwrap();
        assert!(strict.approximate.is_empty());
        assert_eq!(strict.exact.len(), 2);
    }

    #[test]
    fn peak_interval_query() {
        let (store, ids) = corpus();
        // The default goalpost has peaks at ~8 and ~18 => interval ~10.
        let out = evaluate(&store, &QuerySpec::PeakInterval { interval: 10, epsilon: 1 }).unwrap();
        assert!(out.all_ids().contains(&ids[1]), "{out:?}");
        // The 3-peak sequence has ~8h intervals; exact query at 8 finds it.
        let out8 = evaluate(&store, &QuerySpec::PeakInterval { interval: 8, epsilon: 0 }).unwrap();
        assert!(out8.all_ids().contains(&ids[3]), "{out8:?}");
        assert!(out8.approximate.is_empty());
    }

    #[test]
    fn peak_interval_dedups_exact_over_approximate() {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        // 3 peaks => intervals ~[8, 8]; query 8 ± 2 must report the id once,
        // as exact.
        let id = store
            .insert(&peaks(PeaksSpec { centers: vec![4.0, 12.0, 20.0], ..PeaksSpec::default() }))
            .unwrap();
        let out = evaluate(&store, &QuerySpec::PeakInterval { interval: 8, epsilon: 2 }).unwrap();
        assert_eq!(out.exact, vec![id]);
        assert!(out.approximate.is_empty());
    }

    #[test]
    fn steepness_query() {
        let (store, _) = corpus();
        // Fever ramps are steep; tiny threshold matches everything with peaks.
        let loose =
            evaluate(&store, &QuerySpec::MinPeakSteepness { steepness: 0.3, slack: 0.0 }).unwrap();
        assert_eq!(loose.exact.len(), 4);
        // Impossibly steep threshold matches nothing.
        let strict =
            evaluate(&store, &QuerySpec::MinPeakSteepness { steepness: 1e6, slack: 0.0 }).unwrap();
        assert!(strict.exact.is_empty() && strict.approximate.is_empty());
    }

    #[test]
    fn has_steep_peak_is_existential() {
        let mut store = SequenceStore::new(StoreConfig::default()).unwrap();
        // One tall steep peak plus one gentle peak: fails the universal
        // reading at high thresholds but passes the existential one.
        let mixed =
            peaks(PeaksSpec { centers: vec![6.0, 18.0], width: 1.0, ..PeaksSpec::default() });
        let gentle = peaks(PeaksSpec {
            centers: vec![12.0],
            width: 4.0,
            amplitude: 3.0,
            ..PeaksSpec::default()
        });
        let id_mixed = store.insert(&mixed).unwrap();
        store.insert(&gentle).unwrap();
        let threshold = 2.5;
        let universal =
            evaluate(&store, &QuerySpec::MinPeakSteepness { steepness: threshold, slack: 0.0 })
                .unwrap();
        let existential =
            evaluate(&store, &QuerySpec::HasSteepPeak { steepness: threshold, slack: 0.0 })
                .unwrap();
        assert!(existential.exact.contains(&id_mixed));
        assert!(universal.exact.len() <= existential.exact.len());
    }

    #[test]
    fn outcome_ordering_and_all_ids() {
        let mut out = QueryOutcome {
            exact: vec![3, 1],
            approximate: vec![
                ApproximateMatch { id: 9, deviation: 2.0 },
                ApproximateMatch { id: 4, deviation: 1.0 },
            ],
        };
        sort_outcome(&mut out);
        assert_eq!(out.exact, vec![1, 3]);
        assert_eq!(out.approximate[0].id, 4);
        assert_eq!(out.all_ids(), vec![1, 3, 4, 9]);
    }
}
